#include "core/rasengan.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "circuit/optimize.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/basis.h"
#include "device/mitigation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/cobyla.h"
#include "problems/metrics.h"
#include "qsim/sparsestate.h"

namespace rasengan::core {

namespace {

using ProbMap = std::unordered_map<BitVec, double, BitVecHash>;
using ShotMap = std::unordered_map<BitVec, uint64_t, BitVecHash>;

constexpr double kFailureScore = 1e18;

/**
 * Registry mirrors of the per-solver PlanStats counters.  The struct
 * stays (tests and summaries read it per instance); the registry view
 * aggregates across every solver in the process for export.
 */
struct PlanCounters
{
    obs::Counter &recorded = obs::Registry::global().counter(
        "sparse_plan_recorded_total",
        "Sparse rotation plans recorded from direct execution");
    obs::Counter &replayed = obs::Registry::global().counter(
        "sparse_plan_replayed_total",
        "Segment evolutions served by replaying a cached plan");
    obs::Counter &aborted = obs::Registry::global().counter(
        "sparse_plan_aborted_total",
        "Plan replays aborted by support collapse at these angles");
    obs::Counter &invalidated = obs::Registry::global().counter(
        "sparse_plan_invalidated_total",
        "Plans marked non-replayable while recording");
};

PlanCounters &
planCounters()
{
    static PlanCounters counters;
    return counters;
}

} // namespace

PipelineArtifacts
buildPipelineArtifacts(const problems::Problem &problem,
                       const RasenganOptions &options)
{
    obs::Span pipeline_span("transition", "build-pipeline");
    PipelineArtifacts artifacts;
    {
        obs::Span span("transition", "transition-set");
        artifacts.transitions = makeTransitions(
            transitionVectors(problem, options.simplify,
                              options.maxTrackedStates));
    }

    ChainOptions chain_opts;
    chain_opts.rounds = options.rounds;
    chain_opts.prune = options.prune;
    chain_opts.earlyStop = options.prune;
    chain_opts.maxTrackedStates = options.maxTrackedStates;
    {
        obs::Span span("transition", "build-chain");
        artifacts.chain = buildChain(artifacts.transitions,
                                     problem.trivialFeasible(), chain_opts);
    }

    {
        obs::Span span("transition", "partition-chain");
        artifacts.segments =
            partitionChain(static_cast<int>(artifacts.chain.steps.size()),
                           options.transitionsPerSegment);
    }
    return artifacts;
}

RasenganSolver::RasenganSolver(problems::Problem problem,
                               RasenganOptions options)
    : problem_(std::move(problem)), options_(std::move(options)),
      executor_(std::make_unique<exec::ResilientExecutor>(
          options_.resilience))
{
    if (options_.pipeline) {
        transitions_ = options_.pipeline->transitions;
        chain_ = options_.pipeline->chain;
        segments_ = options_.pipeline->segments;
    } else {
        PipelineArtifacts artifacts =
            buildPipelineArtifacts(problem_, options_);
        transitions_ = std::move(artifacts.transitions);
        chain_ = std::move(artifacts.chain);
        segments_ = std::move(artifacts.segments);
    }
}

qsim::SparseState
RasenganSolver::evolveSegment(int seg_index, const BitVec &init,
                              const std::vector<double> &times) const
{
    // One span per evolution regardless of the record/replay branch
    // taken below, so the span tree is independent of cache state.
    obs::Span span("segment-evolve", "evolve",
                   "seg=" + std::to_string(seg_index));
    const Segment &seg = segments_[seg_index];
    const int n = problem_.numVars();
    const double threshold = options_.sparsePruneThreshold;
    const double *seg_times = times.data() + seg.firstStep;

    auto direct = [&](qsim::SparseSegmentPlan *plan) {
        qsim::SparseState sim(n, init);
        sim.setDenseLookup(options_.denseIndexLookup);
        const uint64_t epoch0 = sim.supportEpoch();
        for (int k = 0; k < seg.stepCount; ++k) {
            qsim::SparseStepPlan *step = nullptr;
            if (plan != nullptr)
                step = &plan->steps.emplace_back();
            transitions_[chain_.steps[seg.firstStep + k]].applyTo(
                sim, seg_times[k], threshold, step);
        }
        if (plan != nullptr) {
            // Pruning during recording means the captured index
            // structure tracked THIS angle vector's support collapse --
            // it is not angle-independent, so the plan must never
            // replay.  (Replays of healthy plans re-detect this per
            // angle vector and fall back; see replaySegmentPlan.)
            if (sim.supportEpoch() != epoch0)
                plan->replayable = false;
            else
                plan->finalKeys = sim.keys();
        }
        if (sim.supportSize() > maxObservedSupport_)
            maxObservedSupport_ = sim.supportSize();
        return sim;
    };

    if (!options_.cacheRotationPlans)
        return direct(nullptr);

    if (segmentStructures_.empty())
        segmentStructures_.resize(segments_.size());
    std::vector<std::pair<BitVec, BitVec>> &structure =
        segmentStructures_[seg_index];
    if (structure.empty()) {
        structure.reserve(seg.stepCount);
        for (int k = 0; k < seg.stepCount; ++k) {
            const TransitionHamiltonian &tau =
                transitions_[chain_.steps[seg.firstStep + k]];
            structure.emplace_back(tau.mask(), tau.patternPlus());
        }
    }
    const uint64_t fp = qsim::planStructureFingerprint(n, init, structure);

    std::shared_ptr<const qsim::SparseSegmentPlan> plan;
    if (auto it = planCache_.find(fp); it != planCache_.end()) {
        plan = it->second;
    } else {
        auto record = [&]() {
            auto fresh = std::make_shared<qsim::SparseSegmentPlan>();
            fresh->numQubits = n;
            fresh->initial = init;
            fresh->steps.reserve(seg.stepCount);
            qsim::SparseState sim = direct(fresh.get());
            ++planStats_.recorded;
            planCounters().recorded.inc();
            if (!fresh->replayable) {
                ++planStats_.invalidated;
                planCounters().invalidated.inc();
            }
            planCache_.emplace(fp, fresh);
            return std::pair{std::move(fresh), std::move(sim)};
        };
        if (options_.planStore) {
            // Cross-job path: the store may already hold a plan recorded
            // by another solver.  Recording runs lazily inside the
            // store's getOrCompute, so a store hit skips the direct
            // execution entirely (the replay below reproduces the
            // state bit-identically).
            std::optional<qsim::SparseState> recorded_sim;
            plan = options_.planStore(fp, [&]() {
                auto [fresh, sim] = record();
                recorded_sim.emplace(std::move(sim));
                return std::shared_ptr<const qsim::SparseSegmentPlan>(
                    std::move(fresh));
            });
            planCache_[fp] = plan;
            if (recorded_sim.has_value())
                return std::move(*recorded_sim);
        } else {
            auto [fresh, sim] = record();
            return sim;
        }
    }

    if (plan && plan->replayable) {
        auto replayed =
            qsim::replaySegmentPlan(*plan, seg_times, threshold);
        if (replayed.has_value()) {
            ++planStats_.replayed;
            planCounters().replayed.inc();
            if (replayed->supportSize() > maxObservedSupport_)
                maxObservedSupport_ = replayed->supportSize();
            return std::move(*replayed);
        }
        // These angles rotate some state below the prune threshold; the
        // plan's structure no longer applies.  Keep the plan (other
        // angle vectors may still replay) and run the direct kernels.
        ++planStats_.aborted;
        planCounters().aborted.inc();
    }
    return direct(nullptr);
}

circuit::Circuit
RasenganSolver::lowerSegment(const circuit::Circuit &circ) const
{
    circuit::TranspileOptions topts{.mode = options_.transpileMode,
                                    .lowerToCx = true};
    if (options_.lowerCircuit)
        return options_.lowerCircuit(circ, topts);
    return circuit::transpile(circ, topts);
}

circuit::Circuit
RasenganSolver::segmentCircuit(int seg_index, const BitVec &init,
                               const std::vector<double> &times) const
{
    panic_if(seg_index < 0 ||
                 seg_index >= static_cast<int>(segments_.size()),
             "segment {} out of range", seg_index);
    panic_if(times.size() != chain_.steps.size(),
             "expected {} evolution times, got {}", chain_.steps.size(),
             times.size());
    const Segment &seg = segments_[seg_index];
    const int n = problem_.numVars();

    circuit::Circuit circ(n);
    // A column of X gates prepares the segment's input basis state
    // (Section 4.2: equivalent to circuit merging).
    for (int q = 0; q < n; ++q)
        if (init.get(q))
            circ.x(q);
    for (int pos = seg.firstStep; pos < seg.firstStep + seg.stepCount;
         ++pos) {
        transitions_[chain_.steps[pos]].appendToCircuit(circ, times[pos]);
    }
    return circ;
}

std::pair<int, int>
RasenganSolver::maxSegmentCost() const
{
    std::vector<double> nominal(chain_.steps.size(), options_.initialTime);
    int max_depth = 0;
    int max_cx = 0;
    for (int s = 0; s < static_cast<int>(segments_.size()); ++s) {
        circuit::Circuit circ =
            segmentCircuit(s, problem_.trivialFeasible(), nominal);
        circuit::Circuit lowered = lowerSegment(circ);
        circuit::Circuit optimized = circuit::optimizeCircuit(lowered);
        max_depth = std::max(max_depth, optimized.depth());
        max_cx = std::max(max_cx, optimized.countCx());
    }
    return {max_depth, max_cx};
}

qsim::Counts
RasenganSolver::sampleSegment(
    int seg_index, const std::vector<double> &times,
    const std::vector<std::pair<BitVec, uint64_t>> &alloc, Rng &rng) const
{
    const int n = problem_.numVars();
    qsim::Counts raw;
    for (const auto &[state, state_shots] : alloc) {
        if (state_shots == 0)
            continue;
        if (options_.execution ==
            RasenganOptions::Execution::NoisyGateLevel) {
            circuit::Circuit circ = segmentCircuit(seg_index, state, times);
            circuit::Circuit lowered = lowerSegment(circ);
            // The segment circuit itself prepares `state` with its
            // leading X column, so the register starts at |0...0>.
            qsim::Counts part = qsim::sampleNoisy(
                lowered, lowered.numQubits(), BitVec{}, options_.noise,
                rng, state_shots, options_.trajectories, n);
            for (const auto &[y, cnt] : part.map())
                raw.add(y, cnt);
        } else {
            qsim::SparseState sim = evolveSegment(seg_index, state, times);
            qsim::Counts part = sim.sample(rng, state_shots);
            if (options_.execution ==
                RasenganOptions::Execution::NoisyInjected) {
                // Error injection: each shot is corrupted with the
                // probability that at least one CX in the segment
                // failed; a corrupted shot takes random bit flips.
                circuit::Circuit circ =
                    segmentCircuit(seg_index, state, times);
                circuit::Circuit lowered = lowerSegment(circ);
                double p_err = 1.0 - std::pow(1.0 - options_.noise.depol2q,
                                              lowered.countCx());
                qsim::Counts corrupted;
                for (const auto &[y, cnt] : part.map()) {
                    for (uint64_t i = 0; i < cnt; ++i) {
                        BitVec out = y;
                        if (rng.bernoulli(p_err)) {
                            int flips =
                                1 + static_cast<int>(rng.uniformInt(0, 2));
                            for (int f = 0; f < flips; ++f)
                                out.flip(static_cast<int>(
                                    rng.uniformInt(0, n - 1)));
                        }
                        corrupted.add(out);
                    }
                }
                part = std::move(corrupted);
            }
            for (const auto &[y, cnt] : part.map())
                raw.add(y, cnt);
        }
    }
    return raw;
}

RasenganDistribution
RasenganSolver::execute(const std::vector<double> &times, Rng &rng) const
{
    return execute(times, rng, ExecHooks{});
}

RasenganDistribution
RasenganSolver::execute(const std::vector<double> &times, Rng &rng,
                        const ExecHooks &hooks) const
{
    panic_if(times.size() != chain_.steps.size(),
             "expected {} evolution times, got {}", chain_.steps.size(),
             times.size());
    obs::Span span("solver", "execute");
    const int n = problem_.numVars();
    const int num_segments = static_cast<int>(segments_.size());
    RasenganDistribution result;

    // Cooperative deadline/cancel checkpoints between segment
    // evolutions: a long pipeline notices a tripped token at the next
    // segment boundary instead of running to completion.  A token that
    // never trips cannot influence the output.
    const exec::CancelToken *cancel_token = options_.resilience.cancel;
    auto cancelTripped = [&]() {
        if (cancel_token == nullptr || !cancel_token->stopRequested())
            return false;
        result.failed = true;
        result.deadlineHit = true;
        return true;
    };
    if (cancelTripped())
        return result;

    if (segments_.empty()) {
        // Full-rank constraints: the trivial solution is the only state.
        result.entries.emplace_back(problem_.trivialFeasible(), 1.0);
        return result;
    }

    const bool exact =
        options_.execution == RasenganOptions::Execution::ExactSparse;
    exec::ResilientExecutor &ex = *executor_;

    auto baseSnapshot = [&](int next_segment) {
        exec::SegmentCheckpoint cp;
        cp.problemId = problem_.id();
        cp.shotBased = !exact;
        cp.nextSegment = next_segment;
        cp.numBits = n;
        cp.times = times;
        cp.prePurifyFeasibleFraction = result.prePurifyFeasibleFraction;
        return cp;
    };
    auto wantsStop = [&](int s) {
        return hooks.stopAfterSegment >= 0 && s >= hooks.stopAfterSegment &&
               s + 1 < num_segments;
    };

    if (exact) {
        ProbMap dist{{problem_.trivialFeasible(), 1.0}};
        int first_seg = 0;
        if (hooks.resumeFrom != nullptr) {
            const exec::SegmentCheckpoint &cp = *hooks.resumeFrom;
            panic_if(cp.shotBased,
                     "exact execution cannot resume a shot checkpoint");
            dist.clear();
            for (const auto &[y, p] : cp.probEntries)
                dist[y] = p;
            first_seg = std::min(cp.nextSegment, num_segments);
            result.prePurifyFeasibleFraction = cp.prePurifyFeasibleFraction;
        }
        for (int s = first_seg; s < num_segments; ++s) {
            if (cancelTripped())
                return result;
            ProbMap out;
            for (const auto &[state, p] : dist) {
                qsim::SparseState sim = evolveSegment(s, state, times);
                const std::vector<BitVec> &keys = sim.keys();
                const auto &amps = sim.amps();
                for (size_t i = 0; i < keys.size(); ++i)
                    out[keys[i]] += p * std::norm(amps[i]);
            }
            // Purification (Section 4.3): validate C x = b, drop the rest.
            // The exact path never samples; this span is its analogue of
            // the sampled path's measurement stage.
            obs::Span sample_span("sample", "purify",
                                  "seg=" + std::to_string(s));
            double feasible_mass = 0.0, total_mass = 0.0;
            for (const auto &[y, p] : out) {
                total_mass += p;
                if (problem_.isFeasible(y))
                    feasible_mass += p;
            }
            result.prePurifyFeasibleFraction =
                total_mass > 0.0 ? feasible_mass / total_mass : 0.0;
            if (options_.purify) {
                if (feasible_mass <= 0.0) {
                    result.failed = true;
                    return result;
                }
                ProbMap purified;
                for (const auto &[y, p] : out)
                    if (problem_.isFeasible(y))
                        purified[y] = p / feasible_mass;
                dist = std::move(purified);
            } else {
                for (auto &[y, p] : out)
                    p /= total_mass;
                dist = std::move(out);
            }
            if (hooks.onSegmentDone) {
                exec::SegmentCheckpoint cp = baseSnapshot(s + 1);
                cp.probEntries.assign(dist.begin(), dist.end());
                std::sort(cp.probEntries.begin(), cp.probEntries.end());
                hooks.onSegmentDone(cp);
            }
            if (wantsStop(s)) {
                result.aborted = true;
                return result;
            }
        }
        result.entries.assign(dist.begin(), dist.end());
        // Ascending state order: callers' expectation sums and the
        // best-outcome tie-break must not depend on hash layout, so a
        // checkpoint-resumed run reports the identical solution.
        std::sort(result.entries.begin(), result.entries.end());
        return result;
    }

    // Shot-based backends, routed through the resilient executor.
    ShotMap dist{{problem_.trivialFeasible(), options_.shotsPerSegment}};
    int first_seg = 0;
    if (hooks.resumeFrom != nullptr) {
        const exec::SegmentCheckpoint &cp = *hooks.resumeFrom;
        panic_if(!cp.shotBased,
                 "shot execution cannot resume an exact checkpoint");
        dist.clear();
        for (const auto &[y, cnt] : cp.shotEntries)
            dist[y] = cnt;
        first_seg = std::min(cp.nextSegment, num_segments);
        result.prePurifyFeasibleFraction = cp.prePurifyFeasibleFraction;
        if (!cp.rngState.empty()) {
            std::istringstream is(cp.rngState);
            is >> rng.engine();
        }
    }

    const std::vector<double> &seg_seconds = segmentSeconds();

    for (int s = first_seg; s < num_segments; ++s) {
        if (cancelTripped())
            return result;
        // One job seed per segment, drawn from the caller's stream before
        // anything can fail: every retry attempt re-seeds from it, so a
        // faulty-but-recovered run consumes the caller's rng exactly like
        // the fault-free run and yields the identical histogram.
        const uint64_t job_seed = rng.engine()();

        qsim::Counts raw;
        for (;;) {
            // Canonical state order: sampling consumes the job rng in a
            // fixed sequence regardless of hash-map iteration order, so a
            // checkpoint-resumed run replays the identical histogram.
            std::vector<std::pair<BitVec, uint64_t>> alloc;
            alloc.reserve(dist.size());
            uint64_t total_shots = 0;
            for (const auto &[y, cnt] : dist) {
                uint64_t a = ex.degradedShots(cnt);
                if (a > 0) {
                    alloc.emplace_back(y, a);
                    total_shots += a;
                }
            }
            std::sort(alloc.begin(), alloc.end());
            if (alloc.empty()) {
                result.failed = true;
                return result;
            }

            exec::ShotJob job;
            job.tag = "segment " + std::to_string(s);
            job.shots = total_shots;
            job.numBits = n;
            job.rngSeed = job_seed;
            job.attemptSeconds = seg_seconds[s];
            job.sample = [this, s, &times, &alloc](Rng &job_rng) {
                return sampleSegment(s, times, alloc, job_rng);
            };

            auto attempt = ex.run(job);
            if (attempt.ok()) {
                raw = std::move(attempt.value());
                break;
            }
            // A deadline/cancel failure is terminal: demoting the
            // ladder and re-running cannot buy the job more time.
            if (attempt.error().code == exec::ErrorCode::DeadlineExceeded ||
                attempt.error().code == exec::ErrorCode::Cancelled) {
                result.failed = true;
                result.deadlineHit = true;
                return result;
            }
            if (!ex.canDemote()) {
                warn("segment {} failed permanently: {}", s,
                     attempt.error().toString());
                result.failed = true;
                return result;
            }
            ex.demote(attempt.error().toString());
        }

        // Optional readout mitigation: undo measurement bit flips before
        // deciding feasibility (mitigation.h; calibrated from the noise
        // model's readout rate).
        if (options_.mitigateReadout && options_.noise.readoutError > 0.0 &&
            raw.total() > 0) {
            device::ReadoutMitigator mitigator(
                device::ReadoutCalibration::uniform(
                    n, options_.noise.readoutError));
            uint64_t total = raw.total();
            qsim::Counts mitigated;
            for (const auto &[y, p] : mitigator.mitigate(raw, n)) {
                uint64_t cnt = static_cast<uint64_t>(
                    p * static_cast<double>(total) + 0.5);
                if (cnt > 0)
                    mitigated.add(y, cnt);
            }
            if (mitigated.total() > 0)
                raw = std::move(mitigated);
        }

        // Purification + probability-preserving shot reallocation
        // (Figures 7-8): each surviving state gets the next segment's
        // shots proportionally to its purified frequency.  The ladder
        // can disable purification (NoPurification and below).
        const bool purify = options_.purify && !ex.purificationDisabled();
        uint64_t feasible_shots = 0;
        for (const auto &[y, cnt] : raw.map())
            if (problem_.isFeasible(y))
                feasible_shots += cnt;
        result.prePurifyFeasibleFraction =
            raw.total() > 0
                ? static_cast<double>(feasible_shots) /
                      static_cast<double>(raw.total())
                : 0.0;

        const uint64_t next_shots = static_cast<uint64_t>(
            static_cast<double>(options_.shotsPerSegment) *
            std::pow(std::max(options_.shotGrowth, 1e-6), s + 1));
        ShotMap next;
        if (purify) {
            if (feasible_shots == 0) {
                result.failed = true;
                return result;
            }
            for (const auto &[y, cnt] : raw.map()) {
                if (!problem_.isFeasible(y)) {
                    continue;
                }
                uint64_t alloc = (cnt * next_shots + feasible_shots / 2) /
                                 feasible_shots;
                if (alloc > 0)
                    next[y] = alloc;
            }
        } else {
            for (const auto &[y, cnt] : raw.map()) {
                uint64_t alloc =
                    (cnt * next_shots + raw.total() / 2) / raw.total();
                if (alloc > 0)
                    next[y] = alloc;
            }
        }
        if (next.empty()) {
            result.failed = true;
            return result;
        }
        dist = std::move(next);

        if (hooks.onSegmentDone) {
            exec::SegmentCheckpoint cp = baseSnapshot(s + 1);
            std::ostringstream os;
            os << rng.engine();
            cp.rngState = os.str();
            cp.shotEntries.assign(dist.begin(), dist.end());
            std::sort(cp.shotEntries.begin(), cp.shotEntries.end());
            hooks.onSegmentDone(cp);
        }
        if (wantsStop(s)) {
            result.aborted = true;
            return result;
        }
    }

    uint64_t total = 0;
    for (const auto &[y, cnt] : dist)
        total += cnt;
    for (const auto &[y, cnt] : dist)
        result.entries.emplace_back(
            y, static_cast<double>(cnt) / static_cast<double>(total));
    std::sort(result.entries.begin(), result.entries.end());
    return result;
}

double
RasenganSolver::scoreDistribution(const RasenganDistribution &dist) const
{
    if (dist.failed || dist.entries.empty())
        return kFailureScore;
    double lambda = problems::defaultPenaltyLambda(problem_);
    double acc = 0.0;
    for (const auto &[y, p] : dist.entries)
        acc += p * problem_.penalizedObjective(y, lambda);
    return acc;
}

const std::vector<double> &
RasenganSolver::segmentSeconds() const
{
    if (segmentSeconds_.size() == segments_.size())
        return segmentSeconds_;
    device::LatencyModel latency(options_.latencyDevice);
    std::vector<double> nominal(chain_.steps.size(), options_.initialTime);
    segmentSeconds_.assign(segments_.size(), 0.0);
    for (int s = 0; s < static_cast<int>(segments_.size()); ++s) {
        circuit::Circuit circ =
            segmentCircuit(s, problem_.trivialFeasible(), nominal);
        circuit::Circuit lowered = lowerSegment(circ);
        uint64_t shots = static_cast<uint64_t>(
            static_cast<double>(options_.shotsPerSegment) *
            std::pow(std::max(options_.shotGrowth, 1e-6), s));
        segmentSeconds_[s] = latency.executionTimeSeconds(lowered, shots);
    }
    return segmentSeconds_;
}

double
RasenganSolver::perExecutionQuantumSeconds() const
{
    double total = 0.0;
    for (double t : segmentSeconds())
        total += t;
    return total;
}

RasenganResult
RasenganSolver::summarize(const std::vector<double> &times,
                          opt::OptResult training, double classical_s,
                          double quantum_s,
                          const exec::SegmentCheckpoint *resume) const
{
    RasenganResult res;
    res.training = std::move(training);
    res.numParams = numParams();
    res.chainLength = static_cast<int>(chain_.steps.size());
    res.unprunedLength = static_cast<int>(chain_.unprunedSteps.size());
    res.numSegments = static_cast<int>(segments_.size());
    res.feasibleCovered = chain_.reachableCount;
    res.classicalSeconds = classical_s;
    res.quantumSeconds = quantum_s;
    res.resumed = resume != nullptr;

    auto [depth, cx] = maxSegmentCost();
    res.maxSegmentDepth = depth;
    res.maxSegmentCx = cx;

    Rng rng(options_.seed + 1);
    ExecHooks hooks;
    hooks.resumeFrom = resume;
    if (!options_.checkpointPath.empty()) {
        const std::string path = options_.checkpointPath;
        hooks.onSegmentDone = [path](const exec::SegmentCheckpoint &cp) {
            auto saved = exec::saveCheckpoint(cp, path);
            if (!saved.ok())
                warn("checkpoint save failed: {}",
                     saved.error().toString());
        };
    }
    res.finalDistribution = execute(times, rng, hooks);
    res.failed = res.finalDistribution.failed;
    res.deadlineHit = res.finalDistribution.deadlineHit;
    res.execStats = executor_->stats();
    res.degradation = executor_->level();
    if (options_.execution != RasenganOptions::Execution::ExactSparse) {
        // The executor's clock already accounts every attempt (including
        // retried ones), injected timeouts, and backoff sleeps.
        res.quantumSeconds = executor_->elapsedSeconds();
    }

    double lambda = problems::defaultPenaltyLambda(problem_);
    const BitVec *best = nullptr;
    double best_obj = 0.0;
    double expected = 0.0;
    double feasible_mass = 0.0;
    for (const auto &[y, p] : res.finalDistribution.entries) {
        expected += p * problem_.penalizedObjective(y, lambda);
        if (problem_.isFeasible(y)) {
            feasible_mass += p;
            double obj = problem_.objective(y);
            if (!best || obj < best_obj) {
                best = &y;
                best_obj = obj;
            }
        }
    }
    if (res.failed || !best) {
        // Noisy failure: fall back to the initial feasible solution
        // (Figure 10d reports these runs as terminated early).
        res.failed = true;
        res.solution = problem_.trivialFeasible();
        res.objectiveValue = problem_.objective(res.solution);
        res.expectedObjective = res.objectiveValue;
        res.inConstraintsRate = 0.0;
        return res;
    }
    res.solution = *best;
    res.objectiveValue = best_obj;
    res.expectedObjective = expected;
    res.inConstraintsRate = feasible_mass;
    return res;
}

RasenganResult
RasenganSolver::run()
{
    obs::Span span("solver", "run", problem_.id());
    Stopwatch wall;
    wall.start();

    const bool exact =
        options_.execution == RasenganOptions::Execution::ExactSparse;

    // Resume a previous solve if a compatible checkpoint exists (the
    // common cold start -- no file yet -- falls through silently).
    exec::SegmentCheckpoint resume_cp;
    bool resume = false;
    if (!options_.checkpointPath.empty()) {
        auto loaded = exec::loadCheckpoint(options_.checkpointPath);
        if (loaded.ok()) {
            resume_cp = std::move(loaded.value());
            if (resume_cp.problemId != problem_.id()) {
                warn("checkpoint '{}' is for problem '{}', not '{}'; "
                     "ignoring it",
                     options_.checkpointPath, resume_cp.problemId,
                     problem_.id());
            } else if (resume_cp.shotBased == exact) {
                warn("checkpoint '{}' was written by a different execution "
                     "backend kind; ignoring it",
                     options_.checkpointPath);
            } else if (resume_cp.times.size() != chain_.steps.size()) {
                warn("checkpoint '{}' has {} evolution times but the chain "
                     "needs {}; ignoring it",
                     options_.checkpointPath, resume_cp.times.size(),
                     chain_.steps.size());
            } else {
                resume = true;
            }
        } else if (loaded.error().message.find("cannot open") ==
                   std::string::npos) {
            // An absent file is the normal first run; a file that
            // exists but fails to parse deserves a warning.
            warn("checkpoint '{}' is corrupt ({}); ignoring it",
                 options_.checkpointPath, loaded.error().message);
        }
    }
    if (resume) {
        inform("resuming '{}' from checkpoint '{}' at segment {}",
               problem_.id(), options_.checkpointPath,
               resume_cp.nextSegment);
        opt::OptResult training;
        training.x = resume_cp.times;
        training.converged = true;
        wall.stop();
        return summarize(resume_cp.times, std::move(training),
                         wall.seconds(), 0.0, &resume_cp);
    }

    const int params = numParams();
    if (params == 0) {
        opt::OptResult trivial_training;
        trivial_training.converged = true;
        wall.stop();
        return summarize({}, trivial_training, wall.seconds(), 0.0,
                         nullptr);
    }

    Rng train_rng(options_.seed);
    Stopwatch sim_time;
    auto objective = [&](const std::vector<double> &x) {
        ScopedTimer guard(sim_time);
        return scoreDistribution(execute(x, train_rng));
    };

    opt::OptOptions oo;
    oo.maxIterations = options_.maxIterations;
    oo.initialStep = 0.4;
    oo.tolerance = 1e-5;
    oo.seed = options_.seed;
    auto optimizer = opt::makeOptimizer(options_.optimizer, oo);

    std::vector<double> x0(params, options_.initialTime);
    opt::OptResult training;
    {
        obs::Span train_span("solver", "train");
        training = optimizer->minimize(objective, x0);
    }
    wall.stop();

    // Persist the trained evolution times before the final execution so
    // a kill between training and completion resumes without retraining:
    // the snapshot is positioned "before segment 0" of the final run.
    // Never from a cancelled run, though: a token that tripped
    // mid-training leaves training.x at whatever point the objective
    // evaluations started failing, and resuming from those times would
    // diverge from an uninterrupted solve.
    const exec::CancelToken *cancel_token = options_.resilience.cancel;
    const bool cancelled =
        cancel_token != nullptr && cancel_token->stopRequested();
    if (!options_.checkpointPath.empty() && !cancelled) {
        exec::SegmentCheckpoint cp;
        cp.problemId = problem_.id();
        cp.shotBased = !exact;
        cp.nextSegment = 0;
        cp.numBits = problem_.numVars();
        cp.times = training.x;
        if (exact) {
            cp.probEntries.emplace_back(problem_.trivialFeasible(), 1.0);
        } else {
            Rng final_rng(options_.seed + 1);
            std::ostringstream os;
            os << final_rng.engine();
            cp.rngState = os.str();
            cp.shotEntries.emplace_back(problem_.trivialFeasible(),
                                        options_.shotsPerSegment);
        }
        auto saved = exec::saveCheckpoint(cp, options_.checkpointPath);
        if (!saved.ok())
            warn("checkpoint save failed: {}", saved.error().toString());
    }

    // The simulated circuit executions stand in for quantum time; what
    // remains of the wall clock is the classical optimizer + purification
    // share (Figure 12's breakdown).
    double classical_s = std::max(0.0, wall.seconds() - sim_time.seconds());
    double quantum_s =
        perExecutionQuantumSeconds() * training.evaluations;
    return summarize(training.x, training, classical_s, quantum_s, nullptr);
}

} // namespace rasengan::core
