#include "core/rasengan.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "circuit/optimize.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/basis.h"
#include "device/mitigation.h"
#include "opt/cobyla.h"
#include "problems/metrics.h"
#include "qsim/sparsestate.h"

namespace rasengan::core {

namespace {

using ProbMap = std::unordered_map<BitVec, double, BitVecHash>;
using ShotMap = std::unordered_map<BitVec, uint64_t, BitVecHash>;

constexpr double kFailureScore = 1e18;

} // namespace

RasenganSolver::RasenganSolver(problems::Problem problem,
                               RasenganOptions options)
    : problem_(std::move(problem)), options_(std::move(options))
{
    transitions_ = makeTransitions(
        transitionVectors(problem_, options_.simplify,
                          options_.maxTrackedStates));

    ChainOptions chain_opts;
    chain_opts.rounds = options_.rounds;
    chain_opts.prune = options_.prune;
    chain_opts.earlyStop = options_.prune;
    chain_opts.maxTrackedStates = options_.maxTrackedStates;
    chain_ = buildChain(transitions_, problem_.trivialFeasible(), chain_opts);

    segments_ = partitionChain(static_cast<int>(chain_.steps.size()),
                               options_.transitionsPerSegment);
}

circuit::Circuit
RasenganSolver::segmentCircuit(int seg_index, const BitVec &init,
                               const std::vector<double> &times) const
{
    panic_if(seg_index < 0 ||
                 seg_index >= static_cast<int>(segments_.size()),
             "segment {} out of range", seg_index);
    panic_if(times.size() != chain_.steps.size(),
             "expected {} evolution times, got {}", chain_.steps.size(),
             times.size());
    const Segment &seg = segments_[seg_index];
    const int n = problem_.numVars();

    circuit::Circuit circ(n);
    // A column of X gates prepares the segment's input basis state
    // (Section 4.2: equivalent to circuit merging).
    for (int q = 0; q < n; ++q)
        if (init.get(q))
            circ.x(q);
    for (int pos = seg.firstStep; pos < seg.firstStep + seg.stepCount;
         ++pos) {
        transitions_[chain_.steps[pos]].appendToCircuit(circ, times[pos]);
    }
    return circ;
}

std::pair<int, int>
RasenganSolver::maxSegmentCost() const
{
    std::vector<double> nominal(chain_.steps.size(), options_.initialTime);
    int max_depth = 0;
    int max_cx = 0;
    for (int s = 0; s < static_cast<int>(segments_.size()); ++s) {
        circuit::Circuit circ =
            segmentCircuit(s, problem_.trivialFeasible(), nominal);
        circuit::Circuit lowered = circuit::transpile(
            circ, {.mode = options_.transpileMode, .lowerToCx = true});
        circuit::Circuit optimized = circuit::optimizeCircuit(lowered);
        max_depth = std::max(max_depth, optimized.depth());
        max_cx = std::max(max_cx, optimized.countCx());
    }
    return {max_depth, max_cx};
}

RasenganDistribution
RasenganSolver::execute(const std::vector<double> &times, Rng &rng) const
{
    panic_if(times.size() != chain_.steps.size(),
             "expected {} evolution times, got {}", chain_.steps.size(),
             times.size());
    const int n = problem_.numVars();
    RasenganDistribution result;

    if (segments_.empty()) {
        // Full-rank constraints: the trivial solution is the only state.
        result.entries.emplace_back(problem_.trivialFeasible(), 1.0);
        return result;
    }

    const bool exact =
        options_.execution == RasenganOptions::Execution::ExactSparse;

    if (exact) {
        ProbMap dist{{problem_.trivialFeasible(), 1.0}};
        for (const Segment &seg : segments_) {
            ProbMap out;
            for (const auto &[state, p] : dist) {
                qsim::SparseState sim(n, state);
                for (int pos = seg.firstStep;
                     pos < seg.firstStep + seg.stepCount; ++pos) {
                    transitions_[chain_.steps[pos]].applyTo(sim, times[pos]);
                }
                for (const auto &[y, amp] : sim.amplitudes())
                    out[y] += p * std::norm(amp);
            }
            // Purification (Section 4.3): validate C x = b, drop the rest.
            double feasible_mass = 0.0, total_mass = 0.0;
            for (const auto &[y, p] : out) {
                total_mass += p;
                if (problem_.isFeasible(y))
                    feasible_mass += p;
            }
            result.prePurifyFeasibleFraction =
                total_mass > 0.0 ? feasible_mass / total_mass : 0.0;
            if (options_.purify) {
                if (feasible_mass <= 0.0) {
                    result.failed = true;
                    return result;
                }
                ProbMap purified;
                for (const auto &[y, p] : out)
                    if (problem_.isFeasible(y))
                        purified[y] = p / feasible_mass;
                dist = std::move(purified);
            } else {
                for (auto &[y, p] : out)
                    p /= total_mass;
                dist = std::move(out);
            }
        }
        result.entries.assign(dist.begin(), dist.end());
        return result;
    }

    // Shot-based backends.
    ShotMap dist{{problem_.trivialFeasible(), options_.shotsPerSegment}};

    for (int s = 0; s < static_cast<int>(segments_.size()); ++s) {
        const Segment &seg = segments_[s];
        qsim::Counts raw;
        for (const auto &[state, state_shots] : dist) {
            if (state_shots == 0)
                continue;
            if (options_.execution ==
                RasenganOptions::Execution::NoisyGateLevel) {
                circuit::Circuit circ = segmentCircuit(s, state, times);
                circuit::Circuit lowered = circuit::transpile(
                    circ,
                    {.mode = options_.transpileMode, .lowerToCx = true});
                // The segment circuit itself prepares `state` with its
                // leading X column, so the register starts at |0...0>.
                qsim::Counts part = qsim::sampleNoisy(
                    lowered, lowered.numQubits(), BitVec{}, options_.noise,
                    rng, state_shots, options_.trajectories, n);
                for (const auto &[y, cnt] : part.map())
                    raw.add(y, cnt);
            } else {
                qsim::SparseState sim(n, state);
                for (int pos = seg.firstStep;
                     pos < seg.firstStep + seg.stepCount; ++pos) {
                    transitions_[chain_.steps[pos]].applyTo(sim, times[pos]);
                }
                qsim::Counts part = sim.sample(rng, state_shots);
                if (options_.execution ==
                    RasenganOptions::Execution::NoisyInjected) {
                    // Error injection: each shot is corrupted with the
                    // probability that at least one CX in the segment
                    // failed; a corrupted shot takes random bit flips.
                    circuit::Circuit circ = segmentCircuit(s, state, times);
                    circuit::Circuit lowered = circuit::transpile(
                        circ,
                        {.mode = options_.transpileMode, .lowerToCx = true});
                    double p_err = 1.0 - std::pow(1.0 - options_.noise.depol2q,
                                                  lowered.countCx());
                    qsim::Counts corrupted;
                    for (const auto &[y, cnt] : part.map()) {
                        for (uint64_t i = 0; i < cnt; ++i) {
                            BitVec out = y;
                            if (rng.bernoulli(p_err)) {
                                int flips =
                                    1 + static_cast<int>(rng.uniformInt(0, 2));
                                for (int f = 0; f < flips; ++f)
                                    out.flip(static_cast<int>(
                                        rng.uniformInt(0, n - 1)));
                            }
                            corrupted.add(out);
                        }
                    }
                    part = std::move(corrupted);
                }
                for (const auto &[y, cnt] : part.map())
                    raw.add(y, cnt);
            }
        }

        // Optional readout mitigation: undo measurement bit flips before
        // deciding feasibility (mitigation.h; calibrated from the noise
        // model's readout rate).
        if (options_.mitigateReadout && options_.noise.readoutError > 0.0 &&
            raw.total() > 0) {
            device::ReadoutMitigator mitigator(
                device::ReadoutCalibration::uniform(
                    n, options_.noise.readoutError));
            uint64_t total = raw.total();
            qsim::Counts mitigated;
            for (const auto &[y, p] : mitigator.mitigate(raw, n)) {
                uint64_t cnt = static_cast<uint64_t>(
                    p * static_cast<double>(total) + 0.5);
                if (cnt > 0)
                    mitigated.add(y, cnt);
            }
            if (mitigated.total() > 0)
                raw = std::move(mitigated);
        }

        // Purification + probability-preserving shot reallocation
        // (Figures 7-8): each surviving state gets the next segment's
        // shots proportionally to its purified frequency.
        uint64_t feasible_shots = 0;
        for (const auto &[y, cnt] : raw.map())
            if (problem_.isFeasible(y))
                feasible_shots += cnt;
        result.prePurifyFeasibleFraction =
            raw.total() > 0
                ? static_cast<double>(feasible_shots) /
                      static_cast<double>(raw.total())
                : 0.0;

        const uint64_t next_shots = static_cast<uint64_t>(
            static_cast<double>(options_.shotsPerSegment) *
            std::pow(std::max(options_.shotGrowth, 1e-6), s + 1));
        ShotMap next;
        if (options_.purify) {
            if (feasible_shots == 0) {
                result.failed = true;
                return result;
            }
            for (const auto &[y, cnt] : raw.map()) {
                if (!problem_.isFeasible(y)) {
                    continue;
                }
                uint64_t alloc = (cnt * next_shots + feasible_shots / 2) /
                                 feasible_shots;
                if (alloc > 0)
                    next[y] = alloc;
            }
        } else {
            for (const auto &[y, cnt] : raw.map()) {
                uint64_t alloc =
                    (cnt * next_shots + raw.total() / 2) / raw.total();
                if (alloc > 0)
                    next[y] = alloc;
            }
        }
        if (next.empty()) {
            result.failed = true;
            return result;
        }
        dist = std::move(next);
    }

    uint64_t total = 0;
    for (const auto &[y, cnt] : dist)
        total += cnt;
    for (const auto &[y, cnt] : dist)
        result.entries.emplace_back(
            y, static_cast<double>(cnt) / static_cast<double>(total));
    return result;
}

double
RasenganSolver::scoreDistribution(const RasenganDistribution &dist) const
{
    if (dist.failed || dist.entries.empty())
        return kFailureScore;
    double lambda = problems::defaultPenaltyLambda(problem_);
    double acc = 0.0;
    for (const auto &[y, p] : dist.entries)
        acc += p * problem_.penalizedObjective(y, lambda);
    return acc;
}

double
RasenganSolver::perExecutionQuantumSeconds() const
{
    device::LatencyModel latency(options_.latencyDevice);
    std::vector<double> nominal(chain_.steps.size(), options_.initialTime);
    double total = 0.0;
    for (int s = 0; s < static_cast<int>(segments_.size()); ++s) {
        circuit::Circuit circ =
            segmentCircuit(s, problem_.trivialFeasible(), nominal);
        circuit::Circuit lowered = circuit::transpile(
            circ, {.mode = options_.transpileMode, .lowerToCx = true});
        uint64_t shots = static_cast<uint64_t>(
            static_cast<double>(options_.shotsPerSegment) *
            std::pow(std::max(options_.shotGrowth, 1e-6), s));
        total += latency.executionTimeSeconds(lowered, shots);
    }
    return total;
}

RasenganResult
RasenganSolver::summarize(const std::vector<double> &times,
                          opt::OptResult training, double classical_s,
                          double quantum_s) const
{
    RasenganResult res;
    res.training = std::move(training);
    res.numParams = numParams();
    res.chainLength = static_cast<int>(chain_.steps.size());
    res.unprunedLength = static_cast<int>(chain_.unprunedSteps.size());
    res.numSegments = static_cast<int>(segments_.size());
    res.feasibleCovered = chain_.reachableCount;
    res.classicalSeconds = classical_s;
    res.quantumSeconds = quantum_s;

    auto [depth, cx] = maxSegmentCost();
    res.maxSegmentDepth = depth;
    res.maxSegmentCx = cx;

    Rng rng(options_.seed + 1);
    res.finalDistribution = execute(times, rng);
    res.failed = res.finalDistribution.failed;

    double lambda = problems::defaultPenaltyLambda(problem_);
    const BitVec *best = nullptr;
    double best_obj = 0.0;
    double expected = 0.0;
    double feasible_mass = 0.0;
    for (const auto &[y, p] : res.finalDistribution.entries) {
        expected += p * problem_.penalizedObjective(y, lambda);
        if (problem_.isFeasible(y)) {
            feasible_mass += p;
            double obj = problem_.objective(y);
            if (!best || obj < best_obj) {
                best = &y;
                best_obj = obj;
            }
        }
    }
    if (res.failed || !best) {
        // Noisy failure: fall back to the initial feasible solution
        // (Figure 10d reports these runs as terminated early).
        res.failed = true;
        res.solution = problem_.trivialFeasible();
        res.objectiveValue = problem_.objective(res.solution);
        res.expectedObjective = res.objectiveValue;
        res.inConstraintsRate = 0.0;
        return res;
    }
    res.solution = *best;
    res.objectiveValue = best_obj;
    res.expectedObjective = expected;
    res.inConstraintsRate = feasible_mass;
    return res;
}

RasenganResult
RasenganSolver::run()
{
    Stopwatch wall;
    wall.start();

    const int params = numParams();
    if (params == 0) {
        opt::OptResult trivial_training;
        trivial_training.converged = true;
        wall.stop();
        return summarize({}, trivial_training, wall.seconds(), 0.0);
    }

    Rng train_rng(options_.seed);
    Stopwatch sim_time;
    auto objective = [&](const std::vector<double> &x) {
        ScopedTimer guard(sim_time);
        return scoreDistribution(execute(x, train_rng));
    };

    opt::OptOptions oo;
    oo.maxIterations = options_.maxIterations;
    oo.initialStep = 0.4;
    oo.tolerance = 1e-5;
    oo.seed = options_.seed;
    auto optimizer = opt::makeOptimizer(options_.optimizer, oo);

    std::vector<double> x0(params, options_.initialTime);
    opt::OptResult training = optimizer->minimize(objective, x0);
    wall.stop();

    // The simulated circuit executions stand in for quantum time; what
    // remains of the wall clock is the classical optimizer + purification
    // share (Figure 12's breakdown).
    double classical_s = std::max(0.0, wall.seconds() - sim_time.seconds());
    double quantum_s =
        perExecutionQuantumSeconds() * training.evaluations;
    return summarize(training.x, training, classical_s, quantum_s);
}

} // namespace rasengan::core
