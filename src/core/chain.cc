#include "core/chain.h"

#include "common/logging.h"

namespace rasengan::core {

std::vector<BitVec>
expandStates(const std::unordered_set<BitVec, BitVecHash> &states,
             const TransitionHamiltonian &transition)
{
    std::vector<BitVec> partners;
    for (const BitVec &x : states) {
        if (auto y = transition.partner(x))
            partners.push_back(*y);
    }
    return partners;
}

Chain
buildChain(const std::vector<TransitionHamiltonian> &transitions,
           const BitVec &start, const ChainOptions &options)
{
    Chain chain;
    const int m = static_cast<int>(transitions.size());
    if (m == 0) {
        chain.reachableCount = 1; // only the start state
        return chain;
    }
    // Theorem 1: m rounds suffice for totally unimodular constraints; the
    // general bound is m^3 operators (m^2 rounds).  With early stop on,
    // default to the general bound and let saturation terminate the walk;
    // without it, stick to the TU bound to keep the chain finite.
    const int rounds = options.rounds > 0
                           ? options.rounds
                           : (options.earlyStop ? m * m : m);

    std::unordered_set<BitVec, BitVecHash> reachable{start};
    int useless_streak = 0;
    bool stopped = false;

    for (int round = 0; round < rounds && !stopped; ++round) {
        for (int k = 0; k < m && !stopped; ++k) {
            chain.unprunedSteps.push_back(k);

            std::vector<BitVec> partners =
                expandStates(reachable, transitions[k]);
            bool expanded = false;
            for (const BitVec &y : partners)
                expanded |= reachable.insert(y).second;
            chain.unprunedCoverage.push_back(reachable.size());

            if (expanded || !options.prune) {
                chain.steps.push_back(k);
                chain.coverage.push_back(reachable.size());
            }

            if (reachable.size() > options.maxTrackedStates) {
                // The tracked feasible set outgrew the budget: stop the
                // walk here; coverage becomes a lower bound.
                chain.capped = true;
                stopped = true;
            }
            if (chain.steps.size() >= options.maxChainLength)
                stopped = true;

            if (expanded) {
                useless_streak = 0;
            } else {
                ++useless_streak;
                if (options.earlyStop && useless_streak >= m) {
                    // m consecutive operators produced nothing new: no
                    // remaining prefix of the round can either.
                    stopped = true;
                }
            }
        }
    }

    chain.reachableCount = reachable.size();
    return chain;
}

} // namespace rasengan::core
