#include "core/analysis.h"

#include <sstream>

#include "circuit/optimize.h"
#include "circuit/transpile.h"
#include "core/basis.h"
#include "device/latency.h"
#include "linalg/nullspace.h"

namespace rasengan::core {

PipelineReport
analyzePipeline(const RasenganSolver &solver)
{
    const problems::Problem &problem = solver.problem();
    const RasenganOptions &options = solver.opts();

    PipelineReport report;
    report.problemId = problem.id();
    report.numVars = problem.numVars();
    report.numConstraints = problem.numConstraints();

    auto raw = homogeneousBasis(problem);
    report.rawBasisSize = static_cast<int>(raw.size());
    report.rawNonZeros = totalNonZeros(raw);
    report.executableVectors = static_cast<int>(solver.transitions().size());
    int executable_nonzeros = 0;
    for (const auto &tau : solver.transitions())
        executable_nonzeros += tau.support();
    report.executableNonZeros = executable_nonzeros;

    report.unprunedChain =
        static_cast<int>(solver.chain().unprunedSteps.size());
    report.prunedChain = static_cast<int>(solver.chain().steps.size());
    report.reachableStates = solver.chain().reachableCount;
    report.coverageCapped = solver.chain().capped;

    device::LatencyModel latency(options.latencyDevice);
    std::vector<double> nominal(solver.numParams(), options.initialTime);
    for (int s = 0; s < static_cast<int>(solver.segments().size()); ++s) {
        circuit::Circuit lowered = circuit::transpile(
            solver.segmentCircuit(s, problem.trivialFeasible(), nominal),
            {.mode = options.transpileMode, .lowerToCx = true});
        circuit::Circuit optimized = circuit::optimizeCircuit(lowered);
        SegmentReport seg;
        seg.index = s;
        seg.transitions = solver.segments()[s].stepCount;
        seg.depth = optimized.depth();
        seg.cxCount = optimized.countCx();
        seg.shotTimeUs = latency.circuitTimeUs(optimized);
        report.segments.push_back(seg);
        report.maxSegmentDepth = std::max(report.maxSegmentDepth, seg.depth);
        report.quantumSecondsPerExecution += latency.executionTimeSeconds(
            optimized, options.shotsPerSegment);
    }
    return report;
}

std::string
PipelineReport::toString() const
{
    std::ostringstream os;
    os << "pipeline report for " << problemId << " (" << numVars
       << " vars, " << numConstraints << " constraints)\n";
    os << "  homogeneous basis: " << rawBasisSize << " vectors, "
       << rawNonZeros << " nonzeros\n";
    os << "  executable set:    " << executableVectors << " vectors, "
       << executableNonZeros << " nonzeros (after Algorithm 1 + "
       << "augmentation)\n";
    os << "  chain: " << prunedChain << " kept of " << unprunedChain
       << " scheduled; reaches " << reachableStates << " feasible states"
       << (coverageCapped ? " (capped)" : "") << "\n";
    os << "  segments (" << segments.size() << "):\n";
    for (const SegmentReport &seg : segments) {
        os << "    #" << seg.index << ": " << seg.transitions
           << " transitions, depth " << seg.depth << ", " << seg.cxCount
           << " CX, " << seg.shotTimeUs << " us/shot\n";
    }
    os << "  quantum time per training evaluation: "
       << quantumSecondsPerExecution << " s\n";
    return os.str();
}

} // namespace rasengan::core
