#include "core/segment.h"

#include <algorithm>

#include "common/logging.h"

namespace rasengan::core {

std::vector<Segment>
partitionChain(int chain_length, int transitions_per_segment)
{
    fatal_if(chain_length < 0, "negative chain length");
    std::vector<Segment> segments;
    if (chain_length == 0)
        return segments;
    if (transitions_per_segment <= 0) {
        segments.push_back({0, chain_length});
        return segments;
    }
    for (int first = 0; first < chain_length;
         first += transitions_per_segment) {
        Segment seg;
        seg.firstStep = first;
        seg.stepCount =
            std::min(transitions_per_segment, chain_length - first);
        segments.push_back(seg);
    }
    return segments;
}

} // namespace rasengan::core
