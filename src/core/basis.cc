#include "core/basis.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "core/transition.h"
#include "linalg/nullspace.h"
#include "linalg/rational.h"
#include "linalg/solve.h"

namespace rasengan::core {

namespace {

/** How far the vector leaves {-1, 0, 1}: sum of per-entry excess. */
int
rangeViolation(const linalg::IntVec &v)
{
    int score = 0;
    for (int64_t e : v)
        if (std::abs(e) > 1)
            score += static_cast<int>(std::abs(e)) - 1;
    return score;
}

bool
allSigned01(const std::vector<linalg::IntVec> &basis)
{
    for (const auto &u : basis)
        if (!linalg::isSigned01(u))
            return false;
    return true;
}

/** Incremental rational Gaussian elimination for independence checks. */
class RankTracker
{
  public:
    explicit RankTracker(int n) : n_(n) {}

    /** Insert @p v if independent of the current span; report success. */
    bool
    tryAdd(const linalg::IntVec &v)
    {
        std::vector<linalg::Rational> row(n_);
        for (int i = 0; i < n_; ++i)
            row[i] = linalg::Rational(v[i]);
        for (const auto &[lead, basis_row] : rows_) {
            if (row[lead].isZero())
                continue;
            linalg::Rational factor = row[lead];
            for (int i = 0; i < n_; ++i)
                row[i] -= factor * basis_row[i];
        }
        int lead = -1;
        for (int i = 0; i < n_; ++i) {
            if (!row[i].isZero()) {
                lead = i;
                break;
            }
        }
        if (lead < 0)
            return false;
        linalg::Rational inv = linalg::Rational(1) / row[lead];
        for (int i = 0; i < n_; ++i)
            row[i] *= inv;
        rows_.emplace_back(lead, std::move(row));
        return true;
    }

    size_t rank() const { return rows_.size(); }

  private:
    int n_;
    std::vector<std::pair<int, std::vector<linalg::Rational>>> rows_;
};

/**
 * Fallback basis for constraint systems whose RREF kernel basis leaves
 * {-1,0,1}: differences of feasible solutions are kernel vectors with
 * entries in {-1,0,1} by construction (this is literally the paper's
 * u = x_g - x_p).  Greedily extract a maximal independent, sparse set.
 */
std::vector<linalg::IntVec>
feasibleDifferenceBasis(const problems::Problem &problem, size_t target)
{
    constexpr size_t kEnumLimit = 4096;
    auto sols = linalg::enumerateBinary(problem.constraints(),
                                        problem.bounds(), kEnumLimit);
    fatal_if(sols.empty(), "{}: no feasible solutions for difference basis",
             problem.id());
    const int n = problem.numVars();
    std::vector<int> x0 = problem.trivialFeasible().toVector(n);

    if (sols.size() == 1) {
        // Unique feasible solution: nothing to transition between.
        return {};
    }
    std::vector<linalg::IntVec> diffs;
    diffs.reserve(sols.size());
    for (const auto &sol : sols) {
        linalg::IntVec d(n);
        bool zero = true;
        for (int i = 0; i < n; ++i) {
            d[i] = sol[i] - x0[i];
            zero &= d[i] == 0;
        }
        if (!zero)
            diffs.push_back(std::move(d));
    }
    std::stable_sort(diffs.begin(), diffs.end(),
                     [](const linalg::IntVec &a, const linalg::IntVec &b) {
                         return linalg::nonZeroCount(a) <
                                linalg::nonZeroCount(b);
                     });

    RankTracker tracker(n);
    std::vector<linalg::IntVec> basis;
    for (const auto &d : diffs) {
        if (basis.size() >= target)
            break;
        if (tracker.tryAdd(d))
            basis.push_back(d);
    }
    fatal_if(basis.empty(), "{}: could not extract a difference basis",
             problem.id());
    return basis;
}

} // namespace

std::vector<linalg::IntVec>
homogeneousBasis(const problems::Problem &problem)
{
    auto basis = linalg::nullspaceBasis(problem.constraints());
    if (allSigned01(basis))
        return basis;

    // Repair pass: fold other basis vectors into the violating ones while
    // that strictly reduces how far they leave {-1,0,1}.
    for (int pass = 0; pass < 32 && !allSigned01(basis); ++pass) {
        bool changed = false;
        for (size_t i = 0; i < basis.size(); ++i) {
            if (linalg::isSigned01(basis[i]))
                continue;
            for (size_t j = 0; j < basis.size(); ++j) {
                if (i == j)
                    continue;
                int current = rangeViolation(basis[i]);
                for (int sign : {+1, -1}) {
                    linalg::IntVec cand(basis[i].size());
                    for (size_t k = 0; k < cand.size(); ++k)
                        cand[k] = basis[i][k] + sign * basis[j][k];
                    if (rangeViolation(cand) < current &&
                        linalg::nonZeroCount(cand) > 0) {
                        basis[i] = std::move(cand);
                        current = rangeViolation(basis[i]);
                        changed = true;
                    }
                }
            }
        }
        if (!changed)
            break;
    }
    if (allSigned01(basis))
        return basis;

    // General 0/1 systems (e.g. set covering): fall back to differences
    // of enumerated feasible solutions.
    return feasibleDifferenceBasis(problem, basis.size());
}

namespace {

/** u_i +/- u_j; nullopt when an entry leaves {-1, 0, 1}. */
std::optional<linalg::IntVec>
combine(const linalg::IntVec &a, const linalg::IntVec &b, int sign)
{
    linalg::IntVec out(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        out[i] = a[i] + sign * b[i];
        if (out[i] < -1 || out[i] > 1)
            return std::nullopt;
    }
    return out;
}

} // namespace

std::vector<linalg::IntVec>
simplifyBasis(std::vector<linalg::IntVec> basis, int max_passes)
{
    if (basis.size() < 2)
        return basis;
    for (int pass = 0; pass < max_passes; ++pass) {
        bool changed = false;
        for (size_t i = 0; i < basis.size(); ++i) {
            for (size_t j = 0; j < basis.size(); ++j) {
                if (i == j)
                    continue;
                int current = linalg::nonZeroCount(basis[i]);
                for (int sign : {+1, -1}) {
                    auto cand = combine(basis[i], basis[j], sign);
                    // Elementary operations keep the basis independent, so
                    // candidates are never zero; the > 0 check guards the
                    // invariant anyway.
                    if (cand && linalg::nonZeroCount(*cand) > 0 &&
                        linalg::nonZeroCount(*cand) < current) {
                        basis[i] = std::move(*cand);
                        current = linalg::nonZeroCount(basis[i]);
                        changed = true;
                    }
                }
            }
        }
        if (!changed)
            break;
    }
    return basis;
}

namespace {

/** Closure of {start} under +/-u moves for every u in @p vectors. */
std::unordered_set<BitVec, BitVecHash>
reachableClosure(const std::vector<TransitionHamiltonian> &vectors,
                 const BitVec &start)
{
    std::unordered_set<BitVec, BitVecHash> reached{start};
    std::vector<BitVec> frontier{start};
    while (!frontier.empty()) {
        std::vector<BitVec> next;
        for (const BitVec &x : frontier) {
            for (const auto &tau : vectors) {
                if (auto y = tau.partner(x)) {
                    if (reached.insert(*y).second)
                        next.push_back(*y);
                }
            }
        }
        frontier = std::move(next);
    }
    return reached;
}

} // namespace

std::vector<linalg::IntVec>
transitionVectors(const problems::Problem &problem, bool simplify,
                  size_t max_feasible)
{
    auto basis = homogeneousBasis(problem);
    if (simplify)
        basis = simplifyBasis(basis);
    if (!problem.enumerationEnabled()) {
        // Connectivity cannot be verified without enumeration, and the
        // simplified vectors alone can disconnect the walk (sparser
        // vectors are dark on more states).  Keep the union: pruning
        // later drops whichever copies do not expand.
        if (simplify) {
            auto original = homogeneousBasis(problem);
            for (auto &u : original) {
                if (std::find(basis.begin(), basis.end(), u) == basis.end())
                    basis.push_back(std::move(u));
            }
        }
        return basis;
    }
    const auto &feasible = problem.feasibleSolutions();
    if (feasible.size() > max_feasible || feasible.size() <= 1)
        return basis;

    auto transitions = makeTransitions(basis);
    auto reached =
        reachableClosure(transitions, problem.trivialFeasible());

    const int n = problem.numVars();
    for (const BitVec &target : feasible) {
        if (reached.count(target))
            continue;
        // Connect the orphaned state directly to the start: the
        // difference of two feasible solutions is a signed-0/1 kernel
        // vector (Equation 3).
        linalg::IntVec u(n);
        for (int i = 0; i < n; ++i) {
            u[i] = (target.get(i) ? 1 : 0) -
                   (problem.trivialFeasible().get(i) ? 1 : 0);
        }
        panic_if(linalg::nonZeroCount(u) == 0,
                 "duplicate feasible state in augmentation");
        basis.push_back(u);
        transitions.emplace_back(basis.back());
        // The new vector may capture more than one orphan: recompute the
        // closure before looking at the next target.
        reached = reachableClosure(transitions, problem.trivialFeasible());
    }

    // Augmentation vectors (raw feasible differences) can have wide
    // supports; run Algorithm 1 once more over the full set and keep the
    // result only when it preserves the walk's coverage.
    if (simplify && basis.size() > 1) {
        auto candidate = simplifyBasis(basis);
        auto cand_reached =
            reachableClosure(makeTransitions(candidate),
                             problem.trivialFeasible());
        if (cand_reached.size() == reached.size())
            basis = std::move(candidate);
    }
    return basis;
}

int
totalNonZeros(const std::vector<linalg::IntVec> &basis)
{
    int total = 0;
    for (const auto &u : basis)
        total += linalg::nonZeroCount(u);
    return total;
}

} // namespace rasengan::core
