#include "core/transition.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/nullspace.h"

namespace rasengan::core {

TransitionHamiltonian::TransitionHamiltonian(linalg::IntVec u)
    : u_(std::move(u))
{
    fatal_if(u_.empty(), "transition over zero variables");
    fatal_if(static_cast<int>(u_.size()) > kMaxBits,
             "transition over {} variables exceeds {}", u_.size(), kMaxBits);
    fatal_if(!linalg::isSigned01(u_),
             "transition vector has entries outside {{-1,0,1}}");
    for (size_t i = 0; i < u_.size(); ++i) {
        if (u_[i] == 0)
            continue;
        int q = static_cast<int>(i);
        mask_.set(q);
        supportQubits_.push_back(q);
        if (u_[i] == -1)
            patternPlus_.set(q);
        ++supportSize_;
    }
    fatal_if(supportSize_ == 0, "transition vector is zero");
}

std::optional<BitVec>
TransitionHamiltonian::partner(const BitVec &x) const
{
    BitVec restricted = x & mask_;
    if (restricted == patternPlus_ ||
        restricted == (patternPlus_ ^ mask_)) {
        return x ^ mask_;
    }
    return std::nullopt;
}

void
TransitionHamiltonian::applyTo(qsim::SparseState &state, double t,
                               double prune_threshold,
                               qsim::SparseStepPlan *record) const
{
    panic_if(state.numQubits() < numVars(),
             "state has {} qubits, transition needs {}", state.numQubits(),
             numVars());
    state.applyPairRotation(mask_, patternPlus_, t, prune_threshold,
                            record);
}

void
TransitionHamiltonian::appendToCircuit(circuit::Circuit &circ,
                                       double t) const
{
    circ.ensureQubits(numVars());
    const int q0 = supportQubits_.front();

    if (supportSize_ == 1) {
        // H^tau = sigma+ + sigma- = X on the single support qubit, so
        // tau(u, t) = e^{-i t X} = RX(2t).
        circ.rx(q0, 2.0 * t);
        return;
    }

    std::vector<int> rest(supportQubits_.begin() + 1, supportQubits_.end());

    // Conjugation: X on lowering entries maps the raising pattern to
    // all-zeros on the support; the CX fan-out from q0 maps the two
    // patterns to (q0 = 0/1, rest = 0); X on the rest turns the required
    // zero-controls into one-controls.
    auto conjugate = [&]() {
        for (int q : supportQubits_)
            if (u_[q] == -1)
                circ.x(q);
        for (int r : rest)
            circ.cx(q0, r);
        for (int r : rest)
            circ.x(r);
    };
    auto unconjugate = [&]() {
        for (auto it = rest.rbegin(); it != rest.rend(); ++it)
            circ.x(*it);
        for (auto it = rest.rbegin(); it != rest.rend(); ++it)
            circ.cx(q0, *it);
        for (auto it = supportQubits_.rbegin(); it != supportQubits_.rend();
             ++it) {
            if (u_[*it] == -1)
                circ.x(*it);
        }
    };

    conjugate();

    // Controlled RX(2t) on q0 (controls = rest) = H . C-RZ(2t) . H, and
    // C^c RZ(2t) is the symmetric pair of multi-controlled phases:
    // MCP(rest -> q0, 2t) plus an MCP(-t) across the controls.
    circ.h(q0);
    circ.mcp(rest, q0, 2.0 * t);
    if (rest.size() == 1) {
        circ.p(rest[0], -t);
    } else {
        std::vector<int> sub(rest.begin(), rest.end() - 1);
        circ.mcp(sub, rest.back(), -t);
    }
    circ.h(q0);

    unconjugate();
}

circuit::Circuit
TransitionHamiltonian::toCircuit(int num_qubits, double t) const
{
    fatal_if(num_qubits < numVars(),
             "{} qubits cannot hold a transition over {}", num_qubits,
             numVars());
    circuit::Circuit circ(num_qubits);
    appendToCircuit(circ, t);
    return circ;
}

std::vector<std::pair<double, qsim::PauliString>>
TransitionHamiltonian::pauliDecomposition() const
{
    const int k = supportSize_;
    fatal_if(k > 20, "Pauli expansion of a {}-qubit transition is 2^{} "
             "terms; refusing",
             k, k - 1);
    std::vector<std::pair<double, qsim::PauliString>> terms;
    const double scale = std::ldexp(1.0, -(k - 1)); // 1 / 2^{k-1}

    // Enumerate Y-subsets of the support with even cardinality.
    for (uint32_t mask = 0; mask < (1u << k); ++mask) {
        int y_count = __builtin_popcount(mask);
        if (y_count % 2 != 0)
            continue;
        qsim::PauliString p(numVars());
        double coeff = scale * ((y_count / 2) % 2 == 0 ? 1.0 : -1.0);
        for (int i = 0; i < k; ++i) {
            int q = supportQubits_[i];
            if (mask & (1u << i)) {
                p.setOp(q, qsim::PauliOp::Y);
                if (u_[q] < 0)
                    coeff = -coeff; // sign(u_i) factor for Y positions
            } else {
                p.setOp(q, qsim::PauliOp::X);
            }
        }
        terms.emplace_back(coeff, std::move(p));
    }
    return terms;
}

std::vector<TransitionHamiltonian>
makeTransitions(const std::vector<linalg::IntVec> &basis)
{
    std::vector<TransitionHamiltonian> out;
    out.reserve(basis.size());
    for (const auto &u : basis)
        out.emplace_back(u);
    return out;
}

} // namespace rasengan::core
