#include "exec/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rasengan::exec {

namespace {

constexpr const char *kHeader = "rasengan-checkpoint v1";

ExecError
corrupt(int line, const std::string &message)
{
    return ExecError{ErrorCode::CheckpointCorrupt,
                     "line " + std::to_string(line) + ": " + message};
}

} // namespace

std::string
writeCheckpoint(const SegmentCheckpoint &cp)
{
    std::ostringstream os;
    os.precision(17); // max_digits10: lossless double round trip
    os << kHeader << "\n";
    os << "problem " << cp.problemId << "\n";
    os << "kind " << (cp.shotBased ? "shots" : "probs") << "\n";
    os << "segment " << cp.nextSegment << "\n";
    os << "bits " << cp.numBits << "\n";
    os << "prepurify " << cp.prePurifyFeasibleFraction << "\n";
    os << "times " << cp.times.size();
    for (double t : cp.times)
        os << " " << t;
    os << "\n";
    if (!cp.rngState.empty())
        os << "rng " << cp.rngState << "\n";
    if (cp.shotBased) {
        for (const auto &[state, n] : cp.shotEntries)
            os << "entry " << state.toString(cp.numBits) << " " << n
               << "\n";
    } else {
        for (const auto &[state, p] : cp.probEntries)
            os << "entry " << state.toString(cp.numBits) << " " << p
               << "\n";
    }
    os << "end\n";
    return os.str();
}

Expected<SegmentCheckpoint>
parseCheckpoint(const std::string &text)
{
    SegmentCheckpoint cp;
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    bool saw_header = false;
    bool saw_end = false;
    bool saw_kind = false;

    while (std::getline(stream, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (!saw_header) {
            if (line != kHeader)
                return corrupt(line_no, "bad header");
            saw_header = true;
            continue;
        }
        std::istringstream ss(line);
        std::string keyword;
        ss >> keyword;
        if (keyword == "problem") {
            if (!(ss >> cp.problemId))
                return corrupt(line_no, "malformed problem id");
        } else if (keyword == "kind") {
            std::string kind;
            if (!(ss >> kind) || (kind != "shots" && kind != "probs"))
                return corrupt(line_no, "unknown kind");
            cp.shotBased = kind == "shots";
            saw_kind = true;
        } else if (keyword == "segment") {
            if (!(ss >> cp.nextSegment) || cp.nextSegment < 0)
                return corrupt(line_no, "malformed segment index");
        } else if (keyword == "bits") {
            if (!(ss >> cp.numBits) || cp.numBits < 1 ||
                cp.numBits > kMaxBits) {
                return corrupt(line_no, "bits out of range");
            }
        } else if (keyword == "prepurify") {
            if (!(ss >> cp.prePurifyFeasibleFraction))
                return corrupt(line_no, "malformed prepurify");
        } else if (keyword == "times") {
            size_t count = 0;
            if (!(ss >> count))
                return corrupt(line_no, "malformed times count");
            cp.times.resize(count);
            for (size_t i = 0; i < count; ++i)
                if (!(ss >> cp.times[i]))
                    return corrupt(line_no, "missing evolution time");
        } else if (keyword == "rng") {
            std::getline(ss, cp.rngState);
            if (!cp.rngState.empty() && cp.rngState.front() == ' ')
                cp.rngState.erase(0, 1);
            if (cp.rngState.empty())
                return corrupt(line_no, "empty rng state");
        } else if (keyword == "entry") {
            std::string bits;
            if (!(ss >> bits))
                return corrupt(line_no, "malformed entry");
            if (cp.numBits == 0 ||
                static_cast<int>(bits.size()) != cp.numBits)
                return corrupt(line_no, "entry width mismatch");
            for (char ch : bits)
                if (ch != '0' && ch != '1')
                    return corrupt(line_no, "entry is not binary");
            if (!saw_kind)
                return corrupt(line_no, "entry before kind");
            if (cp.shotBased) {
                uint64_t n = 0;
                if (!(ss >> n) || n == 0)
                    return corrupt(line_no, "malformed shot count");
                cp.shotEntries.emplace_back(BitVec::fromString(bits), n);
            } else {
                double p = 0.0;
                if (!(ss >> p) || !(p > 0.0))
                    return corrupt(line_no, "malformed probability");
                cp.probEntries.emplace_back(BitVec::fromString(bits), p);
            }
        } else if (keyword == "end") {
            saw_end = true;
            break;
        } else {
            return corrupt(line_no, "unknown keyword '" + keyword + "'");
        }
    }

    if (!saw_header)
        return corrupt(1, "missing header");
    if (!saw_end)
        return corrupt(line_no, "truncated checkpoint (missing 'end')");
    if (cp.shotEntries.empty() && cp.probEntries.empty())
        return corrupt(line_no, "checkpoint has no distribution entries");
    return cp;
}

Expected<bool>
saveCheckpoint(const SegmentCheckpoint &cp, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return ExecError{ErrorCode::CheckpointCorrupt,
                             "cannot open '" + tmp + "' for writing"};
        out << writeCheckpoint(cp);
        if (!out)
            return ExecError{ErrorCode::CheckpointCorrupt,
                             "short write to '" + tmp + "'"};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return ExecError{ErrorCode::CheckpointCorrupt,
                         "cannot rename into '" + path + "'"};
    }
    return true;
}

Expected<SegmentCheckpoint>
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return ExecError{ErrorCode::CheckpointCorrupt,
                         "cannot open '" + path + "'"};
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseCheckpoint(buf.str());
}

} // namespace rasengan::exec
