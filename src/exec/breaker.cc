#include "exec/breaker.h"

namespace rasengan::exec {

CircuitBreaker::State
CircuitBreaker::state(double now)
{
    if (state_ == State::Open &&
        now - openedAt_ >= options_.cooldownSeconds) {
        state_ = State::HalfOpen;
    }
    return state_;
}

bool
CircuitBreaker::allow(double now)
{
    return state(now) != State::Open;
}

void
CircuitBreaker::recordSuccess()
{
    consecutiveFailures_ = 0;
    state_ = State::Closed;
}

void
CircuitBreaker::recordFailure(double now)
{
    ++consecutiveFailures_;
    if (state_ == State::HalfOpen) {
        // A failed probe re-opens immediately.
        state_ = State::Open;
        openedAt_ = now;
        ++trips_;
        return;
    }
    if (state_ == State::Closed &&
        consecutiveFailures_ >= options_.failureThreshold) {
        state_ = State::Open;
        openedAt_ = now;
        ++trips_;
    }
}

void
CircuitBreaker::reset()
{
    state_ = State::Closed;
    consecutiveFailures_ = 0;
}

} // namespace rasengan::exec
