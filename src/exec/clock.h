/**
 * @file
 * Clock abstraction for retry backoff and circuit-breaker cooldowns.
 *
 * Resilience logic never calls std::chrono directly: it asks a Clock
 * for the current time and for sleeps.  The default `VirtualClock`
 * advances a counter instead of blocking, which makes retry tests
 * instantaneous and deterministic, and lets the accumulated "slept"
 * time feed the quantum-latency estimate (a retried segment costs
 * wall-clock time on a real cloud backend even though our simulator
 * replays it instantly).  `WallClock` is the production implementation.
 */

#ifndef RASENGAN_EXEC_CLOCK_H
#define RASENGAN_EXEC_CLOCK_H

namespace rasengan::exec {

class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic current time in seconds. */
    virtual double now() const = 0;

    /** Block (or pretend to) for @p seconds. */
    virtual void sleep(double seconds) = 0;

    /** Total time spent in sleep() since construction, in seconds. */
    virtual double sleptSeconds() const = 0;
};

/** Deterministic non-blocking clock: sleep() just advances now(). */
class VirtualClock : public Clock
{
  public:
    double now() const override { return now_; }

    void
    sleep(double seconds) override
    {
        if (seconds > 0.0) {
            now_ += seconds;
            slept_ += seconds;
        }
    }

    /** Advance time without counting it as sleep (e.g. work duration). */
    void
    advance(double seconds)
    {
        if (seconds > 0.0)
            now_ += seconds;
    }

    double sleptSeconds() const override { return slept_; }

  private:
    double now_ = 0.0;
    double slept_ = 0.0;
};

/** Real steady-clock implementation; sleep() actually blocks. */
class WallClock : public Clock
{
  public:
    WallClock();
    double now() const override;
    void sleep(double seconds) override;
    double sleptSeconds() const override { return slept_; }

  private:
    double origin_ = 0.0;
    double slept_ = 0.0;
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_CLOCK_H
