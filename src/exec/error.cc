#include "exec/error.h"

namespace rasengan::exec {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::BackendUnavailable: return "backend-unavailable";
      case ErrorCode::ShotLoss: return "shot-loss";
      case ErrorCode::CorruptedCounts: return "corrupted-counts";
      case ErrorCode::NonFiniteValue: return "non-finite-value";
      case ErrorCode::BreakerOpen: return "breaker-open";
      case ErrorCode::RetriesExhausted: return "retries-exhausted";
      case ErrorCode::InvalidJob: return "invalid-job";
      case ErrorCode::CheckpointCorrupt: return "checkpoint-corrupt";
      case ErrorCode::DeadlineExceeded: return "deadline";
      case ErrorCode::Cancelled: return "cancelled";
    }
    return "unknown";
}

std::string
ExecError::toString() const
{
    std::string out = errorCodeName(code);
    if (!message.empty()) {
        out += ": ";
        out += message;
    }
    return out;
}

} // namespace rasengan::exec
