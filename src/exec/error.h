/**
 * @file
 * Structured execution errors for the resilient execution engine.
 *
 * Library code below `src/exec/` never aborts on a backend failure:
 * every circuit execution returns `Expected<T, ExecError>` and the
 * caller decides whether to retry, degrade, or surface the error.  The
 * error taxonomy mirrors the transient failures of a cloud QPU stack:
 * job timeouts, backend outages, partial shot loss, corrupted count
 * histograms flagged by backend-side validation, and non-finite
 * expectation values.
 */

#ifndef RASENGAN_EXEC_ERROR_H
#define RASENGAN_EXEC_ERROR_H

#include <string>

namespace rasengan::exec {

enum class ErrorCode {
    Timeout,            ///< the execution exceeded its deadline
    BackendUnavailable, ///< transient outage / queue rejection
    ShotLoss,           ///< histogram returned fewer shots than requested
    CorruptedCounts,    ///< backend-side validation flagged the histogram
    NonFiniteValue,     ///< expectation evaluated to NaN/Inf
    BreakerOpen,        ///< circuit breaker rejected the call
    RetriesExhausted,   ///< bounded retry budget spent without success
    InvalidJob,         ///< malformed job description (not retryable)
    CheckpointCorrupt,  ///< checkpoint file failed to parse/validate
    DeadlineExceeded,   ///< per-job wall-clock deadline passed
    Cancelled,          ///< cooperative cancellation (drain, client gone)
};

/** Human-readable name of @p code (stable, used in logs and tests). */
const char *errorCodeName(ErrorCode code);

struct ExecError
{
    ErrorCode code = ErrorCode::BackendUnavailable;
    std::string message;
    int attempts = 1; ///< attempts spent before this error was returned

    /** Transient errors may be retried; structural ones may not. */
    bool
    retryable() const
    {
        return code != ErrorCode::InvalidJob &&
               code != ErrorCode::RetriesExhausted &&
               code != ErrorCode::CheckpointCorrupt &&
               code != ErrorCode::DeadlineExceeded &&
               code != ErrorCode::Cancelled;
    }

    std::string toString() const;
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_ERROR_H
