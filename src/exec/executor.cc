#include "exec/executor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rasengan::exec {

namespace {

/** Process-wide mirrors of the per-executor ExecStats counters. */
struct ExecCounters
{
    obs::Counter &executions = obs::Registry::global().counter(
        "exec_executions_total", "Jobs submitted to the executor");
    obs::Counter &attempts = obs::Registry::global().counter(
        "exec_attempts_total", "Backend attempts including retries");
    obs::Counter &retries = obs::Registry::global().counter(
        "exec_retries_total", "Attempts after the first for a job");
    obs::Counter &failures = obs::Registry::global().counter(
        "exec_failures_total", "Jobs that exhausted every attempt");
    obs::Counter &breakerTrips = obs::Registry::global().counter(
        "exec_breaker_trips_total", "Circuit breaker Closed->Open trips");
    obs::Counter &demotions = obs::Registry::global().counter(
        "exec_demotions_total", "Degradation ladder steps taken");
    obs::Counter &fallbacks = obs::Registry::global().counter(
        "exec_fallbacks_total", "Jobs served by the clean fallback");
    obs::Counter &deadlineHits = obs::Registry::global().counter(
        "exec_deadline_hits_total",
        "Jobs stopped by a deadline or cancellation token");
    obs::Gauge &backoffSeconds = obs::Registry::global().gauge(
        "exec_backoff_seconds", "Total backoff delay (virtual or wall)");
};

ExecCounters &
execCounters()
{
    static ExecCounters counters;
    return counters;
}

} // namespace

const char *
degradationLevelName(DegradationLevel level)
{
    switch (level) {
      case DegradationLevel::Full: return "full";
      case DegradationLevel::ReducedShots: return "reduced-shots";
      case DegradationLevel::NoPurification: return "no-purification";
      case DegradationLevel::CleanFallback: return "clean-fallback";
    }
    return "unknown";
}

ResilientExecutor::ResilientExecutor(ResilienceOptions options)
    : options_(options), breaker_(options.breaker),
      jitterRng_(options.jitterSeed)
{
    if (options_.threads > 0)
        parallel::setThreadCount(options_.threads);
    if (options_.wallClock)
        clock_ = std::make_unique<WallClock>();
    else
        clock_ = std::make_unique<VirtualClock>();
    backend_ = &simulator_;
    if (options_.faults.enabled()) {
        injector_ = std::make_unique<FaultInjector>(
            simulator_, options_.faults, clock_.get());
        backend_ = injector_.get();
    }
}

bool
ResilientExecutor::stopCheck(const std::string &tag, int attempts_spent,
                             ExecError *err)
{
    const CancelToken *token = options_.cancel;
    if (token == nullptr || !token->stopRequested())
        return false;
    ++stats_.failures;
    ++stats_.deadlineHits;
    execCounters().failures.inc();
    execCounters().deadlineHits.inc();
    obs::instantEvent("exec", "deadline", tag);
    const bool expired = token->deadlineExpired();
    *err = ExecError{expired ? ErrorCode::DeadlineExceeded
                             : ErrorCode::Cancelled,
                     tag + (expired ? ": wall-clock deadline passed"
                                    : ": cancelled"),
                     attempts_spent};
    return true;
}

template <typename Result, typename Job, typename Call>
Expected<Result>
ResilientExecutor::attemptLoop(const Job &job, const Call &call)
{
    ++stats_.executions;
    execCounters().executions.inc();
    const int max_attempts = std::max(options_.retry.maxAttempts, 1);
    ExecError last{ErrorCode::RetriesExhausted, job.tag};

    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        // Cooperative deadline/cancel checkpoint: checked before every
        // attempt so a retry loop cannot outlive the job's budget.
        if (ExecError stop; stopCheck(job.tag, attempt - 1, &stop))
            return stop;
        if (!breaker_.allow(clock_->now())) {
            ++stats_.failures;
            execCounters().failures.inc();
            return ExecError{ErrorCode::BreakerOpen,
                             job.tag + ": circuit breaker open",
                             attempt - 1};
        }
        ++stats_.attempts;
        execCounters().attempts.inc();
        if (attempt > 1) {
            ++stats_.retries;
            execCounters().retries.inc();
            obs::instantEvent("exec", "retry", job.tag);
        }
        if (job.attemptSeconds > 0.0) {
            if (auto *vc = dynamic_cast<VirtualClock *>(clock_.get()))
                vc->advance(job.attemptSeconds);
        }
        Expected<Result> result = call(job);
        if (result.ok()) {
            breaker_.recordSuccess();
            return result;
        }
        last = result.error();
        last.attempts = attempt;
        const uint64_t trips_before = breaker_.trips();
        breaker_.recordFailure(clock_->now());
        if (breaker_.trips() > trips_before) {
            execCounters().breakerTrips.inc(breaker_.trips() -
                                            trips_before);
            obs::instantEvent("exec", "breaker-trip", job.tag);
        }
        stats_.breakerTrips = breaker_.trips();
        debugLog("exec: {} attempt {}/{} failed ({})", job.tag.c_str(),
                 attempt, max_attempts, last.toString().c_str());
        if (!last.retryable())
            break;
        if (attempt < max_attempts) {
            double delay =
                options_.retry.delaySeconds(attempt, jitterRng_);
            stats_.backoffSeconds += delay;
            execCounters().backoffSeconds.add(delay);
            clock_->sleep(delay);
        }
    }

    ++stats_.failures;
    execCounters().failures.inc();
    stats_.breakerTrips = breaker_.trips();
    return ExecError{ErrorCode::RetriesExhausted,
                     job.tag + ": " + last.toString(), last.attempts};
}

Expected<qsim::Counts>
ResilientExecutor::run(const ShotJob &job)
{
    if (level_ == DegradationLevel::CleanFallback) {
        // Bypass the flaky chain entirely: the clean simulator is the
        // local, trusted stand-in a hybrid stack falls back to.
        ++stats_.executions;
        execCounters().executions.inc();
        if (ExecError stop; stopCheck(job.tag, 0, &stop))
            return stop;
        ++stats_.attempts;
        ++stats_.fallbacks;
        execCounters().attempts.inc();
        execCounters().fallbacks.inc();
        return simulator_.run(job);
    }
    return attemptLoop<qsim::Counts>(
        job, [&](const ShotJob &j) { return backend_->run(j); });
}

Expected<double>
ResilientExecutor::expectation(const ValueJob &job)
{
    if (level_ == DegradationLevel::CleanFallback) {
        ++stats_.executions;
        execCounters().executions.inc();
        if (ExecError stop; stopCheck(job.tag, 0, &stop))
            return stop;
        ++stats_.attempts;
        ++stats_.fallbacks;
        execCounters().attempts.inc();
        execCounters().fallbacks.inc();
        return simulator_.expectation(job);
    }
    return attemptLoop<double>(
        job, [&](const ValueJob &j) { return backend_->expectation(j); });
}

bool
ResilientExecutor::canDemote() const
{
    return options_.degradation &&
           level_ != DegradationLevel::CleanFallback;
}

DegradationLevel
ResilientExecutor::demote(const std::string &reason)
{
    panic_if(!canDemote(), "demote() beyond the ladder");
    level_ = static_cast<DegradationLevel>(static_cast<int>(level_) + 1);
    ++stats_.demotions;
    execCounters().demotions.inc();
    obs::instantEvent("exec", "demote", degradationLevelName(level_));
    stats_.breakerTrips = breaker_.trips();
    breaker_.reset();
    warn(LogTail()
             .kv("level", degradationLevelName(level_))
             .kvText("reason", reason),
         "exec: degrading");
    return level_;
}

uint64_t
ResilientExecutor::degradedShots(uint64_t nominal) const
{
    if (level_ == DegradationLevel::Full ||
        level_ == DegradationLevel::CleanFallback) {
        return nominal;
    }
    double scaled = static_cast<double>(nominal) *
                    std::clamp(options_.shotsDemotionFactor, 0.01, 1.0);
    return std::max<uint64_t>(1, static_cast<uint64_t>(scaled));
}

bool
ResilientExecutor::purificationDisabled() const
{
    return level_ == DegradationLevel::NoPurification;
}

const FaultStats *
ResilientExecutor::faultStats() const
{
    return injector_ ? &injector_->stats() : nullptr;
}

} // namespace rasengan::exec
