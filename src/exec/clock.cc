#include "exec/clock.h"

#include <chrono>
#include <thread>

#include "obs/clock.h"

namespace rasengan::exec {

WallClock::WallClock() : origin_(obs::nowSeconds()) {}

double
WallClock::now() const
{
    // Same seam as trace/metric timestamps (obs::Clock) so exec timing
    // and observability output never disagree about wall time.
    return obs::nowSeconds() - origin_;
}

void
WallClock::sleep(double seconds)
{
    if (seconds <= 0.0)
        return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    slept_ += seconds;
}

} // namespace rasengan::exec
