#include "exec/clock.h"

#include <chrono>
#include <thread>

namespace rasengan::exec {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

WallClock::WallClock() : origin_(steadySeconds()) {}

double
WallClock::now() const
{
    return steadySeconds() - origin_;
}

void
WallClock::sleep(double seconds)
{
    if (seconds <= 0.0)
        return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    slept_ += seconds;
}

} // namespace rasengan::exec
