/**
 * @file
 * Deterministic fault-injecting backend decorator.
 *
 * Models cloud-QPU flakiness: with probability `rate` per attempt the
 * injector produces one of four transient faults -- a timeout (charged
 * to the clock, no result), a backend outage, partial shot loss, or a
 * corrupted histogram (random readout bitflips).  Shot loss and
 * corruption actually mutate the inner backend's histogram before the
 * validation layer catches them, exercising the same detection path a
 * real client relies on.  Expectation jobs can additionally yield NaN.
 *
 * All randomness comes from a dedicated seeded Rng that is independent
 * of the sampling streams, so a run at fault rate r and the fault-free
 * run consume identical sampling randomness -- the basis of the
 * "faulty solve retries to a bit-identical result" guarantee.
 */

#ifndef RASENGAN_EXEC_FAULTS_H
#define RASENGAN_EXEC_FAULTS_H

#include <cstdint>
#include <string>

#include "exec/backend.h"
#include "exec/clock.h"

namespace rasengan::exec {

/**
 * Process-level fault plan: deterministic injectable death of a worker
 * PROCESS, the distributed-cluster counterpart of the per-attempt
 * backend faults below.  The trigger is an event count (for a cluster
 * worker: results streamed), so the fault fires at the same point in
 * the workload regardless of timing -- which is what lets CI kill a
 * worker "mid-batch" reproducibly.
 */
struct ProcessFaultPlan
{
    enum class Action
    {
        None,       ///< no injected fault
        Kill,       ///< raise(SIGKILL): abrupt process death
        Disconnect, ///< close the coordinator link, stay alive
    };

    Action action = Action::None;
    uint64_t afterEvents = 0; ///< fire after this many events

    bool enabled() const { return action != Action::None; }

    /**
     * True exactly once: on the call where the event count crosses the
     * threshold.  @p events is the pre-increment count.
     */
    bool
    triggers(uint64_t events) const
    {
        return enabled() && events == afterEvents;
    }
};

struct ProcessFaultParseResult
{
    bool ok = false;
    std::string error;
    ProcessFaultPlan plan;
};

/**
 * Parse a plan spec: "none" (or empty) | "kill-after:N" |
 * "disconnect-after:N".  N is the number of events the process
 * survives before the fault fires.
 */
ProcessFaultParseResult parseProcessFaultPlan(const std::string &spec);

const char *processFaultActionName(ProcessFaultPlan::Action action);

struct FaultProfile
{
    double rate = 0.0;      ///< per-attempt fault probability; 0 = off
    uint64_t seed = 0xFA17; ///< fault stream seed

    /// @name Relative weights of the fault kinds
    /// @{
    double timeoutWeight = 1.0;
    double outageWeight = 1.0;
    double shotLossWeight = 1.0;
    double corruptionWeight = 1.0;
    double nanWeight = 1.0; ///< expectation jobs only
    /// @}

    double timeoutSeconds = 0.5;   ///< clock time burned by a timeout
    double shotLossFraction = 0.4; ///< fraction of shots dropped
    int corruptionFlips = 2;       ///< bitflips per corrupted outcome

    bool enabled() const { return rate > 0.0; }
};

/** Counters the injector maintains (reported by bench_resilience). */
struct FaultStats
{
    uint64_t calls = 0;
    uint64_t timeouts = 0;
    uint64_t outages = 0;
    uint64_t shotLosses = 0;
    uint64_t corruptions = 0;
    uint64_t nans = 0;

    uint64_t
    total() const
    {
        return timeouts + outages + shotLosses + corruptions + nans;
    }
};

class FaultInjector : public ExecBackend
{
  public:
    /** Decorates @p inner; @p clock is charged for timeouts (may be null). */
    FaultInjector(ExecBackend &inner, FaultProfile profile,
                  Clock *clock = nullptr);

    Expected<qsim::Counts> run(const ShotJob &job) override;
    Expected<double> expectation(const ValueJob &job) override;

    const FaultStats &stats() const { return stats_; }

  private:
    enum class Kind { None, Timeout, Outage, ShotLoss, Corruption, Nan };

    Kind draw(bool expectation_job);

    ExecBackend &inner_;
    FaultProfile profile_;
    Clock *clock_;
    Rng rng_;
    FaultStats stats_;
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_FAULTS_H
