/**
 * @file
 * Cooperative cancellation for long-running executions.
 *
 * A CancelToken combines an explicit cancel flag (drain, client gone)
 * with an optional wall-clock deadline.  Work never gets interrupted
 * preemptively: the executor checks the token between retry attempts,
 * and the solver checks it between segment evolutions and optimizer
 * evaluations, so a tripped token surfaces as a typed ExecError
 * (Cancelled / DeadlineExceeded) at the next checkpoint instead of a
 * torn state.
 *
 * Determinism note: the deadline is measured against the real steady
 * clock -- the only wall-time dependence in the execution path.  A
 * token that never trips cannot influence results; a tripped token
 * fails the job with a structured reason rather than changing its
 * output, so successful results remain bit-identical with or without a
 * deadline attached.
 */

#ifndef RASENGAN_EXEC_CANCEL_H
#define RASENGAN_EXEC_CANCEL_H

#include <atomic>
#include <chrono>

namespace rasengan::exec {

class CancelToken
{
  public:
    CancelToken() = default;

    /** Arm a wall-clock deadline @p seconds from now; <= 0 disarms. */
    void
    setDeadlineSeconds(double seconds)
    {
        if (seconds > 0.0) {
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds));
            hasDeadline_.store(true, std::memory_order_release);
        } else {
            hasDeadline_.store(false, std::memory_order_release);
        }
    }

    /** Request cancellation (drain, disconnect); sticky. */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    /** Has the armed deadline passed?  False when no deadline is set. */
    bool
    deadlineExpired() const
    {
        return hasDeadline_.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() >= deadline_;
    }

    /** Cooperative checkpoint: should the work stop now? */
    bool
    stopRequested() const
    {
        return cancelled() || deadlineExpired();
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<bool> hasDeadline_{false};
    /** Written before hasDeadline_ is released; read-only afterwards. */
    std::chrono::steady_clock::time_point deadline_{};
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_CANCEL_H
