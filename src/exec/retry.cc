#include "exec/retry.h"

#include <algorithm>
#include <cmath>

namespace rasengan::exec {

double
RetryPolicy::delaySeconds(int retry, Rng &rng) const
{
    if (retry < 1 || initialDelaySeconds <= 0.0)
        return 0.0;
    double base = initialDelaySeconds *
                  std::pow(std::max(multiplier, 1.0), retry - 1);
    base = std::min(base, maxDelaySeconds);
    if (jitter > 0.0)
        base *= rng.uniformReal(1.0 - jitter / 2.0, 1.0 + jitter / 2.0);
    return base;
}

} // namespace rasengan::exec
