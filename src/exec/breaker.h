/**
 * @file
 * Circuit breaker over a flaky execution backend.
 *
 * Standard three-state breaker (closed -> open -> half-open): after
 * `failureThreshold` consecutive failures the breaker opens and rejects
 * calls for `cooldownSeconds` of Clock time, then admits a probe; a
 * successful probe closes the breaker, a failed one re-opens it.  In
 * the single-threaded solvers the breaker's job is to fail *fast* out
 * of a retry loop that is clearly not converging, handing control to
 * the degradation ladder instead of burning the whole retry budget on
 * every segment execution.
 */

#ifndef RASENGAN_EXEC_BREAKER_H
#define RASENGAN_EXEC_BREAKER_H

#include <cstdint>

#include "exec/clock.h"

namespace rasengan::exec {

class CircuitBreaker
{
  public:
    struct Options
    {
        int failureThreshold = 8;     ///< consecutive failures to open
        double cooldownSeconds = 1.0; ///< open -> half-open delay
    };

    enum class State { Closed, Open, HalfOpen };

    CircuitBreaker() : CircuitBreaker(Options()) {}
    explicit CircuitBreaker(Options options) : options_(options) {}

    /** May a call proceed at Clock time @p now? */
    bool allow(double now);

    void recordSuccess();
    void recordFailure(double now);

    /** Force the breaker back to Closed (used after a demotion). */
    void reset();

    State state(double now);
    int consecutiveFailures() const { return consecutiveFailures_; }
    uint64_t trips() const { return trips_; }

  private:
    Options options_;
    State state_ = State::Closed;
    int consecutiveFailures_ = 0;
    double openedAt_ = 0.0;
    uint64_t trips_ = 0;
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_BREAKER_H
