#include "exec/faults.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rasengan::exec {

ProcessFaultParseResult
parseProcessFaultPlan(const std::string &spec)
{
    ProcessFaultParseResult out;
    if (spec.empty() || spec == "none") {
        out.ok = true;
        return out;
    }
    ProcessFaultPlan::Action action;
    std::string rest;
    const std::string kKill = "kill-after:";
    const std::string kDisconnect = "disconnect-after:";
    if (spec.rfind(kKill, 0) == 0) {
        action = ProcessFaultPlan::Action::Kill;
        rest = spec.substr(kKill.size());
    } else if (spec.rfind(kDisconnect, 0) == 0) {
        action = ProcessFaultPlan::Action::Disconnect;
        rest = spec.substr(kDisconnect.size());
    } else {
        out.error = "bad fault spec \"" + spec +
                    "\": expected none, kill-after:N, or "
                    "disconnect-after:N";
        return out;
    }
    if (rest.empty()) {
        out.error = "fault spec \"" + spec + "\" is missing the count";
        return out;
    }
    uint64_t n = 0;
    for (char c : rest) {
        if (c < '0' || c > '9') {
            out.error = "bad fault count \"" + rest + "\"";
            return out;
        }
        n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    out.plan.action = action;
    out.plan.afterEvents = n;
    out.ok = true;
    return out;
}

const char *
processFaultActionName(ProcessFaultPlan::Action action)
{
    switch (action) {
      case ProcessFaultPlan::Action::None: return "none";
      case ProcessFaultPlan::Action::Kill: return "kill";
      case ProcessFaultPlan::Action::Disconnect: return "disconnect";
    }
    return "unknown";
}

namespace {

/** Registry mirrors of FaultStats, labeled by fault kind. */
struct FaultCounters
{
    obs::Counter &calls = obs::Registry::global().counter(
        "exec_fault_injector_calls_total",
        "Jobs passing through the fault injector");
    obs::Counter &timeouts = obs::Registry::global().counter(
        "exec_faults_total", "Faults injected by kind",
        {{"kind", "timeout"}});
    obs::Counter &outages = obs::Registry::global().counter(
        "exec_faults_total", "Faults injected by kind",
        {{"kind", "outage"}});
    obs::Counter &shotLosses = obs::Registry::global().counter(
        "exec_faults_total", "Faults injected by kind",
        {{"kind", "shot-loss"}});
    obs::Counter &corruptions = obs::Registry::global().counter(
        "exec_faults_total", "Faults injected by kind",
        {{"kind", "corruption"}});
    obs::Counter &nans = obs::Registry::global().counter(
        "exec_faults_total", "Faults injected by kind", {{"kind", "nan"}});
};

FaultCounters &
faultCounters()
{
    static FaultCounters counters;
    return counters;
}

} // namespace

FaultInjector::FaultInjector(ExecBackend &inner, FaultProfile profile,
                             Clock *clock)
    : inner_(inner), profile_(profile), clock_(clock), rng_(profile.seed)
{
}

FaultInjector::Kind
FaultInjector::draw(bool expectation_job)
{
    if (!profile_.enabled() || !rng_.bernoulli(profile_.rate))
        return Kind::None;
    std::vector<double> weights = {profile_.timeoutWeight,
                                   profile_.outageWeight,
                                   profile_.shotLossWeight,
                                   profile_.corruptionWeight};
    std::vector<Kind> kinds = {Kind::Timeout, Kind::Outage, Kind::ShotLoss,
                               Kind::Corruption};
    if (expectation_job) {
        // Shot-level faults do not apply to an analytic expectation.
        weights = {profile_.timeoutWeight, profile_.outageWeight,
                   profile_.nanWeight};
        kinds = {Kind::Timeout, Kind::Outage, Kind::Nan};
    }
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return Kind::None;
    return kinds[rng_.weightedIndex(weights)];
}

Expected<qsim::Counts>
FaultInjector::run(const ShotJob &job)
{
    ++stats_.calls;
    faultCounters().calls.inc();
    Kind kind = draw(false);

    if (kind == Kind::Timeout) {
        ++stats_.timeouts;
        faultCounters().timeouts.inc();
        if (clock_)
            clock_->sleep(profile_.timeoutSeconds);
        return ExecError{ErrorCode::Timeout,
                         job.tag + ": execution deadline exceeded"};
    }
    if (kind == Kind::Outage) {
        ++stats_.outages;
        faultCounters().outages.inc();
        return ExecError{ErrorCode::BackendUnavailable,
                         job.tag + ": backend rejected the job"};
    }

    Expected<qsim::Counts> inner = inner_.run(job);
    if (!inner || kind == Kind::None)
        return inner;

    qsim::Counts raw = std::move(inner.value());
    if (kind == Kind::ShotLoss) {
        ++stats_.shotLosses;
        faultCounters().shotLosses.inc();
        // Drop a fraction of every outcome's shots (rounding down, so at
        // least one shot disappears whenever the fraction is positive).
        qsim::Counts lost;
        uint64_t keep_num = static_cast<uint64_t>(
            1000.0 * std::clamp(1.0 - profile_.shotLossFraction, 0.0, 1.0));
        for (const auto &[outcome, n] : raw.map()) {
            uint64_t kept = n * keep_num / 1000;
            if (kept > 0)
                lost.add(outcome, kept);
        }
        if (lost.total() >= raw.total() && lost.total() > 0) {
            // Fraction rounded to nothing: force a visible loss.
            lost = qsim::Counts();
        }
        return validateCounts(job, std::move(lost));
    }

    // Corruption: random readout bitflips on a few sampled outcomes.
    ++stats_.corruptions;
    faultCounters().corruptions.inc();
    qsim::Counts corrupted;
    const int bits = std::max(job.numBits, 1);
    for (const auto &[outcome, n] : raw.map()) {
        BitVec flipped = outcome;
        // Half of the flips land beyond the register (detectable by
        // validation); the rest corrupt data bits in place, modeling
        // readout crosstalk flagged by the backend's own calibration.
        for (int f = 0; f < std::max(profile_.corruptionFlips, 1); ++f) {
            int hi = std::min(2 * bits, kMaxBits) - 1;
            flipped.flip(static_cast<int>(rng_.uniformInt(0, hi)));
        }
        corrupted.add(flipped, n);
    }
    Expected<qsim::Counts> checked = validateCounts(job, corrupted);
    if (checked.ok()) {
        // Every flip landed inside the register; the backend's checksum
        // still notices the histogram mismatch and flags the job.
        return ExecError{ErrorCode::CorruptedCounts,
                         job.tag + ": readout validation failed"};
    }
    return checked;
}

Expected<double>
FaultInjector::expectation(const ValueJob &job)
{
    ++stats_.calls;
    faultCounters().calls.inc();
    Kind kind = draw(true);
    if (kind == Kind::Timeout) {
        ++stats_.timeouts;
        faultCounters().timeouts.inc();
        if (clock_)
            clock_->sleep(profile_.timeoutSeconds);
        return ExecError{ErrorCode::Timeout,
                         job.tag + ": execution deadline exceeded"};
    }
    if (kind == Kind::Outage) {
        ++stats_.outages;
        faultCounters().outages.inc();
        return ExecError{ErrorCode::BackendUnavailable,
                         job.tag + ": backend rejected the job"};
    }
    Expected<double> inner = inner_.expectation(job);
    if (!inner || kind == Kind::None)
        return inner;
    ++stats_.nans;
    faultCounters().nans.inc();
    return validateValue(job,
                         std::numeric_limits<double>::quiet_NaN());
}

} // namespace rasengan::exec
