/**
 * @file
 * Checkpoint/resume for segmented execution.
 *
 * After each executed segment the solver can snapshot everything the
 * remaining pipeline depends on: the trained evolution times, the
 * forwarded distribution (exact shot counts for the sampled backends,
 * probabilities for the exact backend), the next segment index, and the
 * caller's RNG engine state.  Restoring the snapshot and re-running the
 * remaining segments is bit-identical to never having been killed --
 * shot counts round-trip as integers, probabilities at max_digits10,
 * and the mt19937_64 stream through its standard text serialization.
 *
 * The format is line-oriented text (one `entry` line per basis state),
 * versioned, and parsed with recoverable errors: a truncated or
 * corrupted checkpoint yields `ErrorCode::CheckpointCorrupt`, never an
 * abort.
 */

#ifndef RASENGAN_EXEC_CHECKPOINT_H
#define RASENGAN_EXEC_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "exec/expected.h"

namespace rasengan::exec {

struct SegmentCheckpoint
{
    std::string problemId;
    bool shotBased = true; ///< shots vs exact-probability forwarding
    int nextSegment = 0;   ///< first segment still to execute
    int numBits = 0;       ///< register width of the entries
    std::vector<double> times; ///< trained evolution times
    double prePurifyFeasibleFraction = 1.0;
    std::string rngState; ///< mt19937_64 text state; empty for exact

    /** Forwarded distribution (exactly one populated, by shotBased). */
    std::vector<std::pair<BitVec, uint64_t>> shotEntries;
    std::vector<std::pair<BitVec, double>> probEntries;
};

/** Serialize to the versioned text format. */
std::string writeCheckpoint(const SegmentCheckpoint &cp);

/** Parse the text format; recoverable on malformed input. */
Expected<SegmentCheckpoint> parseCheckpoint(const std::string &text);

/** Write @p cp to @p path (atomically via a temp file + rename). */
Expected<bool> saveCheckpoint(const SegmentCheckpoint &cp,
                              const std::string &path);

/** Load and parse @p path. */
Expected<SegmentCheckpoint> loadCheckpoint(const std::string &path);

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_CHECKPOINT_H
