/**
 * @file
 * Bounded retry with exponential backoff and deterministic jitter.
 *
 * The schedule is the standard cloud-client recipe: delay(k) =
 * min(initial * multiplier^k, max), multiplied by a jitter factor drawn
 * from a seeded Rng so that concurrent clients decorrelate while every
 * run remains reproducible.  Delays are spent on a Clock, so tests (and
 * the latency model) use virtual time.
 */

#ifndef RASENGAN_EXEC_RETRY_H
#define RASENGAN_EXEC_RETRY_H

#include <cstdint>

#include "common/rng.h"

namespace rasengan::exec {

struct RetryPolicy
{
    int maxAttempts = 5;              ///< total tries, including the first
    double initialDelaySeconds = 0.01;
    double multiplier = 2.0;          ///< exponential growth factor
    double maxDelaySeconds = 2.0;     ///< backoff ceiling
    /**
     * Relative jitter width: the delay is scaled by a factor uniform in
     * [1 - jitter/2, 1 + jitter/2].  0 disables jitter.
     */
    double jitter = 0.5;

    /**
     * Backoff delay before retry number @p retry (1-based: the delay
     * slept after the retry-th failed attempt).  Draws one uniform
     * sample from @p rng when jitter is enabled.
     */
    double delaySeconds(int retry, Rng &rng) const;
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_RETRY_H
