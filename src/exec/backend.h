/**
 * @file
 * Execution backend interface wrapping the simulators.
 *
 * A `ShotJob` describes one logical circuit execution: a sampling
 * closure over the dense/sparse/noisy simulators, the number of shots,
 * and a deterministic RNG seed.  Every retry *attempt* of the same job
 * constructs a fresh `Rng(rngSeed)`, so a clean attempt reproduces the
 * identical histogram no matter how many faulty attempts preceded it --
 * this is what makes a faulty-but-retried solve bit-identical to the
 * fault-free solve.  A `ValueJob` is the expectation-value analogue
 * used by the exact training paths of the baseline VQAs.
 *
 * Backends return `Expected<...>` instead of aborting; decorators
 * (exec/faults.h) and the resilient executor (exec/executor.h) compose
 * around this interface.
 */

#ifndef RASENGAN_EXEC_BACKEND_H
#define RASENGAN_EXEC_BACKEND_H

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "exec/expected.h"
#include "qsim/counts.h"

namespace rasengan::exec {

/** One logical shot-sampled circuit execution. */
struct ShotJob
{
    std::string tag;    ///< label for logs/stats (e.g. "segment 2")
    uint64_t shots = 0; ///< requested histogram size
    int numBits = 0;    ///< measured register width
    uint64_t rngSeed = 0; ///< per-attempt sampling seed
    /**
     * Runs the simulation and returns the raw histogram.  Called with a
     * fresh Rng(rngSeed) on every attempt.
     */
    std::function<qsim::Counts(Rng &)> sample;
    /**
     * Modeled duration of one attempt in seconds (from LatencyModel);
     * the executor charges it to the virtual clock per attempt so retry
     * latency shows up in the quantum-time estimate.
     */
    double attemptSeconds = 0.0;
};

/** One expectation-value evaluation (exact training paths). */
struct ValueJob
{
    std::string tag;
    std::function<double()> evaluate;
    double attemptSeconds = 0.0;
};

class ExecBackend
{
  public:
    virtual ~ExecBackend() = default;

    virtual Expected<qsim::Counts> run(const ShotJob &job) = 0;
    virtual Expected<double> expectation(const ValueJob &job) = 0;
};

/**
 * Terminal backend: invokes the job's simulator closure directly and
 * validates the result (full shot count, finite value), converting what
 * used to be silent corruption or an abort into structured errors.
 */
class SimulatorBackend : public ExecBackend
{
  public:
    Expected<qsim::Counts> run(const ShotJob &job) override;
    Expected<double> expectation(const ValueJob &job) override;
};

/**
 * Shared result validation, also applied by the executor after
 * decorators ran (defense in depth against silent data corruption).
 */
Expected<qsim::Counts> validateCounts(const ShotJob &job,
                                      qsim::Counts counts);
Expected<double> validateValue(const ValueJob &job, double value);

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_BACKEND_H
