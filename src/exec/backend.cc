#include "exec/backend.h"

#include <cmath>

#include "common/logging.h"

namespace rasengan::exec {

Expected<qsim::Counts>
validateCounts(const ShotJob &job, qsim::Counts counts)
{
    if (counts.total() < job.shots) {
        return ExecError{ErrorCode::ShotLoss,
                         detail::format("{}: histogram has {} of {} shots",
                                        job.tag.c_str(), counts.total(),
                                        job.shots)};
    }
    if (job.numBits > 0) {
        for (const auto &[outcome, n] : counts.map()) {
            (void)n;
            for (int b = job.numBits; b < kMaxBits; ++b) {
                if (outcome.get(b)) {
                    return ExecError{
                        ErrorCode::CorruptedCounts,
                        detail::format(
                            "{}: outcome sets bit {} beyond the "
                            "{}-bit register",
                            job.tag.c_str(), b, job.numBits)};
                }
            }
        }
    }
    return counts;
}

Expected<double>
validateValue(const ValueJob &job, double value)
{
    if (!std::isfinite(value)) {
        return ExecError{ErrorCode::NonFiniteValue,
                         detail::format("{}: expectation is {}",
                                        job.tag.c_str(), value)};
    }
    return value;
}

Expected<qsim::Counts>
SimulatorBackend::run(const ShotJob &job)
{
    if (!job.sample || job.shots == 0)
        return ExecError{ErrorCode::InvalidJob,
                         job.tag + ": missing sampler or zero shots"};
    Rng attempt_rng(job.rngSeed);
    return validateCounts(job, job.sample(attempt_rng));
}

Expected<double>
SimulatorBackend::expectation(const ValueJob &job)
{
    if (!job.evaluate)
        return ExecError{ErrorCode::InvalidJob,
                         job.tag + ": missing evaluator"};
    return validateValue(job, job.evaluate());
}

} // namespace rasengan::exec
