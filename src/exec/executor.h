/**
 * @file
 * Resilient executor: retry/backoff + circuit breaker + degradation.
 *
 * Wraps an ExecBackend chain (simulator, optionally behind a fault
 * injector) and executes jobs with:
 *
 *  1. bounded retries with exponential backoff + deterministic jitter,
 *     spent on a Clock (virtual by default, so tests are instant and
 *     the accumulated delay feeds the quantum-latency estimate);
 *  2. a circuit breaker that fails fast out of a retry loop after
 *     `failureThreshold` consecutive attempt failures;
 *  3. a graceful-degradation ladder consulted by the solvers when an
 *     execution still fails after retries: reduce per-segment shots ->
 *     disable purification -> fall back to the clean simulator (bypass
 *     the faulty backend).  Each demotion is logged and counted.
 *
 * The executor is deliberately solver-agnostic: it owns the ladder
 * *state*; the solver applies the level's meaning (shots, purification)
 * when it rebuilds the job.
 */

#ifndef RASENGAN_EXEC_EXECUTOR_H
#define RASENGAN_EXEC_EXECUTOR_H

#include <memory>

#include "exec/backend.h"
#include "exec/breaker.h"
#include "exec/cancel.h"
#include "exec/clock.h"
#include "exec/faults.h"
#include "exec/retry.h"

namespace rasengan::exec {

/** Degradation ladder, in demotion order. */
enum class DegradationLevel {
    Full = 0,          ///< nominal execution
    ReducedShots = 1,  ///< per-segment shots scaled down
    NoPurification = 2,///< purification disabled from here on
    CleanFallback = 3, ///< bypass the faulty backend entirely
};

const char *degradationLevelName(DegradationLevel level);

struct ResilienceOptions
{
    RetryPolicy retry;
    CircuitBreaker::Options breaker;
    FaultProfile faults;         ///< rate 0 disables injection
    bool degradation = true;     ///< enable the ladder
    double shotsDemotionFactor = 0.5; ///< ReducedShots multiplier
    uint64_t jitterSeed = 0x8ACC0FF;  ///< backoff jitter stream
    bool wallClock = false;      ///< real sleeps instead of virtual time
    /**
     * Simulation thread count for the jobs this executor runs
     * (common/parallel.h pool).  0 keeps the current/env-derived
     * configuration; > 0 reconfigures the pool (the CLI --threads flag
     * and the bench harnesses route through this).  Results are
     * bit-identical at every setting.
     */
    int threads = 0;
    /**
     * Cooperative cancellation/deadline token, checked before every
     * backend attempt (the solvers add further checkpoints between
     * segment evolutions).  Non-owning: the serve daemon keeps one
     * token per in-flight job; nullptr disables the checks.  A tripped
     * token fails the job with ErrorCode::DeadlineExceeded or
     * ErrorCode::Cancelled -- neither is retryable.
     */
    const CancelToken *cancel = nullptr;
};

struct ExecStats
{
    uint64_t executions = 0; ///< logical jobs submitted
    uint64_t attempts = 0;   ///< backend attempts (>= executions)
    uint64_t retries = 0;    ///< attempts beyond the first
    uint64_t failures = 0;   ///< jobs that exhausted retries/breaker
    uint64_t fallbacks = 0;  ///< jobs served by the clean-fallback path
    uint64_t deadlineHits = 0; ///< jobs stopped by a deadline/cancel token
    int demotions = 0;       ///< ladder steps taken
    uint64_t breakerTrips = 0;
    double backoffSeconds = 0.0; ///< clock time spent sleeping
};

class ResilientExecutor
{
  public:
    /**
     * Builds the backend chain: a SimulatorBackend, decorated by a
     * FaultInjector when `options.faults.rate > 0`.
     */
    explicit ResilientExecutor(ResilienceOptions options = {});

    /** Execute with retries; never aborts. */
    Expected<qsim::Counts> run(const ShotJob &job);
    Expected<double> expectation(const ValueJob &job);

    /// @name Degradation ladder
    /// @{
    DegradationLevel level() const { return level_; }
    bool canDemote() const;
    /** Step the ladder down one level; returns the new level. */
    DegradationLevel demote(const std::string &reason);
    /** Effective shots for a nominal request at the current level. */
    uint64_t degradedShots(uint64_t nominal) const;
    /** Has the ladder disabled purification? */
    bool purificationDisabled() const;
    /// @}

    const ExecStats &stats() const { return stats_; }
    const FaultStats *faultStats() const;
    const ResilienceOptions &options() const { return options_; }

    /**
     * Modeled seconds accumulated on the clock (attempt durations,
     * injected timeouts, and backoff sleeps); the solvers add this to
     * their quantum-latency estimate.
     */
    double elapsedSeconds() const { return clock_->now(); }

    Clock &clock() { return *clock_; }

  private:
    template <typename Result, typename Job, typename Call>
    Expected<Result> attemptLoop(const Job &job, const Call &call);

    /**
     * Cooperative deadline/cancel checkpoint.  When the options' token
     * has tripped, records the failure and fills @p err (attempts set
     * to @p attempts_spent) and returns true.
     */
    bool stopCheck(const std::string &tag, int attempts_spent,
                   ExecError *err);

    ResilienceOptions options_;
    std::unique_ptr<Clock> clock_;
    SimulatorBackend simulator_;
    std::unique_ptr<FaultInjector> injector_;
    ExecBackend *backend_; ///< top of the decorator chain
    CircuitBreaker breaker_;
    Rng jitterRng_;
    DegradationLevel level_ = DegradationLevel::Full;
    ExecStats stats_;
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_EXECUTOR_H
