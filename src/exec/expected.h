/**
 * @file
 * Minimal expected/result type for recoverable execution failures.
 *
 * `Expected<T, E>` holds either a value of type T or an error of type E
 * (defaulting to ExecError).  It is the return type of every backend
 * call in `src/exec/`: instead of `fatal()`ing on a failed execution,
 * backends hand the caller a structured error that the retry policy,
 * circuit breaker, and degradation ladder can act on.  Accessing the
 * wrong alternative is a programming error and panics.
 */

#ifndef RASENGAN_EXEC_EXPECTED_H
#define RASENGAN_EXEC_EXPECTED_H

#include <utility>
#include <variant>

#include "common/logging.h"
#include "exec/error.h"

namespace rasengan::exec {

template <typename T, typename E = ExecError>
class Expected
{
  public:
    Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
    Expected(E error) : v_(std::in_place_index<1>, std::move(error)) {}

    bool ok() const { return v_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        panic_if(!ok(), "Expected::value() on an error result");
        return std::get<0>(v_);
    }

    const T &
    value() const
    {
        panic_if(!ok(), "Expected::value() on an error result");
        return std::get<0>(v_);
    }

    E &
    error()
    {
        panic_if(ok(), "Expected::error() on a success result");
        return std::get<1>(v_);
    }

    const E &
    error() const
    {
        panic_if(ok(), "Expected::error() on a success result");
        return std::get<1>(v_);
    }

    /** The value, or @p fallback when this holds an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<0>(v_) : std::move(fallback);
    }

  private:
    std::variant<T, E> v_;
};

} // namespace rasengan::exec

#endif // RASENGAN_EXEC_EXPECTED_H
