#include "linalg/matrix.h"

namespace rasengan::linalg {

RatMat
toRational(const IntMat &m)
{
    RatMat out(m.rows(), m.cols());
    for (int r = 0; r < m.rows(); ++r)
        for (int c = 0; c < m.cols(); ++c)
            out.at(r, c) = Rational(m.at(r, c));
    return out;
}

IntVec
applyInt(const IntMat &m, const IntVec &x)
{
    fatal_if(static_cast<int>(x.size()) != m.cols(),
             "applyInt: vector size {} != cols {}", x.size(), m.cols());
    IntVec out(m.rows(), 0);
    for (int r = 0; r < m.rows(); ++r) {
        int64_t acc = 0;
        for (int c = 0; c < m.cols(); ++c)
            acc += m.at(r, c) * x[c];
        out[r] = acc;
    }
    return out;
}

} // namespace rasengan::linalg
