/**
 * @file
 * Linear-system solving: rational particular solutions and binary
 * (0/1) feasibility search for C x = b.
 */

#ifndef RASENGAN_LINALG_SOLVE_H
#define RASENGAN_LINALG_SOLVE_H

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace rasengan::linalg {

/**
 * A rational particular solution of C x = b, or nullopt when the system is
 * inconsistent.  Free variables are set to zero.
 */
std::optional<std::vector<Rational>> solveParticular(const IntMat &c,
                                                     const IntVec &b);

/**
 * Find one binary solution x in {0,1}^n of C x = b by depth-first search
 * with per-row interval pruning (at each partial assignment, a row is
 * pruned when even the most favourable completion cannot reach b).
 *
 * Complete: returns nullopt only when no binary solution exists.  Intended
 * as the generic fallback when a problem family has no O(n) constructor.
 */
std::optional<IntVec> solveBinary(const IntMat &c, const IntVec &b);

/**
 * Enumerate all binary solutions of C x = b, up to @p limit (0 = no limit).
 * Uses the same pruned DFS as solveBinary.
 */
std::vector<IntVec> enumerateBinary(const IntMat &c, const IntVec &b,
                                    size_t limit = 0);

/** True iff C x = b for the binary/integer vector @p x. */
bool satisfies(const IntMat &c, const IntVec &b, const IntVec &x);

} // namespace rasengan::linalg

#endif // RASENGAN_LINALG_SOLVE_H
