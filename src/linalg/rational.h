/**
 * @file
 * Exact rational arithmetic on checked 64-bit integers.
 *
 * Rational is the scalar type for the exact linear-algebra kernels (RREF,
 * nullspace extraction, particular solutions).  All operations normalize to
 * lowest terms with a positive denominator and abort on 64-bit overflow --
 * for the constraint matrices that arise from constrained binary
 * optimization (entries in {-1,0,1} and small bounds) intermediate values
 * stay tiny, so an overflow indicates a bug rather than a capacity limit.
 */

#ifndef RASENGAN_LINALG_RATIONAL_H
#define RASENGAN_LINALG_RATIONAL_H

#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace rasengan::linalg {

class Rational
{
  public:
    constexpr Rational() : num_(0), den_(1) {}

    /** Implicit from integer: n/1. */
    constexpr Rational(int64_t n) : num_(n), den_(1) {} // NOLINT(google-explicit-constructor)

    /** n/d, normalized; d must be nonzero. */
    Rational(int64_t n, int64_t d) : num_(n), den_(d)
    {
        fatal_if(d == 0, "Rational with zero denominator");
        normalize();
    }

    int64_t num() const { return num_; }
    int64_t den() const { return den_; }

    bool isZero() const { return num_ == 0; }
    bool isInteger() const { return den_ == 1; }

    /** Integer value; aborts unless isInteger(). */
    int64_t
    toInt() const
    {
        panic_if(den_ != 1, "Rational {}/{} is not an integer", num_, den_);
        return num_;
    }

    double toDouble() const
    {
        return static_cast<double>(num_) / static_cast<double>(den_);
    }

    Rational
    operator-() const
    {
        Rational r;
        r.num_ = checkedNeg(num_);
        r.den_ = den_;
        return r;
    }

    Rational
    operator+(const Rational &o) const
    {
        // a/b + c/d with the gcd trick to delay overflow.
        int64_t g = std::gcd(den_, o.den_);
        int64_t lhs = checkedMul(num_, o.den_ / g);
        int64_t rhs = checkedMul(o.num_, den_ / g);
        return Rational(checkedAdd(lhs, rhs), checkedMul(den_, o.den_ / g));
    }

    Rational operator-(const Rational &o) const { return *this + (-o); }

    Rational
    operator*(const Rational &o) const
    {
        int64_t g1 = std::gcd(std::abs(num_), o.den_);
        int64_t g2 = std::gcd(std::abs(o.num_), den_);
        return Rational(checkedMul(num_ / g1, o.num_ / g2),
                        checkedMul(den_ / g2, o.den_ / g1));
    }

    Rational
    operator/(const Rational &o) const
    {
        fatal_if(o.num_ == 0, "Rational division by zero");
        return *this * Rational(o.den_, o.num_);
    }

    Rational &operator+=(const Rational &o) { return *this = *this + o; }
    Rational &operator-=(const Rational &o) { return *this = *this - o; }
    Rational &operator*=(const Rational &o) { return *this = *this * o; }
    Rational &operator/=(const Rational &o) { return *this = *this / o; }

    friend bool
    operator==(const Rational &a, const Rational &b)
    {
        return a.num_ == b.num_ && a.den_ == b.den_;
    }

    friend bool
    operator<(const Rational &a, const Rational &b)
    {
        // Compare via 128-bit cross multiplication (denominators positive).
        return static_cast<__int128>(a.num_) * b.den_ <
               static_cast<__int128>(b.num_) * a.den_;
    }

    friend bool operator!=(const Rational &a, const Rational &b) { return !(a == b); }
    friend bool operator>(const Rational &a, const Rational &b) { return b < a; }
    friend bool operator<=(const Rational &a, const Rational &b) { return !(b < a); }
    friend bool operator>=(const Rational &a, const Rational &b) { return !(a < b); }

    Rational
    abs() const
    {
        return num_ < 0 ? -*this : *this;
    }

    std::string
    toString() const
    {
        if (den_ == 1)
            return std::to_string(num_);
        return std::to_string(num_) + "/" + std::to_string(den_);
    }

    friend std::ostream &
    operator<<(std::ostream &os, const Rational &r)
    {
        return os << r.toString();
    }

  private:
    static int64_t
    checkedAdd(int64_t a, int64_t b)
    {
        int64_t out;
        panic_if(__builtin_add_overflow(a, b, &out),
                 "Rational overflow in {} + {}", a, b);
        return out;
    }

    static int64_t
    checkedMul(int64_t a, int64_t b)
    {
        int64_t out;
        panic_if(__builtin_mul_overflow(a, b, &out),
                 "Rational overflow in {} * {}", a, b);
        return out;
    }

    static int64_t
    checkedNeg(int64_t a)
    {
        panic_if(a == INT64_MIN, "Rational overflow negating INT64_MIN");
        return -a;
    }

    void
    normalize()
    {
        if (den_ < 0) {
            num_ = checkedNeg(num_);
            den_ = checkedNeg(den_);
        }
        int64_t g = std::gcd(std::abs(num_), den_);
        if (g > 1) {
            num_ /= g;
            den_ /= g;
        }
        if (num_ == 0)
            den_ = 1;
    }

    int64_t num_;
    int64_t den_;
};

} // namespace rasengan::linalg

#endif // RASENGAN_LINALG_RATIONAL_H
