/**
 * @file
 * Dense row-major matrix template used by the exact linear-algebra kernels.
 */

#ifndef RASENGAN_LINALG_MATRIX_H
#define RASENGAN_LINALG_MATRIX_H

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "linalg/rational.h"

namespace rasengan::linalg {

template <typename T>
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    Matrix(int rows, int cols, T fill = T{})
        : rows_(rows), cols_(cols),
          data_(static_cast<size_t>(rows) * cols, fill)
    {
        fatal_if(rows < 0 || cols < 0, "negative matrix dimension");
    }

    /** Construct from nested initializer lists; rows must be equal length. */
    Matrix(std::initializer_list<std::initializer_list<T>> init)
    {
        rows_ = static_cast<int>(init.size());
        cols_ = rows_ ? static_cast<int>(init.begin()->size()) : 0;
        data_.reserve(static_cast<size_t>(rows_) * cols_);
        for (const auto &row : init) {
            fatal_if(static_cast<int>(row.size()) != cols_,
                     "ragged initializer: expected {} columns", cols_);
            for (const auto &v : row)
                data_.push_back(v);
        }
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    T &
    at(int r, int c)
    {
        checkIndex(r, c);
        return data_[static_cast<size_t>(r) * cols_ + c];
    }

    const T &
    at(int r, int c) const
    {
        checkIndex(r, c);
        return data_[static_cast<size_t>(r) * cols_ + c];
    }

    /** Row @p r as a vector copy. */
    std::vector<T>
    row(int r) const
    {
        std::vector<T> out(cols_);
        for (int c = 0; c < cols_; ++c)
            out[c] = at(r, c);
        return out;
    }

    /** Matrix-vector product. */
    std::vector<T>
    apply(const std::vector<T> &x) const
    {
        fatal_if(static_cast<int>(x.size()) != cols_,
                 "apply: vector size {} != cols {}", x.size(), cols_);
        std::vector<T> out(rows_, T{});
        for (int r = 0; r < rows_; ++r) {
            T acc{};
            for (int c = 0; c < cols_; ++c)
                acc += at(r, c) * x[c];
            out[r] = acc;
        }
        return out;
    }

    /** Swap rows @p a and @p b. */
    void
    swapRows(int a, int b)
    {
        for (int c = 0; c < cols_; ++c)
            std::swap(at(a, c), at(b, c));
    }

    friend bool
    operator==(const Matrix &a, const Matrix &b)
    {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
    }

    std::string
    toString() const
    {
        std::ostringstream os;
        for (int r = 0; r < rows_; ++r) {
            os << (r ? "\n[" : "[");
            for (int c = 0; c < cols_; ++c)
                os << (c ? " " : "") << at(r, c);
            os << "]";
        }
        return os.str();
    }

  private:
    void
    checkIndex(int r, int c) const
    {
        panic_if(r < 0 || r >= rows_ || c < 0 || c >= cols_,
                 "matrix index ({}, {}) out of {}x{}", r, c, rows_, cols_);
    }

    int rows_;
    int cols_;
    std::vector<T> data_;
};

using IntMat = Matrix<int64_t>;
using RatMat = Matrix<Rational>;
using IntVec = std::vector<int64_t>;

/** Convert an integer matrix to rationals. */
RatMat toRational(const IntMat &m);

/** Integer matrix-vector product. */
IntVec applyInt(const IntMat &m, const IntVec &x);

} // namespace rasengan::linalg

#endif // RASENGAN_LINALG_MATRIX_H
