#include "linalg/solve.h"

#include <algorithm>

#include "linalg/rref.h"

namespace rasengan::linalg {

std::optional<std::vector<Rational>>
solveParticular(const IntMat &c, const IntVec &b)
{
    fatal_if(static_cast<int>(b.size()) != c.rows(),
             "solveParticular: b size {} != rows {}", b.size(), c.rows());
    // Eliminate on the augmented matrix [C | b].
    RatMat aug(c.rows(), c.cols() + 1);
    for (int r = 0; r < c.rows(); ++r) {
        for (int col = 0; col < c.cols(); ++col)
            aug.at(r, col) = Rational(c.at(r, col));
        aug.at(r, c.cols()) = Rational(b[r]);
    }
    RrefResult rr = rref(aug);

    // Inconsistent iff some pivot lands in the augmented column.
    for (int col : rr.pivotCols)
        if (col == c.cols())
            return std::nullopt;

    std::vector<Rational> x(c.cols(), Rational(0));
    for (size_t p = 0; p < rr.pivotCols.size(); ++p)
        x[rr.pivotCols[p]] = rr.mat.at(static_cast<int>(p), c.cols());
    return x;
}

namespace {

/**
 * Shared pruned DFS over binary assignments.  Variables are assigned in
 * index order; rowLo/rowHi track, per row, the bounds of C x over all
 * completions of the current partial assignment.
 */
class BinaryDfs
{
  public:
    BinaryDfs(const IntMat &c, const IntVec &b, size_t limit)
        : c_(c), b_(b), limit_(limit), n_(c.cols()),
          x_(static_cast<size_t>(c.cols()), 0),
          lo_(c.rows(), 0), hi_(c.rows(), 0)
    {
        // Initially every variable is free: bounds accumulate the
        // negative/positive parts of each row.
        for (int r = 0; r < c_.rows(); ++r) {
            for (int col = 0; col < n_; ++col) {
                int64_t a = c_.at(r, col);
                if (a < 0)
                    lo_[r] += a;
                else
                    hi_[r] += a;
            }
        }
    }

    std::vector<IntVec>
    run(bool first_only)
    {
        firstOnly_ = first_only;
        recurse(0);
        return std::move(found_);
    }

  private:
    bool
    feasibleSoFar() const
    {
        for (int r = 0; r < c_.rows(); ++r) {
            // acc_[r] + [lo_, hi_] must contain b_[r].
            if (acc_[r] + lo_[r] > b_[r] || acc_[r] + hi_[r] < b_[r])
                return false;
        }
        return true;
    }

    void
    recurse(int var)
    {
        if (done_)
            return;
        if (var == 0) {
            acc_.assign(c_.rows(), 0);
            if (!feasibleSoFar())
                return;
        }
        if (var == n_) {
            found_.push_back(x_);
            if (firstOnly_ || (limit_ && found_.size() >= limit_))
                done_ = true;
            return;
        }
        for (int64_t value : {0, 1}) {
            x_[var] = value;
            // Commit variable `var`: move its contribution from the free
            // bounds into the accumulated sum.
            for (int r = 0; r < c_.rows(); ++r) {
                int64_t a = c_.at(r, var);
                if (a < 0)
                    lo_[r] -= a;
                else
                    hi_[r] -= a;
                acc_[r] += a * value;
            }
            if (feasibleSoFar())
                recurse(var + 1);
            for (int r = 0; r < c_.rows(); ++r) {
                int64_t a = c_.at(r, var);
                acc_[r] -= a * value;
                if (a < 0)
                    lo_[r] += a;
                else
                    hi_[r] += a;
            }
            if (done_)
                return;
        }
        x_[var] = 0;
    }

    const IntMat &c_;
    const IntVec &b_;
    size_t limit_;
    int n_;
    IntVec x_;
    IntVec lo_, hi_;
    IntVec acc_;
    std::vector<IntVec> found_;
    bool firstOnly_ = false;
    bool done_ = false;
};

} // namespace

std::optional<IntVec>
solveBinary(const IntMat &c, const IntVec &b)
{
    fatal_if(static_cast<int>(b.size()) != c.rows(),
             "solveBinary: b size {} != rows {}", b.size(), c.rows());
    BinaryDfs dfs(c, b, 1);
    auto sols = dfs.run(true);
    if (sols.empty())
        return std::nullopt;
    return sols.front();
}

std::vector<IntVec>
enumerateBinary(const IntMat &c, const IntVec &b, size_t limit)
{
    fatal_if(static_cast<int>(b.size()) != c.rows(),
             "enumerateBinary: b size {} != rows {}", b.size(), c.rows());
    BinaryDfs dfs(c, b, limit);
    return dfs.run(false);
}

bool
satisfies(const IntMat &c, const IntVec &b, const IntVec &x)
{
    if (static_cast<int>(x.size()) != c.cols() ||
        static_cast<int>(b.size()) != c.rows()) {
        return false;
    }
    IntVec cx = applyInt(c, x);
    return cx == b;
}

} // namespace rasengan::linalg
