#include "linalg/rref.h"

namespace rasengan::linalg {

RrefResult
rref(const RatMat &m)
{
    RrefResult res;
    res.mat = m;
    RatMat &a = res.mat;
    int pivot_row = 0;

    for (int col = 0; col < a.cols() && pivot_row < a.rows(); ++col) {
        // Partial "pivoting": any nonzero entry works with exact arithmetic;
        // pick the largest magnitude to keep intermediate values small.
        int best = -1;
        Rational best_abs = 0;
        for (int r = pivot_row; r < a.rows(); ++r) {
            Rational v = a.at(r, col).abs();
            if (!v.isZero() && (best < 0 || best_abs < v)) {
                best = r;
                best_abs = v;
            }
        }
        if (best < 0)
            continue;
        a.swapRows(pivot_row, best);

        Rational inv = Rational(1) / a.at(pivot_row, col);
        for (int c = col; c < a.cols(); ++c)
            a.at(pivot_row, c) *= inv;

        for (int r = 0; r < a.rows(); ++r) {
            if (r == pivot_row || a.at(r, col).isZero())
                continue;
            Rational factor = a.at(r, col);
            for (int c = col; c < a.cols(); ++c)
                a.at(r, c) -= factor * a.at(pivot_row, c);
        }

        res.pivotCols.push_back(col);
        ++pivot_row;
    }
    res.rank = pivot_row;
    return res;
}

int
rank(const IntMat &m)
{
    return rref(toRational(m)).rank;
}

} // namespace rasengan::linalg
