#include "linalg/hnf.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace rasengan::linalg {

namespace {

int64_t
checked(__int128 v)
{
    panic_if(v > INT64_MAX || v < INT64_MIN, "HNF entry overflows int64");
    return static_cast<int64_t>(v);
}

/** col_j -= q * col_c, applied to both H and U. */
void
subtractColumn(IntMat &h, IntMat &u, int j, int64_t q, int c)
{
    if (q == 0)
        return;
    for (int r = 0; r < h.rows(); ++r)
        h.at(r, j) = checked(static_cast<__int128>(h.at(r, j)) -
                             static_cast<__int128>(q) * h.at(r, c));
    for (int r = 0; r < u.rows(); ++r)
        u.at(r, j) = checked(static_cast<__int128>(u.at(r, j)) -
                             static_cast<__int128>(q) * u.at(r, c));
}

void
swapColumns(IntMat &h, IntMat &u, int a, int b)
{
    if (a == b)
        return;
    for (int r = 0; r < h.rows(); ++r)
        std::swap(h.at(r, a), h.at(r, b));
    for (int r = 0; r < u.rows(); ++r)
        std::swap(u.at(r, a), u.at(r, b));
}

void
negateColumn(IntMat &h, IntMat &u, int c)
{
    for (int r = 0; r < h.rows(); ++r)
        h.at(r, c) = -h.at(r, c);
    for (int r = 0; r < u.rows(); ++r)
        u.at(r, c) = -u.at(r, c);
}

/** Floor division (C++ '/' truncates toward zero). */
int64_t
floorDiv(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

} // namespace

HnfResult
hermiteNormalForm(const IntMat &a)
{
    const int rows = a.rows();
    const int cols = a.cols();
    HnfResult res;
    res.h = a;
    res.u = IntMat(cols, cols);
    for (int i = 0; i < cols; ++i)
        res.u.at(i, i) = 1;

    int pivot_col = 0;
    for (int r = 0; r < rows && pivot_col < cols; ++r) {
        // Reduce the entries H[r][pivot_col..] to a single gcd pivot.
        while (true) {
            int best = -1;
            int64_t best_abs = 0;
            int nonzero = 0;
            for (int j = pivot_col; j < cols; ++j) {
                int64_t v = std::abs(res.h.at(r, j));
                if (v == 0)
                    continue;
                ++nonzero;
                if (best < 0 || v < best_abs) {
                    best = j;
                    best_abs = v;
                }
            }
            if (nonzero == 0) {
                best = -1;
                break;
            }
            swapColumns(res.h, res.u, pivot_col, best);
            if (nonzero == 1)
                break;
            for (int j = pivot_col + 1; j < cols; ++j) {
                if (res.h.at(r, j) == 0)
                    continue;
                int64_t q = res.h.at(r, j) / res.h.at(r, pivot_col);
                subtractColumn(res.h, res.u, j, q, pivot_col);
            }
        }
        if (res.h.at(r, pivot_col) == 0)
            continue; // no pivot in this row
        if (res.h.at(r, pivot_col) < 0)
            negateColumn(res.h, res.u, pivot_col);
        // Reduce earlier pivot columns' entries in this row into
        // [0, pivot).
        int64_t pivot = res.h.at(r, pivot_col);
        for (int j = 0; j < pivot_col; ++j) {
            int64_t q = floorDiv(res.h.at(r, j), pivot);
            subtractColumn(res.h, res.u, j, q, pivot_col);
        }
        ++pivot_col;
    }
    res.rank = pivot_col;
    return res;
}

std::vector<IntVec>
hnfKernelBasis(const IntMat &a)
{
    HnfResult res = hermiteNormalForm(a);
    std::vector<IntVec> basis;
    for (int c = res.rank; c < a.cols(); ++c) {
        IntVec v(a.cols());
        for (int r = 0; r < a.cols(); ++r)
            v[r] = res.u.at(r, c);
        basis.push_back(std::move(v));
    }
    return basis;
}

std::optional<IntVec>
solveIntegral(const IntMat &a, const IntVec &b)
{
    fatal_if(static_cast<int>(b.size()) != a.rows(),
             "solveIntegral: b size {} != rows {}", b.size(), a.rows());
    HnfResult res = hermiteNormalForm(a);

    // Forward substitution through H y = b; pivots advance with rows.
    IntVec y(a.cols(), 0);
    int pivot_col = 0;
    for (int r = 0; r < a.rows(); ++r) {
        __int128 residual = b[r];
        for (int j = 0; j < pivot_col; ++j)
            residual -= static_cast<__int128>(res.h.at(r, j)) * y[j];
        if (pivot_col < res.rank && res.h.at(r, pivot_col) != 0) {
            int64_t pivot = res.h.at(r, pivot_col);
            if (residual % pivot != 0)
                return std::nullopt; // not solvable over Z
            y[pivot_col] = checked(residual / pivot);
            ++pivot_col;
        } else if (residual != 0) {
            return std::nullopt; // inconsistent row
        }
    }

    // x = U y.
    IntVec x(a.cols(), 0);
    for (int r = 0; r < a.cols(); ++r) {
        __int128 acc = 0;
        for (int c = 0; c < a.cols(); ++c)
            acc += static_cast<__int128>(res.u.at(r, c)) * y[c];
        x[r] = checked(acc);
    }
    return x;
}

} // namespace rasengan::linalg
