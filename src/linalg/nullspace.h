/**
 * @file
 * Integer nullspace (homogeneous) basis extraction.
 *
 * Given an integer constraint matrix C, computes an integer basis of
 * ker(C) over Q: one basis vector per free column of the RREF, scaled by
 * the lcm of denominators and reduced by the gcd of entries.  For the
 * (near-)totally-unimodular matrices produced by the problem encodings in
 * this repository the resulting entries lie in {-1, 0, 1}, which is the
 * form Definition 1 of the paper requires for transition Hamiltonians.
 */

#ifndef RASENGAN_LINALG_NULLSPACE_H
#define RASENGAN_LINALG_NULLSPACE_H

#include <vector>

#include "linalg/matrix.h"

namespace rasengan::linalg {

/**
 * Integer basis of the rational nullspace of @p c.
 * @return one vector (length = c.cols()) per nullspace dimension;
 *         empty when C has full column rank.
 */
std::vector<IntVec> nullspaceBasis(const IntMat &c);

/** True iff every entry of @p u lies in {-1, 0, 1}. */
bool isSigned01(const IntVec &u);

/** Number of nonzero entries of @p u. */
int nonZeroCount(const IntVec &u);

} // namespace rasengan::linalg

#endif // RASENGAN_LINALG_NULLSPACE_H
