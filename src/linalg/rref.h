/**
 * @file
 * Reduced row echelon form and rank over exact rationals.
 */

#ifndef RASENGAN_LINALG_RREF_H
#define RASENGAN_LINALG_RREF_H

#include <vector>

#include "linalg/matrix.h"

namespace rasengan::linalg {

/** Result of Gauss-Jordan elimination. */
struct RrefResult
{
    RatMat mat;                 ///< the matrix in reduced row echelon form
    std::vector<int> pivotCols; ///< pivot column per pivot row, in order
    int rank = 0;               ///< number of pivots
};

/** Compute the RREF of @p m with exact rational arithmetic. */
RrefResult rref(const RatMat &m);

/** Rank of an integer matrix (via exact RREF). */
int rank(const IntMat &m);

} // namespace rasengan::linalg

#endif // RASENGAN_LINALG_RREF_H
