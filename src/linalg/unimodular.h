/**
 * @file
 * Total unimodularity testing (exhaustive, for small matrices).
 *
 * Theorem 1 in the paper distinguishes totally unimodular (TU) constraint
 * matrices (m rounds of m transitions cover the feasible space) from
 * general matrices (m^3 upper bound).  This checker validates the TU
 * property for the benchmark encodings in the test suite.
 */

#ifndef RASENGAN_LINALG_UNIMODULAR_H
#define RASENGAN_LINALG_UNIMODULAR_H

#include "linalg/matrix.h"

namespace rasengan::linalg {

/**
 * Determinant of an integer matrix via fraction-free (Bareiss) elimination.
 * @p m must be square.
 */
int64_t determinant(const IntMat &m);

/**
 * True iff every square submatrix of @p m has determinant in {-1, 0, 1}.
 * Exhaustive over all square submatrices: exponential, intended only for
 * matrices with at most ~20 rows+columns (tests and sanity checks).
 */
bool isTotallyUnimodular(const IntMat &m);

} // namespace rasengan::linalg

#endif // RASENGAN_LINALG_UNIMODULAR_H
