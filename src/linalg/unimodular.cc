#include "linalg/unimodular.h"

#include <algorithm>

namespace rasengan::linalg {

int64_t
determinant(const IntMat &m)
{
    fatal_if(m.rows() != m.cols(), "determinant of non-square {}x{}",
             m.rows(), m.cols());
    int n = m.rows();
    if (n == 0)
        return 1;

    // Bareiss fraction-free elimination: all divisions are exact.
    Matrix<__int128> a(n, n);
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            a.at(r, c) = m.at(r, c);

    __int128 prev = 1;
    int sign = 1;
    for (int k = 0; k < n - 1; ++k) {
        if (a.at(k, k) == 0) {
            int swap = -1;
            for (int r = k + 1; r < n; ++r) {
                if (a.at(r, k) != 0) {
                    swap = r;
                    break;
                }
            }
            if (swap < 0)
                return 0;
            a.swapRows(k, swap);
            sign = -sign;
        }
        for (int r = k + 1; r < n; ++r) {
            for (int c = k + 1; c < n; ++c) {
                a.at(r, c) = (a.at(r, c) * a.at(k, k) -
                              a.at(r, k) * a.at(k, c)) / prev;
            }
            a.at(r, k) = 0;
        }
        prev = a.at(k, k);
    }
    __int128 det = sign * a.at(n - 1, n - 1);
    panic_if(det > INT64_MAX || det < INT64_MIN,
             "determinant overflows int64");
    return static_cast<int64_t>(det);
}

namespace {

/** Recurse over column subsets of a fixed row subset. */
bool
checkColumnSubsets(const IntMat &m, const std::vector<int> &rows,
                   std::vector<int> &cols, int next_col)
{
    if (cols.size() == rows.size()) {
        IntMat sub(static_cast<int>(rows.size()),
                   static_cast<int>(cols.size()));
        for (size_t r = 0; r < rows.size(); ++r)
            for (size_t c = 0; c < cols.size(); ++c)
                sub.at(static_cast<int>(r), static_cast<int>(c)) =
                    m.at(rows[r], cols[c]);
        int64_t det = determinant(sub);
        return det >= -1 && det <= 1;
    }
    for (int c = next_col; c < m.cols(); ++c) {
        cols.push_back(c);
        if (!checkColumnSubsets(m, rows, cols, c + 1))
            return false;
        cols.pop_back();
    }
    return true;
}

/** Recurse over row subsets. */
bool
checkRowSubsets(const IntMat &m, std::vector<int> &rows, int next_row,
                int target_size)
{
    if (static_cast<int>(rows.size()) == target_size) {
        std::vector<int> cols;
        return checkColumnSubsets(m, rows, cols, 0);
    }
    for (int r = next_row; r < m.rows(); ++r) {
        rows.push_back(r);
        if (!checkRowSubsets(m, rows, r + 1, target_size))
            return false;
        rows.pop_back();
    }
    return true;
}

} // namespace

bool
isTotallyUnimodular(const IntMat &m)
{
    int max_size = std::min(m.rows(), m.cols());
    for (int size = 1; size <= max_size; ++size) {
        std::vector<int> rows;
        if (!checkRowSubsets(m, rows, 0, size))
            return false;
    }
    return true;
}

} // namespace rasengan::linalg
