#include "linalg/nullspace.h"

#include <numeric>

#include "linalg/rref.h"
#include "obs/prof.h"

namespace rasengan::linalg {

std::vector<IntVec>
nullspaceBasis(const IntMat &c)
{
    RASENGAN_PROF("linalg", "nullspace-basis");
    RrefResult rr = rref(toRational(c));
    const RatMat &a = rr.mat;
    int n = c.cols();

    std::vector<bool> is_pivot(n, false);
    for (int col : rr.pivotCols)
        is_pivot[col] = true;

    std::vector<IntVec> basis;
    for (int free_col = 0; free_col < n; ++free_col) {
        if (is_pivot[free_col])
            continue;
        // Rational nullspace vector: free variable = 1, pivot variables
        // read off the RREF, remaining free variables = 0.
        std::vector<Rational> v(n, Rational(0));
        v[free_col] = Rational(1);
        for (size_t p = 0; p < rr.pivotCols.size(); ++p)
            v[rr.pivotCols[p]] = -a.at(static_cast<int>(p), free_col);

        // Scale to integers: multiply by lcm of denominators, then divide
        // by the gcd of the entries so the vector is primitive.
        int64_t scale = 1;
        for (const Rational &x : v)
            scale = std::lcm(scale, x.den());
        IntVec iv(n, 0);
        int64_t g = 0;
        for (int i = 0; i < n; ++i) {
            iv[i] = (v[i] * Rational(scale)).toInt();
            g = std::gcd(g, std::abs(iv[i]));
        }
        if (g > 1)
            for (int64_t &x : iv)
                x /= g;
        basis.push_back(std::move(iv));
    }
    return basis;
}

bool
isSigned01(const IntVec &u)
{
    for (int64_t x : u)
        if (x < -1 || x > 1)
            return false;
    return true;
}

int
nonZeroCount(const IntVec &u)
{
    int count = 0;
    for (int64_t x : u)
        if (x != 0)
            ++count;
    return count;
}

} // namespace rasengan::linalg
