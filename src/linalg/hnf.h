/**
 * @file
 * Hermite normal form (HNF) over the integers.
 *
 * For an integer matrix A, computes the column-style HNF H = A U with U
 * unimodular.  Two consumers in this repository:
 *  - an alternative integer kernel basis (the columns of U matching the
 *    zero columns of H), which is often sparser than the RREF-derived
 *    basis and is compared against it in the basis-choice ablation bench;
 *  - integer particular solutions of A x = b (solvability over Z).
 *
 * All arithmetic is performed in checked 128-bit intermediates and
 * verified to fit back into 64 bits.
 */

#ifndef RASENGAN_LINALG_HNF_H
#define RASENGAN_LINALG_HNF_H

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace rasengan::linalg {

struct HnfResult
{
    IntMat h;          ///< column HNF of the input (same shape)
    IntMat u;          ///< unimodular transform with A * U = H
    int rank = 0;      ///< number of nonzero columns of H
};

/**
 * Column-style Hermite normal form: H = A U, H's nonzero columns are in
 * echelon form with positive pivots and entries to the left of each pivot
 * reduced modulo it.
 */
HnfResult hermiteNormalForm(const IntMat &a);

/**
 * Integer kernel basis of @p a derived from the HNF transform: the
 * columns of U corresponding to zero columns of H.
 */
std::vector<IntVec> hnfKernelBasis(const IntMat &a);

/**
 * An integer solution of A x = b, or nullopt when none exists over Z
 * (back-substitution through the HNF).
 */
std::optional<IntVec> solveIntegral(const IntMat &a, const IntVec &b);

} // namespace rasengan::linalg

#endif // RASENGAN_LINALG_HNF_H
