/**
 * @file
 * Always-on flight recorder: a bounded in-memory ring of recent
 * observability events -- closed spans, instant events, log lines, and
 * metric snapshots -- that survives until the moment a process dies and
 * can be dumped from an async-signal context.
 *
 * The journal answers "what were the last N things this process did?"
 * after a SIGKILL drill, a segfault, or an operator's SIGQUIT, where
 * the full trace buffer is either disabled (production) or lost with
 * the process.  Three properties drive the design:
 *
 *  1. Async-signal-safe dump.  Every entry is fully formatted as one
 *     JSON object at RECORD time into a fixed-size slot; dump() only
 *     walks the ring and write(2)s preformatted bytes (plus decimal
 *     counters rendered with a local integer formatter).  No malloc,
 *     no stdio, no locks in the signal path.
 *
 *  2. Lock-free recording.  A writer claims a slot with one fetch_add
 *     and publishes it with a seqlock (odd = being written); readers
 *     (dump, the daemon's /debug/flight) skip unstable slots instead
 *     of blocking.  Ring overflow OVERWRITES the oldest entry -- that
 *     is the point of a flight recorder -- and the overwritten count
 *     is reported as dropped, never an error.
 *
 *  3. Bounded cost.  Recording formats into a stack buffer and copies
 *     at most kSlotTextBytes; entries that do not fit are truncated
 *     (and counted), not rejected.  When the recorder is disabled the
 *     hooks are one relaxed load.
 */

#ifndef RASENGAN_OBS_FLIGHT_H
#define RASENGAN_OBS_FLIGHT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/clock.h"

namespace rasengan::obs::flight {

/** Formatted bytes one ring slot can hold (longer entries truncate). */
constexpr size_t kSlotTextBytes = 448;

/** Default ring capacity in entries (~224 KiB of slot text). */
constexpr size_t kDefaultEntries = 512;

namespace detail {

extern std::atomic<bool> flightOn;

} // namespace detail

/** One relaxed load; the gate every recording hook checks first. */
inline bool
enabled()
{
    return detail::flightOn.load(std::memory_order_relaxed);
}

/**
 * Allocate the ring (idempotent; the first capacity wins) and enable
 * recording.  @p entries is clamped to [16, 1<<16].  The ring is
 * leaked deliberately: signal handlers may fire during static
 * teardown.
 */
void configure(size_t entries = kDefaultEntries);

/** Stop recording; the ring contents stay dumpable. */
void disable();

/**
 * Apply the RASENGAN_FLIGHT environment convention:
 *   unset/""       -> @p defaultOn decides
 *   "0"|"off"      -> disabled
 *   "1"|"on"       -> enabled with default capacity
 *   decimal number -> enabled with that many ring entries
 *   anything with a '/' -> enabled, value is the dump path
 * Returns true when the recorder ended up enabled.
 */
bool configureFromEnv(bool defaultOn);

/** The same convention applied to an explicit spec (the --flight CLI
 *  flag); "" falls back to @p defaultOn like an unset variable. */
bool configureFromSpec(const std::string &spec, bool defaultOn);

/** True once configure() or disable() ran: an explicit decision was
 *  made, so later default-on paths (the daemon) must not override it. */
bool explicitlyConfigured();

/**
 * Target for signal-triggered dumps.  Empty (the default) means
 * stderr.  The path is copied into static storage so the handler can
 * open(2) it without allocating.
 */
void setDumpPath(const std::string &path);

/** The configured dump path ("" = stderr). */
std::string dumpPath();

/**
 * Install the flight-dump signal handlers: SIGQUIT dumps and the
 * process continues (an operator's "what are you doing right now");
 * SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT dump, restore the default
 * handler, and re-raise so the crash still crashes.  Idempotent.
 */
void installSignalHandlers();

/// @name Recording hooks
/// @{

/** A span that just closed (called by obs::Span's destructor). */
void recordSpan(const char *category, const char *name,
                const std::string &detail, TimeNanos durationNanos);

/** An instant event (called by obs::instantEvent). */
void recordInstant(const char *category, const char *name,
                   const std::string &detail);

/** A log line ("warn"/"info"/"panic"/"fatal" + message). */
void recordLog(const char *level, const char *text, size_t len);

/** A free-form note (the daemon's periodic metric snapshots). */
void note(const char *kind, const std::string &text);

/// @}

/**
 * Async-signal-safe dump of the ring as one JSON object to @p fd:
 * {"flight":{...counters...},"events":[entries oldest->newest]}.
 * Returns the number of entries written.  Safe to call anytime, from
 * any context, even with the recorder disabled (dumps what is there).
 */
size_t dump(int fd);

/** Dump to the configured path (stderr when unset).  Signal-safe. */
size_t dumpToConfigured();

/** The same JSON as dump(), built as a string (daemon /debug/flight). */
std::string renderJson();

/** Entries overwritten by ring wrap since configure() (not an error). */
uint64_t droppedCount();

/** Entries whose formatted text exceeded the slot and was truncated. */
uint64_t truncatedCount();

/** Entries recorded since configure() (including overwritten ones). */
uint64_t recordedCount();

/** Test hook: clear the ring and counters (recorder stays configured). */
void resetForTest();

} // namespace rasengan::obs::flight

#endif // RASENGAN_OBS_FLIGHT_H
