#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace rasengan::obs {

namespace detail {

std::atomic<bool> tracingOn{false};

} // namespace detail

namespace {

struct ThreadBuffer
{
    uint32_t tid = 0;
    std::mutex mutex; ///< uncontended on the hot path; snapshot-safe
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
};

struct TraceRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    uint32_t nextTid = 1;
};

TraceRegistry &
registry()
{
    static TraceRegistry *reg = new TraceRegistry(); // outlives threads
    return *reg;
}

std::atomic<SpanId> nextSpanId{1};

thread_local ThreadBuffer *tls_buffer = nullptr;
thread_local SpanId tls_currentSpan = 0;

ThreadBuffer &
threadBuffer()
{
    if (tls_buffer == nullptr) {
        auto buf = std::make_shared<ThreadBuffer>();
        TraceRegistry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buf->tid = reg.nextTid++;
        reg.buffers.push_back(buf);
        tls_buffer = buf.get();
    }
    return *tls_buffer;
}

Counter &
droppedCounter()
{
    static Counter &c = Registry::global().counter(
        "obs_trace_dropped_total",
        "Trace events dropped by full per-thread buffers");
    return c;
}

void
append(ThreadBuffer &buf, TraceEvent event)
{
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.events.size() >= kMaxEventsPerThread) {
        ++buf.dropped;
        droppedCounter().inc();
        return;
    }
    buf.events.push_back(std::move(event));
}

} // namespace

void
startTracing()
{
    detail::tracingOn.store(true, std::memory_order_relaxed);
}

void
stopTracing()
{
    detail::tracingOn.store(false, std::memory_order_relaxed);
}

void
clearTrace()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &buf : reg.buffers) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        buf->events.clear();
        buf->dropped = 0;
    }
}

size_t
traceEventCount()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    size_t n = 0;
    for (const auto &buf : reg.buffers) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        n += buf->events.size();
    }
    return n;
}

uint64_t
traceDroppedCount()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    uint64_t n = 0;
    for (const auto &buf : reg.buffers) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        n += buf->dropped;
    }
    return n;
}

SpanId
currentSpanId()
{
    return tls_currentSpan;
}

Span::Span(const char *category, const char *name, std::string detail)
{
    bool traced = tracingEnabled();
    bool flighted = flight::enabled();
    if (!traced && !flighted)
        return;
    if (flighted) {
        category_ = category;
        name_ = name;
        flightDetail_ = detail;
        start_ = nowNanos();
        flightActive_ = true;
    }
    if (traced)
        open(category, name, std::move(detail), tls_currentSpan, false,
             std::string());
}

Span::Span(const char *category, const char *name, std::string detail,
           SpanId explicit_parent)
{
    bool traced = tracingEnabled();
    bool flighted = flight::enabled();
    if (!traced && !flighted)
        return;
    if (flighted) {
        category_ = category;
        name_ = name;
        flightDetail_ = detail;
        start_ = nowNanos();
        flightActive_ = true;
    }
    if (traced)
        open(category, name, std::move(detail), explicit_parent, false,
             std::string());
}

Span::Span(const char *category, const char *name, std::string detail,
           const SpanContext &context)
{
    bool traced = tracingEnabled();
    bool flighted = flight::enabled();
    if (!traced && !flighted)
        return;
    if (flighted) {
        category_ = category;
        name_ = name;
        flightDetail_ = detail;
        start_ = nowNanos();
        flightActive_ = true;
    }
    if (traced)
        open(category, name, std::move(detail), context.parent,
             context.remote, context.traceId);
}

void
Span::open(const char *category, const char *name, std::string detail,
           SpanId parent, bool remoteParent, std::string traceId)
{
    id_ = nextSpanId.fetch_add(1, std::memory_order_relaxed);
    restoreParent_ = tls_currentSpan;
    tls_currentSpan = id_;
    active_ = true;
    append(threadBuffer(),
           TraceEvent{'B', category, name, std::move(detail), nowNanos(),
                      id_, parent, remoteParent, std::move(traceId)});
}

Span::~Span()
{
    if (flightActive_)
        flight::recordSpan(category_, name_, flightDetail_,
                           nowNanos() - start_);
    if (!active_)
        return;
    // Close unconditionally (even if tracing stopped mid-span) so every
    // recorded B has a matching E and the exported JSON stays balanced.
    append(*tls_buffer, TraceEvent{'E', "", "", std::string(), nowNanos(),
                                   id_, 0, false, std::string()});
    tls_currentSpan = restoreParent_;
}

void
instantEvent(const char *category, const char *name, std::string detail)
{
    if (flight::enabled())
        flight::recordInstant(category, name, detail);
    if (!tracingEnabled())
        return;
    append(threadBuffer(),
           TraceEvent{'i', category, name, std::move(detail), nowNanos(),
                      nextSpanId.fetch_add(1, std::memory_order_relaxed),
                      tls_currentSpan, false, std::string()});
}

std::vector<FlatEvent>
snapshotTraceEvents()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<FlatEvent> flat;
    for (const auto &buf : reg.buffers) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        uint64_t seq = 0;
        for (const TraceEvent &e : buf->events)
            flat.push_back(FlatEvent{e, buf->tid, seq++});
    }
    return flat;
}

namespace {

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

/**
 * Membership in a remote-rooted subtree, memoized parent-chain walk.
 * A remote root is a B/i event with remoteParent set whose trace id is
 * in @p traceIds (nullptr = any).  E events share their span's id and
 * therefore its membership.
 */
class RemoteRootFilter
{
  public:
    RemoteRootFilter(const std::vector<FlatEvent> &events,
                     const std::set<std::string> *traceIds)
    {
        for (const FlatEvent &fe : events) {
            const TraceEvent &e = fe.event;
            if (e.phase == 'E')
                continue;
            bool root = e.remoteParent &&
                        (traceIds == nullptr ||
                         traceIds->count(e.traceId) != 0);
            info_.emplace(e.id, Info{e.parent, root});
        }
    }

    bool
    inside(SpanId id)
    {
        std::vector<SpanId> path;
        SpanId cur = id;
        bool result = false;
        while (true) {
            auto memoIt = memo_.find(cur);
            if (memoIt != memo_.end()) {
                result = memoIt->second;
                break;
            }
            auto it = info_.find(cur);
            if (it == info_.end()) {
                result = false;
                break;
            }
            path.push_back(cur);
            if (it->second.remoteRoot) {
                result = true;
                break;
            }
            if (it->second.parent == 0) {
                result = false;
                break;
            }
            cur = it->second.parent;
        }
        for (SpanId s : path)
            memo_[s] = result;
        return result;
    }

  private:
    struct Info
    {
        SpanId parent;
        bool remoteRoot;
    };
    std::unordered_map<SpanId, Info> info_;
    std::unordered_map<SpanId, bool> memo_;
};

std::vector<FlatEvent>
filterRemoteRooted(const std::vector<FlatEvent> &events,
                   const std::set<std::string> *traceIds, bool keepInside)
{
    RemoteRootFilter filter(events, traceIds);
    std::vector<FlatEvent> out;
    for (const FlatEvent &fe : events)
        if (filter.inside(fe.event.id) == keepInside)
            out.push_back(fe);
    return out;
}

} // namespace

std::vector<FlatEvent>
remoteRootedEvents(const std::vector<FlatEvent> &events,
                   const std::set<std::string> &traceIds)
{
    return filterRemoteRooted(events, &traceIds, true);
}

std::vector<FlatEvent>
withoutRemoteRooted(const std::vector<FlatEvent> &events)
{
    return filterRemoteRooted(events, nullptr, false);
}

namespace {

void
wireEscape(std::string &out, const char *s, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        char c = s[i];
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
}

std::string
wireUnescape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
        char c = raw[i];
        if (c == '\\' && i + 1 < raw.size()) {
            char n = raw[++i];
            if (n == 't')
                out += '\t';
            else if (n == 'n')
                out += '\n';
            else
                out += n;
            continue;
        }
        out += c;
    }
    return out;
}

/** Stable storage for decoded category/name strings (leaked). */
const char *
internString(const std::string &s)
{
    static std::mutex *mutex = new std::mutex();
    static std::set<std::string> *table = new std::set<std::string>();
    std::lock_guard<std::mutex> lock(*mutex);
    return table->insert(s).first->c_str();
}

} // namespace

std::string
encodeSpanEvents(const std::vector<FlatEvent> &events, size_t maxEvents,
                 uint64_t *dropped)
{
    std::string out;
    size_t limit = (maxEvents == 0 || maxEvents > events.size())
                       ? events.size()
                       : maxEvents;
    if (dropped != nullptr)
        *dropped += events.size() - limit;
    char nums[160];
    for (size_t i = 0; i < limit; ++i) {
        const FlatEvent &fe = events[i];
        const TraceEvent &e = fe.event;
        std::snprintf(nums, sizeof(nums),
                      "%c\t%llu\t%u\t%llu\t%llu\t%llu\t%c\t", e.phase,
                      static_cast<unsigned long long>(e.ts), fe.tid,
                      static_cast<unsigned long long>(fe.seq),
                      static_cast<unsigned long long>(e.id),
                      static_cast<unsigned long long>(e.parent),
                      e.remoteParent ? '1' : '0');
        out += nums;
        out += e.traceId; // hex digits, never needs escaping
        out += '\t';
        wireEscape(out, e.category, std::char_traits<char>::length(
                                        e.category));
        out += '\t';
        wireEscape(out, e.name,
                   std::char_traits<char>::length(e.name));
        out += '\t';
        wireEscape(out, e.detail.c_str(), e.detail.size());
        out += '\n';
    }
    return out;
}

std::vector<FlatEvent>
decodeSpanEvents(const std::string &encoded)
{
    std::vector<FlatEvent> out;
    size_t pos = 0;
    while (pos < encoded.size()) {
        size_t eol = encoded.find('\n', pos);
        if (eol == std::string::npos)
            eol = encoded.size();
        std::string line = encoded.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        // Escaped tabs are two-char "\t" sequences, so splitting on the
        // raw byte is unambiguous.
        std::vector<std::string> fields;
        size_t start = 0;
        while (fields.size() < 10) {
            size_t tab = line.find('\t', start);
            if (tab == std::string::npos)
                break;
            fields.push_back(line.substr(start, tab - start));
            start = tab + 1;
        }
        if (fields.size() != 10)
            continue;
        fields.push_back(line.substr(start)); // detail (may hold none)
        const std::string &ph = fields[0];
        if (ph.size() != 1 ||
            (ph[0] != 'B' && ph[0] != 'E' && ph[0] != 'i'))
            continue;
        FlatEvent fe;
        fe.event.phase = ph[0];
        fe.event.ts = std::strtoull(fields[1].c_str(), nullptr, 10);
        fe.tid = static_cast<uint32_t>(
            std::strtoul(fields[2].c_str(), nullptr, 10));
        fe.seq = std::strtoull(fields[3].c_str(), nullptr, 10);
        fe.event.id = std::strtoull(fields[4].c_str(), nullptr, 10);
        fe.event.parent = std::strtoull(fields[5].c_str(), nullptr, 10);
        fe.event.remoteParent = fields[6] == "1";
        fe.event.traceId = fields[7];
        fe.event.category = internString(wireUnescape(fields[8]));
        fe.event.name = internString(wireUnescape(fields[9]));
        fe.event.detail = wireUnescape(fields[10]);
        out.push_back(std::move(fe));
    }
    return out;
}

namespace {

/** Worker ids are remapped to a disjoint range; remote-parent edges
 *  keep their coordinator-space parent id verbatim. */
FlatEvent
remapForeign(const FlatEvent &fe, uint64_t base, int64_t offsetNanos)
{
    FlatEvent out = fe;
    out.event.id += base;
    if (!out.event.remoteParent && out.event.parent != 0)
        out.event.parent += base;
    int64_t ts = static_cast<int64_t>(out.event.ts) + offsetNanos;
    out.event.ts = ts < 0 ? 0 : static_cast<TimeNanos>(ts);
    return out;
}

constexpr uint64_t kForeignIdBase = uint64_t{1} << 32;

struct PidEvent
{
    FlatEvent fe;
    uint32_t pid;
};

void
emitEvent(std::ofstream &out, const FlatEvent &fe, uint32_t pid,
          bool &first)
{
    const TraceEvent &e = fe.event;
    if (!first)
        out << ",\n";
    first = false;
    char line[192];
    double ts_us = static_cast<double>(e.ts) / 1000.0;
    if (e.phase == 'E') {
        std::snprintf(line, sizeof(line),
                      "{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,"
                      "\"ts\":%.3f}",
                      pid, fe.tid, ts_us);
        out << line;
        return;
    }
    std::snprintf(line, sizeof(line),
                  "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,",
                  e.phase == 'i' ? 'i' : 'B', pid, fe.tid, ts_us);
    out << line << "\"cat\":\"" << jsonEscape(e.category)
        << "\",\"name\":\"" << jsonEscape(e.name) << "\"";
    if (e.phase == 'i')
        out << ",\"s\":\"t\"";
    out << ",\"args\":{\"id\":" << e.id << ",\"parent\":" << e.parent;
    if (e.remoteParent)
        out << ",\"remote_parent\":true";
    if (!e.traceId.empty())
        out << ",\"trace_id\":\"" << e.traceId << "\"";
    if (!e.detail.empty())
        out << ",\"detail\":\"" << jsonEscape(e.detail) << "\"";
    out << "}}";
}

void
emitProcessName(std::ofstream &out, uint32_t pid, const std::string &name,
                bool &first)
{
    if (!first)
        out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
        << jsonEscape(name) << "\"}}";
}

void
sortForExport(std::vector<PidEvent> &all)
{
    // Global timestamp order (stable within a (pid, tid) track):
    // chrome://tracing accepts any order but monotonic ts makes the
    // file diff- and jq-checkable.  Per-track B/E nesting survives the
    // sort because within one track the order is already nested and
    // ts-monotonic.
    std::stable_sort(all.begin(), all.end(),
                     [](const PidEvent &a, const PidEvent &b) {
                         if (a.fe.event.ts != b.fe.event.ts)
                             return a.fe.event.ts < b.fe.event.ts;
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.fe.tid != b.fe.tid)
                             return a.fe.tid < b.fe.tid;
                         return a.fe.seq < b.fe.seq;
                     });
}

} // namespace

bool
writeChromeTrace(const std::string &path)
{
    std::vector<FlatEvent> flat = snapshotTraceEvents();
    std::vector<PidEvent> all;
    all.reserve(flat.size());
    for (FlatEvent &fe : flat)
        all.push_back(PidEvent{std::move(fe), 1});
    sortForExport(all);

    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "{\"traceEvents\":[\n";
    bool first = true;
    for (const PidEvent &pe : all)
        emitEvent(out, pe.fe, pe.pid, first);
    out << "\n]}\n";
    return static_cast<bool>(out);
}

bool
writeMergedChromeTrace(const std::string &path,
                       const std::vector<FlatEvent> &local,
                       const std::vector<ForeignSpans> &foreign)
{
    std::vector<PidEvent> all;
    for (const FlatEvent &fe : withoutRemoteRooted(local))
        all.push_back(PidEvent{fe, 1});
    for (size_t i = 0; i < foreign.size(); ++i) {
        uint64_t base = kForeignIdBase * (i + 1);
        uint32_t pid = static_cast<uint32_t>(i + 2);
        for (const FlatEvent &fe : foreign[i].events)
            all.push_back(PidEvent{
                remapForeign(fe, base, foreign[i].clockOffsetNanos),
                pid});
    }
    sortForExport(all);

    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "{\"traceEvents\":[\n";
    bool first = true;
    emitProcessName(out, 1, "coordinator", first);
    for (size_t i = 0; i < foreign.size(); ++i)
        emitProcessName(out, static_cast<uint32_t>(i + 2),
                        foreign[i].process.empty()
                            ? "worker " + std::to_string(i)
                            : foreign[i].process,
                        first);
    for (const PidEvent &pe : all)
        emitEvent(out, pe.fe, pe.pid, first);
    out << "\n]}\n";
    return static_cast<bool>(out);
}

namespace {

struct SigNode
{
    std::string label;
    std::vector<const SigNode *> children;
};

std::string
renderNode(const SigNode &node)
{
    std::vector<std::string> rendered;
    rendered.reserve(node.children.size());
    for (const SigNode *child : node.children)
        rendered.push_back(renderNode(*child));
    std::sort(rendered.begin(), rendered.end());
    std::string out = node.label;
    if (!rendered.empty()) {
        out += "(";
        for (size_t i = 0; i < rendered.size(); ++i) {
            if (i)
                out += ",";
            out += rendered[i];
        }
        out += ")";
    }
    return out;
}

} // namespace

std::string
spanTreeSignature(const std::vector<FlatEvent> &events)
{
    std::map<SpanId, SigNode> nodes;
    std::vector<std::pair<SpanId, SpanId>> links; ///< (child, parent)
    for (const FlatEvent &fe : events) {
        const TraceEvent &e = fe.event;
        if (e.phase == 'E')
            continue;
        SigNode &node = nodes[e.id];
        node.label = std::string(e.category) + ":" + e.name;
        if (!e.detail.empty())
            node.label += "[" + e.detail + "]";
        links.emplace_back(e.id, e.parent);
    }
    std::vector<const SigNode *> roots;
    for (const auto &[child, parent] : links) {
        auto it = nodes.find(parent);
        if (parent != 0 && it != nodes.end())
            it->second.children.push_back(&nodes.at(child));
        else
            roots.push_back(&nodes.at(child));
    }
    std::vector<std::string> rendered;
    rendered.reserve(roots.size());
    for (const SigNode *root : roots)
        rendered.push_back(renderNode(*root));
    std::sort(rendered.begin(), rendered.end());
    std::ostringstream os;
    for (const std::string &r : rendered)
        os << r << "\n";
    return os.str();
}

std::string
spanTreeSignature()
{
    return spanTreeSignature(snapshotTraceEvents());
}

namespace {

/**
 * Restrict the signed tree to the STRUCTURAL span categories before
 * signing: batch -> job -> solver stages -> segment evolution and
 * sampling.  Everything else a worker records is work that an
 * artifact-cache hit can skip entirely -- the RASENGAN_PROF kernel
 * hooks (a rotation-plan replay bypasses the direct kernels),
 * transpile, transition-set construction, nullspace solves -- and the
 * caches are per-worker-process, so whether those spans exist depends
 * on how jobs were partitioned.  They stay in the merged TRACE at
 * full fidelity; they are just not part of the partition-invariance
 * claim the signature makes.
 */
bool
isSignatureCategory(const char *category)
{
    static constexpr std::string_view kKeep[] = {
        "cluster", "serve", "solver", "sample", "segment-evolve"};
    for (std::string_view keep : kKeep)
        if (keep == category)
            return true;
    return false;
}

std::vector<FlatEvent>
onlySignatureCategories(const std::vector<FlatEvent> &events)
{
    std::map<SpanId, SpanId> parentOf;
    std::map<SpanId, bool> excluded;
    for (const FlatEvent &fe : events) {
        if (fe.event.phase == 'E')
            continue;
        parentOf[fe.event.id] = fe.event.parent;
        excluded[fe.event.id] = !isSignatureCategory(fe.event.category);
    }
    // A span survives only when it AND every ancestor are structural,
    // so pruning a span never promotes its children to roots.
    auto inExcludedSubtree = [&](SpanId id) {
        for (size_t hops = 0; hops < parentOf.size() + 1; ++hops) {
            auto k = excluded.find(id);
            if (k == excluded.end())
                return false;
            if (k->second)
                return true;
            id = parentOf[id];
        }
        return false; // parent cycle (malformed input): keep the span
    };
    std::vector<FlatEvent> kept;
    kept.reserve(events.size());
    for (const FlatEvent &fe : events) {
        if (fe.event.phase != 'E' && inExcludedSubtree(fe.event.id))
            continue;
        kept.push_back(fe);
    }
    return kept;
}

} // namespace

std::string
mergedSpanTreeSignature(const std::vector<FlatEvent> &local,
                        const std::vector<ForeignSpans> &foreign)
{
    std::vector<FlatEvent> merged = withoutRemoteRooted(local);
    for (size_t i = 0; i < foreign.size(); ++i) {
        uint64_t base = kForeignIdBase * (i + 1);
        for (const FlatEvent &fe : foreign[i].events)
            merged.push_back(
                remapForeign(fe, base, foreign[i].clockOffsetNanos));
    }
    return spanTreeSignature(onlySignatureCategories(merged));
}

} // namespace rasengan::obs
