#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace rasengan::obs {

namespace detail {

std::atomic<bool> tracingOn{false};

} // namespace detail

namespace {

struct TraceEvent
{
    char phase;          ///< 'B', 'E', or 'i'
    const char *category;///< static string (call-site literal)
    const char *name;    ///< static string (call-site literal)
    std::string detail;  ///< dynamic annotation (may be empty)
    TimeNanos ts;
    SpanId id;
    SpanId parent;
};

struct ThreadBuffer
{
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
};

struct TraceRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    uint32_t nextTid = 1;
};

TraceRegistry &
registry()
{
    static TraceRegistry *reg = new TraceRegistry(); // outlives threads
    return *reg;
}

std::atomic<SpanId> nextSpanId{1};

thread_local ThreadBuffer *tls_buffer = nullptr;
thread_local SpanId tls_currentSpan = 0;

ThreadBuffer &
threadBuffer()
{
    if (tls_buffer == nullptr) {
        auto buf = std::make_shared<ThreadBuffer>();
        TraceRegistry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buf->tid = reg.nextTid++;
        reg.buffers.push_back(buf);
        tls_buffer = buf.get();
    }
    return *tls_buffer;
}

Counter &
droppedCounter()
{
    static Counter &c = Registry::global().counter(
        "obs_trace_dropped_total",
        "Trace events dropped by full per-thread buffers");
    return c;
}

void
append(ThreadBuffer &buf, TraceEvent event)
{
    if (buf.events.size() >= kMaxEventsPerThread) {
        ++buf.dropped;
        droppedCounter().inc();
        return;
    }
    buf.events.push_back(std::move(event));
}

} // namespace

void
startTracing()
{
    detail::tracingOn.store(true, std::memory_order_relaxed);
}

void
stopTracing()
{
    detail::tracingOn.store(false, std::memory_order_relaxed);
}

void
clearTrace()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &buf : reg.buffers) {
        buf->events.clear();
        buf->dropped = 0;
    }
}

size_t
traceEventCount()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    size_t n = 0;
    for (const auto &buf : reg.buffers)
        n += buf->events.size();
    return n;
}

uint64_t
traceDroppedCount()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    uint64_t n = 0;
    for (const auto &buf : reg.buffers)
        n += buf->dropped;
    return n;
}

SpanId
currentSpanId()
{
    return tls_currentSpan;
}

Span::Span(const char *category, const char *name, std::string detail)
{
    if (!tracingEnabled())
        return;
    open(category, name, std::move(detail), tls_currentSpan);
}

Span::Span(const char *category, const char *name, std::string detail,
           SpanId explicit_parent)
{
    if (!tracingEnabled())
        return;
    open(category, name, std::move(detail), explicit_parent);
}

void
Span::open(const char *category, const char *name, std::string detail,
           SpanId parent)
{
    id_ = nextSpanId.fetch_add(1, std::memory_order_relaxed);
    restoreParent_ = tls_currentSpan;
    tls_currentSpan = id_;
    active_ = true;
    append(threadBuffer(), TraceEvent{'B', category, name,
                                      std::move(detail), nowNanos(), id_,
                                      parent});
}

Span::~Span()
{
    if (!active_)
        return;
    // Close unconditionally (even if tracing stopped mid-span) so every
    // recorded B has a matching E and the exported JSON stays balanced.
    append(*tls_buffer, TraceEvent{'E', "", "", std::string(), nowNanos(),
                                   id_, 0});
    tls_currentSpan = restoreParent_;
}

void
instantEvent(const char *category, const char *name, std::string detail)
{
    if (!tracingEnabled())
        return;
    append(threadBuffer(),
           TraceEvent{'i', category, name, std::move(detail), nowNanos(),
                      nextSpanId.fetch_add(1, std::memory_order_relaxed),
                      tls_currentSpan});
}

namespace {

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

struct FlatEvent
{
    TraceEvent event;
    uint32_t tid;
    uint64_t seq; ///< per-thread order, stable tiebreak for equal ts
};

/** Snapshot every buffer under the registry lock. */
std::vector<FlatEvent>
snapshotEvents()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<FlatEvent> flat;
    for (const auto &buf : reg.buffers) {
        uint64_t seq = 0;
        for (const TraceEvent &e : buf->events)
            flat.push_back(FlatEvent{e, buf->tid, seq++});
    }
    return flat;
}

} // namespace

bool
writeChromeTrace(const std::string &path)
{
    std::vector<FlatEvent> flat = snapshotEvents();
    // Global timestamp order (stable within a thread): chrome://tracing
    // accepts any order but monotonic ts makes the file diff- and
    // jq-checkable.  Per-thread B/E nesting survives the sort because
    // within one tid the order is already nested and ts-monotonic.
    std::stable_sort(flat.begin(), flat.end(),
                     [](const FlatEvent &a, const FlatEvent &b) {
                         if (a.event.ts != b.event.ts)
                             return a.event.ts < b.event.ts;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.seq < b.seq;
                     });

    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "{\"traceEvents\":[\n";
    bool first = true;
    char line[160];
    for (const FlatEvent &fe : flat) {
        const TraceEvent &e = fe.event;
        if (!first)
            out << ",\n";
        first = false;
        double ts_us = static_cast<double>(e.ts) / 1000.0;
        if (e.phase == 'E') {
            std::snprintf(line, sizeof(line),
                          "{\"ph\":\"E\",\"pid\":1,\"tid\":%u,"
                          "\"ts\":%.3f}",
                          fe.tid, ts_us);
            out << line;
            continue;
        }
        std::snprintf(line, sizeof(line),
                      "{\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,",
                      e.phase == 'i' ? 'i' : 'B', fe.tid, ts_us);
        out << line << "\"cat\":\"" << jsonEscape(e.category)
            << "\",\"name\":\"" << jsonEscape(e.name) << "\"";
        if (e.phase == 'i')
            out << ",\"s\":\"t\"";
        out << ",\"args\":{\"id\":" << e.id << ",\"parent\":" << e.parent;
        if (!e.detail.empty())
            out << ",\"detail\":\"" << jsonEscape(e.detail) << "\"";
        out << "}}";
    }
    out << "\n]}\n";
    return static_cast<bool>(out);
}

namespace {

struct SigNode
{
    std::string label;
    std::vector<const SigNode *> children;
};

std::string
renderNode(const SigNode &node)
{
    std::vector<std::string> rendered;
    rendered.reserve(node.children.size());
    for (const SigNode *child : node.children)
        rendered.push_back(renderNode(*child));
    std::sort(rendered.begin(), rendered.end());
    std::string out = node.label;
    if (!rendered.empty()) {
        out += "(";
        for (size_t i = 0; i < rendered.size(); ++i) {
            if (i)
                out += ",";
            out += rendered[i];
        }
        out += ")";
    }
    return out;
}

} // namespace

std::string
spanTreeSignature()
{
    std::vector<FlatEvent> flat = snapshotEvents();
    std::map<SpanId, SigNode> nodes;
    std::vector<std::pair<SpanId, SpanId>> links; ///< (child, parent)
    for (const FlatEvent &fe : flat) {
        const TraceEvent &e = fe.event;
        if (e.phase == 'E')
            continue;
        SigNode &node = nodes[e.id];
        node.label = std::string(e.category) + ":" + e.name;
        if (!e.detail.empty())
            node.label += "[" + e.detail + "]";
        links.emplace_back(e.id, e.parent);
    }
    std::vector<const SigNode *> roots;
    for (const auto &[child, parent] : links) {
        auto it = nodes.find(parent);
        if (parent != 0 && it != nodes.end())
            it->second.children.push_back(&nodes.at(child));
        else
            roots.push_back(&nodes.at(child));
    }
    std::vector<std::string> rendered;
    rendered.reserve(roots.size());
    for (const SigNode *root : roots)
        rendered.push_back(renderNode(*root));
    std::sort(rendered.begin(), rendered.end());
    std::ostringstream os;
    for (const std::string &r : rendered)
        os << r << "\n";
    return os.str();
}

} // namespace rasengan::obs
