/**
 * @file
 * The one clock seam for observability timestamps.
 *
 * Before this layer existed the repository had two notions of "now":
 * common/timer.h read std::chrono::steady_clock directly and
 * exec/clock.h wrapped a virtual/wall Clock hierarchy for resilience
 * backoff.  Span and metric timestamps must never mix the two silently
 * (a trace stamped partly in fault-injection virtual time would show
 * nonsense durations), so every wall-clock read in the repository goes
 * through obs::Clock: the Stopwatch, exec::WallClock, and every trace
 * event use this function.  exec::VirtualClock deliberately does NOT --
 * virtual time is a modeled quantity and only ever surfaces as metric
 * *values* (e.g. exec_backoff_seconds), never as timestamps.
 *
 * The source is swappable (setTimeSourceForTest) so tests can pin
 * deterministic timestamps; the default reads steady_clock.  Everything
 * is header-inline: the seam adds no link dependency to the libraries
 * that include it.
 */

#ifndef RASENGAN_OBS_CLOCK_H
#define RASENGAN_OBS_CLOCK_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rasengan::obs {

/** Monotonic nanoseconds; the absolute origin is unspecified. */
using TimeNanos = uint64_t;

/** Signature of a replacement time source (tests). */
using TimeSourceFn = TimeNanos (*)();

namespace detail {

inline TimeNanos
steadyNanos()
{
    return static_cast<TimeNanos>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

inline std::atomic<TimeSourceFn> &
timeSource()
{
    static std::atomic<TimeSourceFn> source{&steadyNanos};
    return source;
}

} // namespace detail

/** Current monotonic time in nanoseconds from the process time source. */
inline TimeNanos
nowNanos()
{
    return detail::timeSource().load(std::memory_order_relaxed)();
}

/** Current monotonic time in seconds (convenience for latency math). */
inline double
nowSeconds()
{
    return static_cast<double>(nowNanos()) * 1e-9;
}

/**
 * Replace the process time source; nullptr restores the steady-clock
 * default.  Test-only: swapping while spans are open produces traces
 * with mixed origins.
 */
inline void
setTimeSourceForTest(TimeSourceFn fn)
{
    detail::timeSource().store(fn ? fn : &detail::steadyNanos,
                               std::memory_order_relaxed);
}

} // namespace rasengan::obs

#endif // RASENGAN_OBS_CLOCK_H
