/**
 * @file
 * Typed process-wide metrics registry.
 *
 * Three instrument kinds, all safe to update concurrently from pool
 * threads with relaxed atomics (updates commute, so final values are
 * deterministic whenever the instrumented work is):
 *
 *  - Counter: monotonically increasing uint64 (events, cache hits).
 *  - Gauge: last-write-wins double (bytes in use, queue depth).
 *  - Histogram: fixed log-2 buckets.  Bucket k has upper bound
 *    2^(k + kMinExp) for k in [0, kBuckets-2]; the last bucket is
 *    +inf.  Fixed edges keep exports byte-comparable across runs and
 *    make bucket membership a cheap exponent extraction.
 *
 * Instruments are identified by (name, sorted labels) and live for the
 * process lifetime: registration hands out stable references that are
 * safe to cache in `static` locals at call sites.  resetAllForTest()
 * zeroes values but never invalidates references.
 *
 * Exports: Prometheus text exposition (promText) with full label/help
 * escaping, and a flat JSON object (jsonText) for machine diffing.
 * Both render instruments in sorted (name, labels) order so equal
 * workloads produce byte-identical files.
 */

#ifndef RASENGAN_OBS_METRICS_H
#define RASENGAN_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rasengan::obs {

/** Sorted key=value pairs attached to an instrument. */
using Labels = std::map<std::string, std::string>;

class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

class Gauge
{
  public:
    void
    set(double v)
    {
        bits_.store(encode(v), std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        uint64_t seen = bits_.load(std::memory_order_relaxed);
        while (!bits_.compare_exchange_weak(seen, encode(decode(seen) + delta),
                                            std::memory_order_relaxed)) {
        }
    }

    double value() const { return decode(bits_.load(std::memory_order_relaxed)); }

    void reset() { bits_.store(0, std::memory_order_relaxed); }

  private:
    static uint64_t
    encode(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        return bits;
    }

    static double
    decode(uint64_t bits)
    {
        double v;
        __builtin_memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::atomic<uint64_t> bits_{0};
};

class Histogram
{
  public:
    /** Smallest finite bucket upper bound is 2^kMinExp. */
    static constexpr int kMinExp = -20;
    /** Finite buckets + one +inf bucket. */
    static constexpr int kBuckets = 64;

    /** Bucket index for @p v (values <= smallest bound share bucket 0). */
    static int bucketFor(double v);

    /** Upper bound of finite bucket @p k (2^(k + kMinExp)). */
    static double
    bucketUpperBound(int k)
    {
        return std::exp2(static_cast<double>(k + kMinExp));
    }

    void observe(double v);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.value(); }

    uint64_t
    bucketCount(int k) const
    {
        return buckets_[static_cast<size_t>(k)].load(
            std::memory_order_relaxed);
    }

    /**
     * Smallest bucket upper bound at or below which at least
     * @p q (in [0,1]) of the observations fall; an upper-bound quantile
     * estimate quantized to the log-2 edges.  0 when empty.
     */
    double quantileUpperBound(double q) const;

    /**
     * Overwrite this histogram with an imported snapshot (the cluster
     * merge path): per-bucket counts, total sum, total count.  Imported
     * snapshots use last-write-wins semantics like imported gauges --
     * each batch_done carries the worker's full registry state.
     */
    void importSnapshot(const std::array<uint64_t, kBuckets> &counts,
                        double sum, uint64_t count);

    void reset();

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    Gauge sum_;
};

class Registry
{
  public:
    /** The process-wide registry every instrumented subsystem uses. */
    static Registry &global();

    /** Private registries are for tests only. */
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name, const std::string &help = "",
                     Labels labels = {});
    Gauge &gauge(const std::string &name, const std::string &help = "",
                 Labels labels = {});
    Histogram &histogram(const std::string &name,
                         const std::string &help = "", Labels labels = {});

    /** Prometheus text exposition (sorted, escaped, deterministic). */
    std::string promText() const;

    /** Flat JSON: {"name{label=\"v\"}": value, ...}.  Histograms emit
     *  canonical `name_bucket{...,le="..."}` cumulative entries (edges
     *  separating observations plus +Inf, as in promText), _count and
     *  _sum, and derived _p50/_p95/_p99 quantile upper bounds
     *  (non-finite values render as quoted strings).  Sorted keys. */
    std::string jsonText() const;

    /** Zero every instrument; references stay valid. */
    void resetAllForTest();

    /**
     * Import a snapshot of another process's registry -- the merged-
     * export path for the cluster coordinator.  @p values holds parsed
     * jsonText() entries: rendered series key ("name" or
     * "name{k=\"v\"}") -> value.  Each series is re-registered here as
     * a GAUGE named @p prefix + name with @p extra merged over its
     * labels (extra wins on collision, so the coordinator's
     * worker="N" tag cannot be spoofed by the snapshot).  Counters
     * arrive as gauges deliberately: an imported value is a snapshot,
     * not a live monotone stream.
     *
     * Histogram series are reconstructed histogram-aware: a family of
     * `base_bucket{le="..."}` entries (plus its `base_count`/`base_sum`)
     * becomes a real imported HISTOGRAM named prefix + base -- the
     * cumulative counts are de-accumulated back into per-bucket counts
     * on the fixed log-2 edges, so the merged export re-derives correct
     * quantiles instead of carrying opaque per-edge gauges.  Unknown
     * `le` edges and non-monotone cumulative counts are dropped into
     * the malformed tally.
     *
     * Returns the number of series imported.  Malformed keys and
     * series whose prefixed name is already registered locally as a
     * different kind are dropped with a structured warning and counted
     * in cluster_import_skipped_total (never a crash: the snapshot is
     * another process's data).
     */
    size_t importFlat(const std::map<std::string, double> &values,
                      const std::string &prefix, const Labels &extra,
                      const std::string &help = "");

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Instrument
    {
        Kind kind;
        std::string name;
        std::string help;
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    using InstrumentKey = std::pair<std::string, std::string>;

    Instrument &findOrCreate(Kind kind, const std::string &name,
                             const std::string &help, Labels labels);

    /**
     * Gauge lookup that refuses kind collisions instead of panicking:
     * returns nullptr when (name, labels) is already registered as a
     * different kind.  Used by importFlat, whose series names come from
     * another process and must not be able to take this one down.
     */
    Gauge *tryGauge(const std::string &name, const std::string &help,
                    Labels labels);

    /** Histogram counterpart of tryGauge (importFlat's histogram path). */
    Histogram *tryHistogram(const std::string &name,
                            const std::string &help, Labels labels);

    mutable std::mutex mutex_;
    /** Keyed by (name, rendered labels); map keeps export order sorted. */
    std::map<InstrumentKey, std::unique_ptr<Instrument>> instruments_;
};

/** Escape a Prometheus label value (backslash, quote, newline). */
std::string promEscapeLabelValue(const std::string &raw);

/**
 * Parse a rendered series key -- `name` or `name{k="v",k2="v2"}`, the
 * format promText/jsonText emit -- back into name + labels (the inverse
 * of the registry's own rendering, escapes included).  Returns false on
 * malformed keys, leaving the outputs untouched.
 */
bool parseInstrumentKey(const std::string &key, std::string *name,
                        Labels *labels);

/** Escape a Prometheus HELP text (backslash, newline). */
std::string promEscapeHelp(const std::string &raw);

/** Write @p text to @p path; returns false (and warns) on I/O failure. */
bool writeTextFile(const std::string &path, const std::string &text);

} // namespace rasengan::obs

#endif // RASENGAN_OBS_METRICS_H
