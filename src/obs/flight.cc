#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rasengan::obs::flight {

namespace detail {

std::atomic<bool> flightOn{false};

} // namespace detail

namespace {

struct Slot
{
    /** Seqlock: odd while being written; even values are unique and
     *  increase with every publication, so a reader detects both
     *  "mid-write" and "overwritten under me". */
    std::atomic<uint64_t> seq{0};
    uint32_t len = 0;
    char text[kSlotTextBytes];
};

struct Ring
{
    size_t capacity = 0;
    Slot *slots = nullptr;
    std::atomic<uint64_t> head{0};      ///< entries ever claimed
    std::atomic<uint64_t> truncated{0}; ///< entries cut to the slot size
};

/** Leaked on purpose: fatal-signal handlers may outlive static dtors. */
Ring g_ring;

std::atomic<bool> g_handlersInstalled{false};

/** Dump target path; fixed storage so the handler never allocates. */
char g_dumpPath[4096] = {0};

/** Re-entrancy latch: a crash inside dump() must not recurse forever. */
std::atomic<bool> g_dumping{false};

/**
 * Append @p raw to @p out (capacity @p cap, current length @p len),
 * JSON-escaped, stopping when full.  Returns false when truncated.
 */
bool
appendEscaped(char *out, size_t cap, size_t &len, const char *raw,
              size_t rawLen)
{
    size_t i = 0;
    while (i < rawLen) {
        // Clean run first: the common case is a whole value with
        // nothing to escape (interned category/name strings, k=v
        // detail tails), which is one scan + one memcpy instead of a
        // per-byte append -- this sits on the every-span record path.
        size_t run = i;
        while (run < rawLen) {
            unsigned char c = static_cast<unsigned char>(raw[run]);
            if (c < 0x20 || c == '"' || c == '\\')
                break;
            ++run;
        }
        if (run > i) {
            size_t n = run - i;
            if (len + n > cap) {
                n = cap - len;
                std::memcpy(out + len, raw + i, n);
                len += n;
                return false;
            }
            std::memcpy(out + len, raw + i, n);
            len += n;
            i = run;
            continue;
        }
        char c = raw[i];
        const char *rep = " "; // other control bytes: keep the JSON valid
        size_t repLen = 1;
        switch (c) {
          case '\\': rep = "\\\\"; repLen = 2; break;
          case '"': rep = "\\\""; repLen = 2; break;
          case '\n': rep = "\\n"; repLen = 2; break;
          case '\t': rep = "\\t"; repLen = 2; break;
          case '\r': rep = "\\r"; repLen = 2; break;
          default: break;
        }
        if (len + repLen > cap)
            return false;
        std::memcpy(out + len, rep, repLen);
        len += repLen;
        ++i;
    }
    return true;
}

bool
appendRaw(char *out, size_t cap, size_t &len, const char *raw)
{
    size_t rawLen = std::strlen(raw);
    if (len + rawLen > cap)
        return false;
    std::memcpy(out + len, raw, rawLen);
    len += rawLen;
    return true;
}

/** Decimal u64 rendering without stdio (shared with the signal path). */
size_t
fmtU64(char *out, uint64_t v)
{
    char rev[20];
    size_t n = 0;
    do {
        rev[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (size_t i = 0; i < n; ++i)
        out[i] = rev[n - 1 - i];
    return n;
}

bool
appendU64(char *out, size_t cap, size_t &len, uint64_t v)
{
    char digits[20];
    size_t n = fmtU64(digits, v);
    if (len + n > cap)
        return false;
    std::memcpy(out + len, digits, n);
    len += n;
    return true;
}

Counter &
overwrittenCounter()
{
    static Counter &c = Registry::global().counter(
        "obs_flight_dropped_total",
        "Flight-recorder entries overwritten by ring wrap");
    return c;
}

/** Publish the formatted entry @p text (length @p len) into the ring. */
void
publish(const char *text, size_t len, bool truncated)
{
    if (!enabled() || g_ring.slots == nullptr)
        return;
    uint64_t idx = g_ring.head.fetch_add(1, std::memory_order_relaxed);
    if (idx >= g_ring.capacity)
        overwrittenCounter().inc();
    if (truncated)
        g_ring.truncated.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = g_ring.slots[idx % g_ring.capacity];
    // Odd seq marks the write window; the final store is keyed to idx
    // so every publication of this slot carries a distinct even value.
    slot.seq.store(2 * idx + 1, std::memory_order_release);
    slot.len = static_cast<uint32_t>(len);
    std::memcpy(slot.text, text, len);
    slot.seq.store(2 * idx + 2, std::memory_order_release);
}

/**
 * Format the common entry prefix: {"t":<ns>,"k":"<kind>".  Returns the
 * running length.
 */
size_t
beginEntry(char *buf, size_t cap, const char *kind)
{
    size_t len = 0;
    appendRaw(buf, cap, len, "{\"t\":");
    appendU64(buf, cap, len, nowNanos());
    appendRaw(buf, cap, len, ",\"k\":\"");
    appendRaw(buf, cap, len, kind);
    appendRaw(buf, cap, len, "\"");
    return len;
}

/** Close the entry with '}', reserving space for it up front. */
bool
endEntry(char *buf, size_t cap, size_t &len)
{
    return appendRaw(buf, cap, len, "}");
}

void
record2(const char *kind, const char *f1, const char *v1, const char *f2,
        const char *v2, const std::string &detail, bool withDur,
        TimeNanos dur)
{
    // One byte of slack for the closing brace keeps truncated entries
    // valid JSON: we only ever cut the detail string.
    char buf[kSlotTextBytes];
    const size_t cap = sizeof(buf) - 1;
    size_t len = beginEntry(buf, cap, kind);
    bool fit = true;
    if (f1 != nullptr) {
        appendRaw(buf, cap, len, ",\"");
        appendRaw(buf, cap, len, f1);
        appendRaw(buf, cap, len, "\":\"");
        fit &= appendEscaped(buf, cap, len, v1, std::strlen(v1));
        appendRaw(buf, cap, len, "\"");
    }
    if (f2 != nullptr) {
        appendRaw(buf, cap, len, ",\"");
        appendRaw(buf, cap, len, f2);
        appendRaw(buf, cap, len, "\":\"");
        fit &= appendEscaped(buf, cap, len, v2, std::strlen(v2));
        appendRaw(buf, cap, len, "\"");
    }
    if (withDur) {
        appendRaw(buf, cap, len, ",\"dur_ns\":");
        appendU64(buf, cap, len, dur);
    }
    if (!detail.empty()) {
        // Leave room to close the string even when the detail truncates.
        if (appendRaw(buf, cap - 1, len, ",\"detail\":\"")) {
            fit &= appendEscaped(buf, cap - 1, len, detail.data(),
                                 detail.size());
            // A trailing lone backslash from a cut escape would break
            // the JSON; drop it.
            if (len > 0 && buf[len - 1] == '\\')
                --len;
            appendRaw(buf, cap, len, "\"");
        } else {
            fit = false;
        }
    }
    endEntry(buf, sizeof(buf), len);
    publish(buf, len, !fit);
}

/** The logging tap: every warn/inform/panic/fatal line lands here. */
void
logTap(const char *level, const char *text, size_t len)
{
    recordLog(level, text, len);
}

extern "C" void
flightSignalHandler(int sig)
{
    bool expected = false;
    if (g_dumping.compare_exchange_strong(expected, true)) {
        dumpToConfigured();
        g_dumping.store(false);
    }
    if (sig == SIGQUIT)
        return; // operator probe: keep running
    // Fatal signal: hand back to the default disposition so the crash
    // still produces its core/exit status.
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

/** write(2) everything, riding out EINTR (signal-safe). */
void
writeAllFd(int fd, const char *data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        off += static_cast<size_t>(w);
    }
}

void
writeU64Fd(int fd, uint64_t v)
{
    char digits[20];
    writeAllFd(fd, digits, fmtU64(digits, v));
}

void
writeStrFd(int fd, const char *s)
{
    writeAllFd(fd, s, std::strlen(s));
}

} // namespace

namespace {

/** Set by configure()/disable(): an explicit on/off decision exists. */
std::atomic<bool> g_explicit{false};

} // namespace

void
configure(size_t entries)
{
    g_explicit.store(true, std::memory_order_relaxed);
    if (g_ring.slots == nullptr) {
        if (entries < 16)
            entries = 16;
        if (entries > (size_t{1} << 16))
            entries = size_t{1} << 16;
        g_ring.capacity = entries;
        g_ring.slots = new Slot[entries]; // leaked: see header
    }
    detail::flightOn.store(true, std::memory_order_relaxed);
    setLogTap(&logTap);
}

void
disable()
{
    g_explicit.store(true, std::memory_order_relaxed);
    detail::flightOn.store(false, std::memory_order_relaxed);
}

bool
explicitlyConfigured()
{
    return g_explicit.load(std::memory_order_relaxed);
}

bool
configureFromSpec(const std::string &value, bool defaultOn)
{
    if (value.empty()) {
        if (defaultOn)
            configure();
        return defaultOn;
    }
    if (value == "0" || value == "off" || value == "OFF") {
        disable();
        return false;
    }
    if (value.find('/') != std::string::npos) {
        configure();
        setDumpPath(value);
        return true;
    }
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end != value.c_str() && *end == '\0' && n > 1) {
        configure(static_cast<size_t>(n));
        return true;
    }
    configure(); // "1", "on", anything else affirmative
    return true;
}

bool
configureFromEnv(bool defaultOn)
{
    const char *env = std::getenv("RASENGAN_FLIGHT");
    return configureFromSpec(env ? env : "", defaultOn);
}

void
setDumpPath(const std::string &path)
{
    size_t n = path.size();
    if (n >= sizeof(g_dumpPath))
        n = sizeof(g_dumpPath) - 1;
    std::memcpy(g_dumpPath, path.data(), n);
    g_dumpPath[n] = '\0';
}

std::string
dumpPath()
{
    return g_dumpPath;
}

void
installSignalHandlers()
{
    bool expected = false;
    if (!g_handlersInstalled.compare_exchange_strong(expected, true))
        return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &flightSignalHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGQUIT, &sa, nullptr);
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        ::sigaction(sig, &sa, nullptr);
}

void
recordSpan(const char *category, const char *name,
           const std::string &detail, TimeNanos durationNanos)
{
    if (!enabled())
        return;
    record2("span", "cat", category, "name", name, detail, true,
            durationNanos);
}

void
recordInstant(const char *category, const char *name,
              const std::string &detail)
{
    if (!enabled())
        return;
    record2("instant", "cat", category, "name", name, detail, false, 0);
}

void
recordLog(const char *level, const char *text, size_t len)
{
    if (!enabled())
        return;
    record2("log", "level", level, nullptr, nullptr,
            std::string(text, len), false, 0);
}

void
note(const char *kind, const std::string &text)
{
    if (!enabled())
        return;
    record2(kind, nullptr, nullptr, nullptr, nullptr, text, false, 0);
}

size_t
dump(int fd)
{
    if (g_ring.slots == nullptr) {
        writeStrFd(fd, "{\"flight\":{\"recorded\":0},\"events\":[]}\n");
        return 0;
    }
    uint64_t head = g_ring.head.load(std::memory_order_acquire);
    uint64_t first = head > g_ring.capacity ? head - g_ring.capacity : 0;

    writeStrFd(fd, "{\"flight\":{\"recorded\":");
    writeU64Fd(fd, head);
    writeStrFd(fd, ",\"dropped\":");
    writeU64Fd(fd, first);
    writeStrFd(fd, ",\"truncated\":");
    writeU64Fd(fd, g_ring.truncated.load(std::memory_order_relaxed));
    writeStrFd(fd, ",\"capacity\":");
    writeU64Fd(fd, g_ring.capacity);
    writeStrFd(fd, "},\"events\":[");

    size_t written = 0;
    for (uint64_t idx = first; idx < head; ++idx) {
        Slot &slot = g_ring.slots[idx % g_ring.capacity];
        uint64_t before = slot.seq.load(std::memory_order_acquire);
        if (before != 2 * idx + 2)
            continue; // mid-write or already overwritten: skip
        char copy[kSlotTextBytes];
        uint32_t len = slot.len;
        if (len > sizeof(copy))
            continue;
        std::memcpy(copy, slot.text, len);
        if (slot.seq.load(std::memory_order_acquire) != before)
            continue; // overwritten while copying
        writeStrFd(fd, written == 0 ? "\n" : ",\n");
        writeAllFd(fd, copy, len);
        ++written;
    }
    writeStrFd(fd, "\n]}\n");
    return written;
}

size_t
dumpToConfigured()
{
    int fd = 2;
    bool opened = false;
    if (g_dumpPath[0] != '\0') {
        int f = ::open(g_dumpPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (f >= 0) {
            fd = f;
            opened = true;
        }
    }
    size_t n = dump(fd);
    if (opened)
        ::close(fd);
    return n;
}

std::string
renderJson()
{
    // Same layout as dump(), but built in memory (the daemon serves it
    // over HTTP; no signal-safety needed here).
    std::string out = "{\"flight\":{\"recorded\":";
    uint64_t head =
        g_ring.slots ? g_ring.head.load(std::memory_order_acquire) : 0;
    uint64_t first =
        (g_ring.slots && head > g_ring.capacity) ? head - g_ring.capacity
                                                 : 0;
    out += std::to_string(head);
    out += ",\"dropped\":" + std::to_string(first);
    out += ",\"truncated\":" +
           std::to_string(
               g_ring.slots
                   ? g_ring.truncated.load(std::memory_order_relaxed)
                   : 0);
    out += ",\"capacity\":" + std::to_string(g_ring.capacity);
    out += "},\"events\":[";
    size_t written = 0;
    for (uint64_t idx = first; idx < head; ++idx) {
        Slot &slot = g_ring.slots[idx % g_ring.capacity];
        uint64_t before = slot.seq.load(std::memory_order_acquire);
        if (before != 2 * idx + 2)
            continue;
        char copy[kSlotTextBytes];
        uint32_t len = slot.len;
        if (len > sizeof(copy))
            continue;
        std::memcpy(copy, slot.text, len);
        if (slot.seq.load(std::memory_order_acquire) != before)
            continue;
        out += written == 0 ? "\n" : ",\n";
        out.append(copy, len);
        ++written;
    }
    out += "\n]}\n";
    return out;
}

uint64_t
droppedCount()
{
    if (g_ring.slots == nullptr)
        return 0;
    uint64_t head = g_ring.head.load(std::memory_order_relaxed);
    return head > g_ring.capacity ? head - g_ring.capacity : 0;
}

uint64_t
truncatedCount()
{
    return g_ring.slots == nullptr
               ? 0
               : g_ring.truncated.load(std::memory_order_relaxed);
}

uint64_t
recordedCount()
{
    return g_ring.slots == nullptr
               ? 0
               : g_ring.head.load(std::memory_order_relaxed);
}

void
resetForTest()
{
    if (g_ring.slots == nullptr)
        return;
    g_ring.head.store(0, std::memory_order_relaxed);
    g_ring.truncated.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < g_ring.capacity; ++i)
        g_ring.slots[i].seq.store(0, std::memory_order_relaxed);
}

} // namespace rasengan::obs::flight
