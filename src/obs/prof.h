/**
 * @file
 * Kernel profiling hook.
 *
 * RASENGAN_PROF(category, name) drops an RAII span into the enclosing
 * scope.  When tracing is disabled the entire cost is the span
 * constructor's gate: one relaxed atomic load and a branch -- cheap
 * enough to leave in release-built gate kernels (bench/bench_obs
 * measures the disabled overhead and CI gates it at 1%).
 *
 * Use the macro (not a raw Span) at kernel call sites so the
 * instrumentation is greppable and can be compiled out wholesale with
 * -DRASENGAN_DISABLE_PROF if a target ever needs literally zero cost.
 *
 * Both arguments must be string literals; dynamic annotations belong in
 * an explicit obs::Span with a detail string at pipeline level, not in
 * kernels.
 */

#ifndef RASENGAN_OBS_PROF_H
#define RASENGAN_OBS_PROF_H

#include "obs/trace.h"

#ifdef RASENGAN_DISABLE_PROF

#define RASENGAN_PROF(category, name)                                        \
    do {                                                                     \
    } while (false)

#else

#define RASENGAN_PROF_CONCAT_(a, b) a##b
#define RASENGAN_PROF_CONCAT(a, b) RASENGAN_PROF_CONCAT_(a, b)

#define RASENGAN_PROF(category, name)                                        \
    ::rasengan::obs::Span RASENGAN_PROF_CONCAT(rasengan_prof_span_,          \
                                               __LINE__)(category, name)

#endif // RASENGAN_DISABLE_PROF

#endif // RASENGAN_OBS_PROF_H
