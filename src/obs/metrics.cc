#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace rasengan::obs {

namespace {

/** Shortest round-trip double rendering (matches the serve JSONL style). */
std::string
fmtDouble(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    // Integral values read better as integers than as the shortest
    // round-tripping %g form (50 -> "50", not "5e+01").
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    for (int prec = 1; prec <= 16; ++prec) {
        char shorter[64];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == v)
            return shorter;
    }
    return buf;
}

/** Rendered label set: {a="x",b="y"} or "" when empty. */
std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + promEscapeLabelValue(v) + "\"";
    }
    out += "}";
    return out;
}

/** Label set with extra pairs appended (histogram `le` buckets). */
std::string
renderLabelsWith(const Labels &labels, const std::string &key,
                 const std::string &value)
{
    Labels merged = labels;
    merged[key] = value;
    return renderLabels(merged);
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

int
Histogram::bucketFor(double v)
{
    if (!(v > 0.0))
        return 0;
    int exp = 0;
    const double m = std::frexp(v, &exp);
    // frexp: v = m * 2^exp with m in [0.5, 1).  The smallest
    // power-of-two upper bound with le (inclusive) semantics is 2^exp,
    // except when v is itself a power of two (m == 0.5): then
    // v == 2^(exp-1) and belongs in that tighter bucket.
    if (m == 0.5)
        --exp;
    int k = exp - kMinExp;
    if (k < 0)
        return 0;
    if (k > kBuckets - 1)
        return kBuckets - 1;
    return k;
}

void
Histogram::observe(double v)
{
    buckets_[static_cast<size_t>(bucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.add(v);
}

double
Histogram::quantileUpperBound(double q) const
{
    uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (int k = 0; k < kBuckets; ++k) {
        seen += bucketCount(k);
        if (seen >= rank) {
            return k == kBuckets - 1
                       ? std::numeric_limits<double>::infinity()
                       : bucketUpperBound(k);
        }
    }
    return std::numeric_limits<double>::infinity();
}

void
Histogram::importSnapshot(const std::array<uint64_t, kBuckets> &counts,
                          double sum, uint64_t count)
{
    for (int k = 0; k < kBuckets; ++k)
        buckets_[static_cast<size_t>(k)].store(
            counts[static_cast<size_t>(k)], std::memory_order_relaxed);
    sum_.set(sum);
    count_.store(count, std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.reset();
}

Registry &
Registry::global()
{
    static Registry *registry = new Registry(); // never destroyed: call
    return *registry; // sites cache references past static teardown
}

Registry::Instrument &
Registry::findOrCreate(Kind kind, const std::string &name,
                       const std::string &help, Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    InstrumentKey key{name, renderLabels(labels)};
    auto it = instruments_.find(key);
    if (it != instruments_.end()) {
        // A (name, labels) pair is bound to one kind for the process
        // lifetime.  Dereferencing the wrong member would be a null
        // unique_ptr; make the programming error loud instead.
        panic_if(it->second->kind != kind,
                 "metric \"{}\" re-registered with a different kind",
                 name);
        return *it->second;
    }
    auto inst = std::make_unique<Instrument>();
    inst->kind = kind;
    inst->name = name;
    inst->help = help;
    inst->labels = std::move(labels);
    switch (kind) {
      case Kind::Counter:
        inst->counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        inst->gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        inst->histogram = std::make_unique<Histogram>();
        break;
    }
    auto [pos, inserted] = instruments_.emplace(key, std::move(inst));
    (void)inserted;
    return *pos->second;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  Labels labels)
{
    return *findOrCreate(Kind::Counter, name, help, std::move(labels))
                .counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                Labels labels)
{
    return *findOrCreate(Kind::Gauge, name, help, std::move(labels)).gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    Labels labels)
{
    return *findOrCreate(Kind::Histogram, name, help, std::move(labels))
                .histogram;
}

namespace {

/** The derived quantile exports share one suffix/q table. */
constexpr std::pair<const char *, double> kQuantileExports[] = {
    {"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};

} // namespace

std::string
Registry::promText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    // Derived per-histogram quantile gauges are separate metric
    // families (name_p50, ...), so they collect here and render after
    // the main pass -- one HELP/TYPE block per family, label variants
    // grouped, families in sorted order.
    std::map<std::string, std::vector<std::string>> derived;
    const std::string *lastAnnotated = nullptr;
    for (const auto &[key, inst] : instruments_) {
        // One HELP/TYPE block per metric family (label variants share it).
        if (lastAnnotated == nullptr || *lastAnnotated != inst->name) {
            if (!inst->help.empty())
                os << "# HELP " << inst->name << " "
                   << promEscapeHelp(inst->help) << "\n";
            os << "# TYPE " << inst->name << " ";
            switch (inst->kind) {
              case Kind::Counter: os << "counter"; break;
              case Kind::Gauge: os << "gauge"; break;
              case Kind::Histogram: os << "histogram"; break;
            }
            os << "\n";
            lastAnnotated = &inst->name;
        }
        const std::string labels = renderLabels(inst->labels);
        switch (inst->kind) {
          case Kind::Counter:
            os << inst->name << labels << " " << inst->counter->value()
               << "\n";
            break;
          case Kind::Gauge:
            os << inst->name << labels << " "
               << fmtDouble(inst->gauge->value()) << "\n";
            break;
          case Kind::Histogram: {
            const Histogram &h = *inst->histogram;
            uint64_t cumulative = 0;
            for (int k = 0; k < Histogram::kBuckets; ++k) {
                uint64_t in_bucket = h.bucketCount(k);
                cumulative += in_bucket;
                // Keep the exposition compact: only edges that separate
                // observations appear, plus the mandatory +Inf bucket.
                if (in_bucket == 0 && k != Histogram::kBuckets - 1)
                    continue;
                std::string le =
                    k == Histogram::kBuckets - 1
                        ? "+Inf"
                        : fmtDouble(Histogram::bucketUpperBound(k));
                os << inst->name << "_bucket"
                   << renderLabelsWith(inst->labels, "le", le) << " "
                   << cumulative << "\n";
            }
            os << inst->name << "_sum" << labels << " "
               << fmtDouble(h.sum()) << "\n";
            os << inst->name << "_count" << labels << " " << h.count()
               << "\n";
            for (const auto &[suffix, q] : kQuantileExports)
                derived[inst->name + suffix].push_back(
                    inst->name + suffix + labels + " " +
                    fmtDouble(h.quantileUpperBound(q)) + "\n");
            break;
          }
        }
    }
    for (const auto &[family, lines] : derived) {
        os << "# HELP " << family
           << " Derived quantile upper bound (log-2 bucket edge)\n";
        os << "# TYPE " << family << " gauge\n";
        for (const std::string &line : lines)
            os << line;
    }
    return os.str();
}

std::string
Registry::jsonText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{";
    bool first = true;
    auto emit = [&](const std::string &key, const std::string &value) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(key) << "\":" << value;
    };
    for (const auto &[key, inst] : instruments_) {
        const std::string series = inst->name + renderLabels(inst->labels);
        switch (inst->kind) {
          case Kind::Counter:
            emit(series, std::to_string(inst->counter->value()));
            break;
          case Kind::Gauge: {
            double v = inst->gauge->value();
            std::string rendered = fmtDouble(v);
            if (!std::isfinite(v))
                rendered = "\"" + rendered + "\"";
            emit(series, rendered);
            break;
          }
          case Kind::Histogram: {
            const Histogram &h = *inst->histogram;
            const std::string labels = renderLabels(inst->labels);
            // Canonical suffix-before-labels keys so importFlat can
            // parse them back (and reconstruct the histogram).  Key
            // order inside one family stays sorted: _bucket < _count
            // < _p50 < _p95 < _p99 < _sum.
            uint64_t cumulative = 0;
            for (int k = 0; k < Histogram::kBuckets; ++k) {
                uint64_t in_bucket = h.bucketCount(k);
                cumulative += in_bucket;
                if (in_bucket == 0 && k != Histogram::kBuckets - 1)
                    continue;
                std::string le =
                    k == Histogram::kBuckets - 1
                        ? "+Inf"
                        : fmtDouble(Histogram::bucketUpperBound(k));
                emit(inst->name + "_bucket" +
                         renderLabelsWith(inst->labels, "le", le),
                     std::to_string(cumulative));
            }
            emit(inst->name + "_count" + labels,
                 std::to_string(h.count()));
            for (const auto &[suffix, q] : kQuantileExports) {
                double v = h.quantileUpperBound(q);
                std::string rendered = fmtDouble(v);
                if (!std::isfinite(v))
                    rendered = "\"" + rendered + "\"";
                emit(inst->name + suffix + labels, rendered);
            }
            emit(inst->name + "_sum" + labels, fmtDouble(h.sum()));
            break;
          }
        }
    }
    os << "}\n";
    return os.str();
}

void
Registry::resetAllForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[key, inst] : instruments_) {
        switch (inst->kind) {
          case Kind::Counter: inst->counter->reset(); break;
          case Kind::Gauge: inst->gauge->reset(); break;
          case Kind::Histogram: inst->histogram->reset(); break;
        }
    }
}

namespace {

/** `le` rendering -> bucket index, built once from the fixed edges. */
bool
bucketIndexForLe(const std::string &le, int *k)
{
    static const std::map<std::string, int> *index = [] {
        auto *m = new std::map<std::string, int>();
        for (int b = 0; b < Histogram::kBuckets - 1; ++b)
            (*m)[fmtDouble(Histogram::bucketUpperBound(b))] = b;
        (*m)["+Inf"] = Histogram::kBuckets - 1;
        return m;
    }();
    auto it = index->find(le);
    if (it == index->end())
        return false;
    *k = it->second;
    return true;
}

const char *kSumSuffix = "_sum";
const char *kCountSuffix = "_count";
const char *kBucketSuffix = "_bucket";

bool
stripSuffix(const std::string &name, const char *suffix,
            std::string *base)
{
    size_t n = std::char_traits<char>::length(suffix);
    if (name.size() <= n ||
        name.compare(name.size() - n, n, suffix) != 0)
        return false;
    *base = name.substr(0, name.size() - n);
    return true;
}

} // namespace

size_t
Registry::importFlat(const std::map<std::string, double> &values,
                     const std::string &prefix, const Labels &extra,
                     const std::string &help)
{
    size_t imported = 0;
    size_t malformed = 0, collisions = 0;

    // Pass 1: parse every key and collect histogram families -- a
    // `base_bucket{le="..."}` series declares one.  The family's
    // _count/_sum series (same base, same labels minus `le`) are
    // claimed by the reconstruction so they don't double-import as
    // gauges.
    struct Entry
    {
        std::string name;
        Labels labels;
        double value;
        bool consumed = false;
    };
    std::vector<Entry> entries;
    entries.reserve(values.size());
    struct HistAcc
    {
        Labels labels; ///< without `le`
        std::map<int, uint64_t> cumulative;
        double sum = 0.0;
        bool haveCount = false;
        uint64_t count = 0;
        size_t series = 0; ///< consumed source series
        bool broken = false;
    };
    std::map<std::pair<std::string, std::string>, HistAcc> hists;
    for (const auto &[key, value] : values) {
        Entry e;
        e.value = value;
        if (!parseInstrumentKey(key, &e.name, &e.labels)) {
            ++malformed;
            continue;
        }
        std::string base;
        auto leIt = e.labels.find("le");
        if (leIt != e.labels.end() &&
            stripSuffix(e.name, kBucketSuffix, &base)) {
            int k = 0;
            if (!bucketIndexForLe(leIt->second, &k) || value < 0 ||
                value != std::floor(value)) {
                ++malformed;
                continue;
            }
            Labels rest = e.labels;
            rest.erase("le");
            HistAcc &acc = hists[{base, renderLabels(rest)}];
            acc.labels = std::move(rest);
            acc.cumulative[k] = static_cast<uint64_t>(value);
            ++acc.series;
            continue;
        }
        entries.push_back(std::move(e));
    }

    // Pass 2: attach _count/_sum to their families; everything left
    // imports through the gauge path unchanged.
    for (Entry &e : entries) {
        std::string base;
        bool isCount = stripSuffix(e.name, kCountSuffix, &base);
        if (!isCount && !stripSuffix(e.name, kSumSuffix, &base))
            continue;
        auto it = hists.find({base, renderLabels(e.labels)});
        if (it == hists.end())
            continue;
        if (isCount) {
            it->second.haveCount = true;
            it->second.count = static_cast<uint64_t>(e.value);
        } else {
            it->second.sum = e.value;
        }
        ++it->second.series;
        e.consumed = true;
    }

    for (auto &[key, acc] : hists) {
        // De-accumulate the cumulative edge counts; a non-monotone
        // series means the snapshot is corrupt, so the whole family is
        // dropped rather than half-imported.
        std::array<uint64_t, Histogram::kBuckets> counts{};
        uint64_t prev = 0;
        for (const auto &[k, cum] : acc.cumulative) {
            if (cum < prev) {
                acc.broken = true;
                break;
            }
            counts[static_cast<size_t>(k)] = cum - prev;
            prev = cum;
        }
        if (acc.broken) {
            malformed += acc.series;
            continue;
        }
        Labels labels = acc.labels;
        for (const auto &[k, v] : extra)
            labels[k] = v;
        Histogram *h =
            tryHistogram(prefix + key.first, help, std::move(labels));
        if (h == nullptr) {
            collisions += acc.series;
            continue;
        }
        h->importSnapshot(counts, acc.sum,
                          acc.haveCount ? acc.count : prev);
        imported += acc.series;
    }

    for (Entry &e : entries) {
        if (e.consumed)
            continue;
        Labels labels = std::move(e.labels);
        for (const auto &[k, v] : extra)
            labels[k] = v;
        Gauge *g = tryGauge(prefix + e.name, help, std::move(labels));
        if (g == nullptr) {
            // The series name is already registered locally as a
            // counter or histogram; snapshots come from another
            // process and must not be able to crash (or retype) this
            // registry, so the series is dropped and counted.
            ++collisions;
            continue;
        }
        g->set(e.value);
        ++imported;
    }
    if (malformed + collisions > 0) {
        counter("cluster_import_skipped_total",
                "Imported metric series dropped (malformed key or kind "
                "collision with a local instrument)")
            .inc(malformed + collisions);
        warn(LogTail()
                 .kv("prefix", prefix)
                 .kv("malformed", malformed)
                 .kv("kind_collisions", collisions)
                 .kv("imported", imported),
             "obs: dropped metric series on snapshot import");
    }
    return imported;
}

Gauge *
Registry::tryGauge(const std::string &name, const std::string &help,
                   Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    InstrumentKey key{name, renderLabels(labels)};
    auto it = instruments_.find(key);
    if (it != instruments_.end())
        return it->second->kind == Kind::Gauge ? it->second->gauge.get()
                                               : nullptr;
    auto inst = std::make_unique<Instrument>();
    inst->kind = Kind::Gauge;
    inst->name = name;
    inst->help = help;
    inst->labels = std::move(labels);
    inst->gauge = std::make_unique<Gauge>();
    auto [pos, inserted] = instruments_.emplace(key, std::move(inst));
    (void)inserted;
    return pos->second->gauge.get();
}

Histogram *
Registry::tryHistogram(const std::string &name, const std::string &help,
                       Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    InstrumentKey key{name, renderLabels(labels)};
    auto it = instruments_.find(key);
    if (it != instruments_.end())
        return it->second->kind == Kind::Histogram
                   ? it->second->histogram.get()
                   : nullptr;
    auto inst = std::make_unique<Instrument>();
    inst->kind = Kind::Histogram;
    inst->name = name;
    inst->help = help;
    inst->labels = std::move(labels);
    inst->histogram = std::make_unique<Histogram>();
    auto [pos, inserted] = instruments_.emplace(key, std::move(inst));
    (void)inserted;
    return pos->second->histogram.get();
}

bool
parseInstrumentKey(const std::string &key, std::string *name,
                   Labels *labels)
{
    size_t brace = key.find('{');
    if (brace == std::string::npos) {
        if (key.empty())
            return false;
        *name = key;
        labels->clear();
        return true;
    }
    if (brace == 0 || key.back() != '}')
        return false;
    Labels parsed;
    size_t pos = brace + 1;
    const size_t end = key.size() - 1;
    while (pos < end) {
        size_t eq = key.find('=', pos);
        if (eq == std::string::npos || eq >= end ||
            eq + 1 >= key.size() || key[eq + 1] != '"')
            return false;
        std::string labelName = key.substr(pos, eq - pos);
        if (labelName.empty())
            return false;
        // Un-escape the promEscapeLabelValue rendering.
        std::string value;
        size_t i = eq + 2;
        bool closed = false;
        for (; i < end; ++i) {
            char c = key[i];
            if (c == '\\') {
                if (i + 1 >= end)
                    return false;
                char e = key[++i];
                if (e == 'n')
                    value.push_back('\n');
                else if (e == '\\' || e == '"')
                    value.push_back(e);
                else
                    return false;
            } else if (c == '"') {
                closed = true;
                ++i;
                break;
            } else {
                value.push_back(c);
            }
        }
        if (!closed)
            return false;
        parsed[labelName] = std::move(value);
        if (i < end) {
            if (key[i] != ',')
                return false;
            ++i;
        }
        pos = i;
    }
    *name = key.substr(0, brace);
    *labels = std::move(parsed);
    return true;
}

std::string
promEscapeLabelValue(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
promEscapeHelp(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

} // namespace rasengan::obs
