#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace rasengan::obs {

namespace {

/** Shortest round-trip double rendering (matches the serve JSONL style). */
std::string
fmtDouble(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    // Integral values read better as integers than as the shortest
    // round-tripping %g form (50 -> "50", not "5e+01").
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    for (int prec = 1; prec <= 16; ++prec) {
        char shorter[64];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == v)
            return shorter;
    }
    return buf;
}

/** Rendered label set: {a="x",b="y"} or "" when empty. */
std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + promEscapeLabelValue(v) + "\"";
    }
    out += "}";
    return out;
}

/** Label set with extra pairs appended (histogram `le` buckets). */
std::string
renderLabelsWith(const Labels &labels, const std::string &key,
                 const std::string &value)
{
    Labels merged = labels;
    merged[key] = value;
    return renderLabels(merged);
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

int
Histogram::bucketFor(double v)
{
    if (!(v > 0.0))
        return 0;
    int exp = 0;
    const double m = std::frexp(v, &exp);
    // frexp: v = m * 2^exp with m in [0.5, 1).  The smallest
    // power-of-two upper bound with le (inclusive) semantics is 2^exp,
    // except when v is itself a power of two (m == 0.5): then
    // v == 2^(exp-1) and belongs in that tighter bucket.
    if (m == 0.5)
        --exp;
    int k = exp - kMinExp;
    if (k < 0)
        return 0;
    if (k > kBuckets - 1)
        return kBuckets - 1;
    return k;
}

void
Histogram::observe(double v)
{
    buckets_[static_cast<size_t>(bucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.add(v);
}

double
Histogram::quantileUpperBound(double q) const
{
    uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (int k = 0; k < kBuckets; ++k) {
        seen += bucketCount(k);
        if (seen >= rank) {
            return k == kBuckets - 1
                       ? std::numeric_limits<double>::infinity()
                       : bucketUpperBound(k);
        }
    }
    return std::numeric_limits<double>::infinity();
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.reset();
}

Registry &
Registry::global()
{
    static Registry *registry = new Registry(); // never destroyed: call
    return *registry; // sites cache references past static teardown
}

Registry::Instrument &
Registry::findOrCreate(Kind kind, const std::string &name,
                       const std::string &help, Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    InstrumentKey key{name, renderLabels(labels)};
    auto it = instruments_.find(key);
    if (it != instruments_.end()) {
        // A (name, labels) pair is bound to one kind for the process
        // lifetime.  Dereferencing the wrong member would be a null
        // unique_ptr; make the programming error loud instead.
        panic_if(it->second->kind != kind,
                 "metric \"{}\" re-registered with a different kind",
                 name);
        return *it->second;
    }
    auto inst = std::make_unique<Instrument>();
    inst->kind = kind;
    inst->name = name;
    inst->help = help;
    inst->labels = std::move(labels);
    switch (kind) {
      case Kind::Counter:
        inst->counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        inst->gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        inst->histogram = std::make_unique<Histogram>();
        break;
    }
    auto [pos, inserted] = instruments_.emplace(key, std::move(inst));
    (void)inserted;
    return *pos->second;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  Labels labels)
{
    return *findOrCreate(Kind::Counter, name, help, std::move(labels))
                .counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                Labels labels)
{
    return *findOrCreate(Kind::Gauge, name, help, std::move(labels)).gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    Labels labels)
{
    return *findOrCreate(Kind::Histogram, name, help, std::move(labels))
                .histogram;
}

std::string
Registry::promText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    const std::string *lastAnnotated = nullptr;
    for (const auto &[key, inst] : instruments_) {
        // One HELP/TYPE block per metric family (label variants share it).
        if (lastAnnotated == nullptr || *lastAnnotated != inst->name) {
            if (!inst->help.empty())
                os << "# HELP " << inst->name << " "
                   << promEscapeHelp(inst->help) << "\n";
            os << "# TYPE " << inst->name << " ";
            switch (inst->kind) {
              case Kind::Counter: os << "counter"; break;
              case Kind::Gauge: os << "gauge"; break;
              case Kind::Histogram: os << "histogram"; break;
            }
            os << "\n";
            lastAnnotated = &inst->name;
        }
        const std::string labels = renderLabels(inst->labels);
        switch (inst->kind) {
          case Kind::Counter:
            os << inst->name << labels << " " << inst->counter->value()
               << "\n";
            break;
          case Kind::Gauge:
            os << inst->name << labels << " "
               << fmtDouble(inst->gauge->value()) << "\n";
            break;
          case Kind::Histogram: {
            const Histogram &h = *inst->histogram;
            uint64_t cumulative = 0;
            for (int k = 0; k < Histogram::kBuckets; ++k) {
                uint64_t in_bucket = h.bucketCount(k);
                cumulative += in_bucket;
                // Keep the exposition compact: only edges that separate
                // observations appear, plus the mandatory +Inf bucket.
                if (in_bucket == 0 && k != Histogram::kBuckets - 1)
                    continue;
                std::string le =
                    k == Histogram::kBuckets - 1
                        ? "+Inf"
                        : fmtDouble(Histogram::bucketUpperBound(k));
                os << inst->name << "_bucket"
                   << renderLabelsWith(inst->labels, "le", le) << " "
                   << cumulative << "\n";
            }
            os << inst->name << "_sum" << labels << " "
               << fmtDouble(h.sum()) << "\n";
            os << inst->name << "_count" << labels << " " << h.count()
               << "\n";
            break;
          }
        }
    }
    return os.str();
}

std::string
Registry::jsonText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{";
    bool first = true;
    auto emit = [&](const std::string &key, const std::string &value) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(key) << "\":" << value;
    };
    for (const auto &[key, inst] : instruments_) {
        const std::string series = inst->name + renderLabels(inst->labels);
        switch (inst->kind) {
          case Kind::Counter:
            emit(series, std::to_string(inst->counter->value()));
            break;
          case Kind::Gauge: {
            double v = inst->gauge->value();
            std::string rendered = fmtDouble(v);
            if (!std::isfinite(v))
                rendered = "\"" + rendered + "\"";
            emit(series, rendered);
            break;
          }
          case Kind::Histogram:
            emit(series + "_count",
                 std::to_string(inst->histogram->count()));
            emit(series + "_sum", fmtDouble(inst->histogram->sum()));
            break;
        }
    }
    os << "}\n";
    return os.str();
}

void
Registry::resetAllForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[key, inst] : instruments_) {
        switch (inst->kind) {
          case Kind::Counter: inst->counter->reset(); break;
          case Kind::Gauge: inst->gauge->reset(); break;
          case Kind::Histogram: inst->histogram->reset(); break;
        }
    }
}

size_t
Registry::importFlat(const std::map<std::string, double> &values,
                     const std::string &prefix, const Labels &extra,
                     const std::string &help)
{
    size_t imported = 0;
    size_t malformed = 0, collisions = 0;
    for (const auto &[key, value] : values) {
        std::string name;
        Labels labels;
        if (!parseInstrumentKey(key, &name, &labels)) {
            ++malformed;
            continue;
        }
        for (const auto &[k, v] : extra)
            labels[k] = v;
        Gauge *g = tryGauge(prefix + name, help, std::move(labels));
        if (g == nullptr) {
            // The series name is already registered locally as a
            // counter or histogram; snapshots come from another
            // process and must not be able to crash (or retype) this
            // registry, so the series is dropped and counted.
            ++collisions;
            continue;
        }
        g->set(value);
        ++imported;
    }
    if (malformed + collisions > 0) {
        counter("cluster_import_skipped_total",
                "Imported metric series dropped (malformed key or kind "
                "collision with a local instrument)")
            .inc(malformed + collisions);
        warn(LogTail()
                 .kv("prefix", prefix)
                 .kv("malformed", malformed)
                 .kv("kind_collisions", collisions)
                 .kv("imported", imported),
             "obs: dropped metric series on snapshot import");
    }
    return imported;
}

Gauge *
Registry::tryGauge(const std::string &name, const std::string &help,
                   Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    InstrumentKey key{name, renderLabels(labels)};
    auto it = instruments_.find(key);
    if (it != instruments_.end())
        return it->second->kind == Kind::Gauge ? it->second->gauge.get()
                                               : nullptr;
    auto inst = std::make_unique<Instrument>();
    inst->kind = Kind::Gauge;
    inst->name = name;
    inst->help = help;
    inst->labels = std::move(labels);
    inst->gauge = std::make_unique<Gauge>();
    auto [pos, inserted] = instruments_.emplace(key, std::move(inst));
    (void)inserted;
    return pos->second->gauge.get();
}

bool
parseInstrumentKey(const std::string &key, std::string *name,
                   Labels *labels)
{
    size_t brace = key.find('{');
    if (brace == std::string::npos) {
        if (key.empty())
            return false;
        *name = key;
        labels->clear();
        return true;
    }
    if (brace == 0 || key.back() != '}')
        return false;
    Labels parsed;
    size_t pos = brace + 1;
    const size_t end = key.size() - 1;
    while (pos < end) {
        size_t eq = key.find('=', pos);
        if (eq == std::string::npos || eq >= end ||
            eq + 1 >= key.size() || key[eq + 1] != '"')
            return false;
        std::string labelName = key.substr(pos, eq - pos);
        if (labelName.empty())
            return false;
        // Un-escape the promEscapeLabelValue rendering.
        std::string value;
        size_t i = eq + 2;
        bool closed = false;
        for (; i < end; ++i) {
            char c = key[i];
            if (c == '\\') {
                if (i + 1 >= end)
                    return false;
                char e = key[++i];
                if (e == 'n')
                    value.push_back('\n');
                else if (e == '\\' || e == '"')
                    value.push_back(e);
                else
                    return false;
            } else if (c == '"') {
                closed = true;
                ++i;
                break;
            } else {
                value.push_back(c);
            }
        }
        if (!closed)
            return false;
        parsed[labelName] = std::move(value);
        if (i < end) {
            if (key[i] != ',')
                return false;
            ++i;
        }
        pos = i;
    }
    *name = key.substr(0, brace);
    *labels = std::move(parsed);
    return true;
}

std::string
promEscapeLabelValue(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
promEscapeHelp(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

} // namespace rasengan::obs
