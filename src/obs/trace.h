/**
 * @file
 * Structured tracing: RAII spans with explicit parent links, recorded
 * into per-thread buffers and exported as Chrome trace-event JSON
 * (loadable in Perfetto / chrome://tracing).
 *
 * Design constraints, in order:
 *
 *  1. Determinism.  The *span tree* (category, name, parentage) of an
 *     instrumented run must be identical at every thread count, so
 *     spans are only opened at call sites whose execution count is
 *     thread-invariant -- never inside parallelFor chunk callbacks
 *     (chunk counts vary with the pool size).  spanTreeSignature()
 *     renders the forest into a canonical, timestamp- and thread-free
 *     string for byte-comparison across thread counts.
 *
 *  2. Cheap when off.  tracingEnabled() is one relaxed atomic load;
 *     every recording call checks it first and a disabled span
 *     constructor does nothing else (see obs/prof.h for the macro whose
 *     disabled cost is exactly that branch).
 *
 *  3. Thread-safe but lock-free on the hot path.  Each thread appends
 *     to its own buffer through a thread_local pointer; the global
 *     registry mutex is touched once per thread lifetime (registration)
 *     and at export.  Buffers survive their threads (shared_ptr), so
 *     pool reconfiguration does not lose events.  Export must run
 *     outside any parallel region -- the deterministic pool's join
 *     provides the happens-before edge that makes the buffers readable.
 *
 * Parentage: spans nest through a thread-local current-span id.  Work
 * dispatched onto pool threads does not inherit the dispatcher's
 * thread-local parent, so cross-thread callers (e.g. the serve
 * scheduler's per-job spans) pass the parent id explicitly.
 *
 * Capacity: each thread buffer holds at most kMaxEventsPerThread
 * events; overflow drops the event and bumps the
 * obs_trace_dropped_total counter rather than growing unboundedly.
 */

#ifndef RASENGAN_OBS_TRACE_H
#define RASENGAN_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/clock.h"

namespace rasengan::obs {

using SpanId = uint64_t;

/** Max events one thread records before dropping (~96 MB worst case). */
constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

namespace detail {

extern std::atomic<bool> tracingOn;

} // namespace detail

/** One relaxed load; the gate every recording call checks first. */
inline bool
tracingEnabled()
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

/**
 * Start recording (idempotent).  Existing buffered events are kept;
 * call clearTrace() first for a fresh trace.
 */
void startTracing();

/** Stop recording; buffered events remain available for export. */
void stopTracing();

/** Drop every buffered event (must be outside any parallel region). */
void clearTrace();

/** Buffered events across all threads (export-time snapshot). */
size_t traceEventCount();

/** Events dropped by full thread buffers since the last clear. */
uint64_t traceDroppedCount();

/** Current thread's innermost open span id (0 = none). */
SpanId currentSpanId();

/**
 * RAII span.  Records a begin event at construction and an end event at
 * destruction when tracing is enabled; otherwise both are a branch.
 * The parent defaults to the calling thread's innermost open span; the
 * explicit-parent constructor links across threads.
 *
 * @p category and @p name must outlive the span (string literals at
 * every call site in this repository); dynamic detail goes into
 * @p detail, which is copied.
 */
class Span
{
  public:
    Span(const char *category, const char *name)
        : Span(category, name, std::string())
    {}

    Span(const char *category, const char *name, std::string detail);

    /** Cross-thread span: explicit parent instead of the thread-local. */
    Span(const char *category, const char *name, std::string detail,
         SpanId explicit_parent);

    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** 0 when tracing was disabled at construction. */
    SpanId id() const { return id_; }

  private:
    void open(const char *category, const char *name, std::string detail,
              SpanId parent);

    SpanId id_ = 0;
    SpanId restoreParent_ = 0;
    bool active_ = false;
};

/** Zero-duration instant event (retry fired, breaker tripped, ...). */
void instantEvent(const char *category, const char *name,
                  std::string detail = std::string());

/**
 * Export every buffered event as Chrome trace-event JSON to @p path.
 * Events are sorted by timestamp; B/E pairs stay balanced per thread.
 * Returns false on I/O failure.  Call outside any parallel region.
 */
bool writeChromeTrace(const std::string &path);

/**
 * Canonical, timestamp- and thread-free rendering of the span forest:
 * every node as "category:name[detail](children...)" with children and
 * roots sorted lexicographically.  Byte-identical across thread counts
 * for deterministically instrumented work; the determinism tests and
 * CI compare these strings.
 */
std::string spanTreeSignature();

} // namespace rasengan::obs

#endif // RASENGAN_OBS_TRACE_H
