/**
 * @file
 * Structured tracing: RAII spans with explicit parent links, recorded
 * into per-thread buffers and exported as Chrome trace-event JSON
 * (loadable in Perfetto / chrome://tracing).
 *
 * Design constraints, in order:
 *
 *  1. Determinism.  The *span tree* (category, name, parentage) of an
 *     instrumented run must be identical at every thread count, so
 *     spans are only opened at call sites whose execution count is
 *     thread-invariant -- never inside parallelFor chunk callbacks
 *     (chunk counts vary with the pool size).  spanTreeSignature()
 *     renders the forest into a canonical, timestamp- and thread-free
 *     string for byte-comparison across thread counts.
 *
 *  2. Cheap when off.  tracingEnabled() is one relaxed atomic load;
 *     every recording call checks it first and a disabled span
 *     constructor does nothing else (see obs/prof.h for the macro whose
 *     disabled cost is exactly that branch).
 *
 *  3. Thread-safe recording, race-free snapshots.  Each thread appends
 *     to its own buffer through a thread_local pointer under that
 *     buffer's (uncontended) mutex; the global registry mutex is
 *     touched once per thread lifetime (registration) and at export.
 *     Buffers survive their threads (shared_ptr), so pool
 *     reconfiguration does not lose events.  snapshotTraceEvents() may
 *     run while *other* threads are still recording (the cluster
 *     coordinator snapshots while in-process test workers run): it
 *     locks each buffer and copies.
 *
 * Parentage: spans nest through a thread-local current-span id.  Work
 * dispatched onto pool threads does not inherit the dispatcher's
 * thread-local parent, so cross-thread callers (e.g. the serve
 * scheduler's per-job spans) pass the parent id explicitly.
 *
 * Distributed traces: a job admitted by the cluster coordinator carries
 * a 128-bit trace id (hex string) end to end.  The worker opens the
 * job's span with a SpanContext whose parent is the *coordinator's*
 * span id and whose remote flag marks the edge as crossing a process
 * boundary.  remoteRootedEvents() / encodeSpanEvents() extract and
 * compact such subtrees for shipping in batch_done;
 * writeMergedChromeTrace() / mergedSpanTreeSignature() stitch shipped
 * forests back under the coordinator's spans, remapping ids per worker
 * (base (i+1)<<32) so independently-minted id spaces cannot collide and
 * rebasing timestamps by the per-worker clock offset measured at hello.
 *
 * Capacity: each thread buffer holds at most kMaxEventsPerThread
 * events; overflow drops the event and bumps the
 * obs_trace_dropped_total counter rather than growing unboundedly.
 */

#ifndef RASENGAN_OBS_TRACE_H
#define RASENGAN_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace rasengan::obs {

using SpanId = uint64_t;

/** Max events one thread records before dropping (~96 MB worst case). */
constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

namespace detail {

extern std::atomic<bool> tracingOn;

} // namespace detail

/** One relaxed load; the gate every recording call checks first. */
inline bool
tracingEnabled()
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

/**
 * Start recording (idempotent).  Existing buffered events are kept;
 * call clearTrace() first for a fresh trace.
 */
void startTracing();

/** Stop recording; buffered events remain available for export. */
void stopTracing();

/** Drop every buffered event (must be outside any parallel region). */
void clearTrace();

/** Buffered events across all threads (export-time snapshot). */
size_t traceEventCount();

/** Events dropped by full thread buffers since the last clear. */
uint64_t traceDroppedCount();

/** Current thread's innermost open span id (0 = none). */
SpanId currentSpanId();

/**
 * One recorded event.  @p category / @p name point at static strings
 * (call-site literals, or strings interned by decodeSpanEvents);
 * @p detail is dynamic and copied.  @p remoteParent marks an edge that
 * crosses a process boundary: the parent id lives in the *coordinator's*
 * id space and must not be remapped when the event is stitched into a
 * merged trace.  @p traceId is the distributed trace this event belongs
 * to ("" for purely local spans).
 */
struct TraceEvent
{
    char phase;          ///< 'B', 'E', or 'i'
    const char *category;///< static string (call-site literal/interned)
    const char *name;    ///< static string (call-site literal/interned)
    std::string detail;  ///< dynamic annotation (may be empty)
    TimeNanos ts;
    SpanId id;
    SpanId parent;
    bool remoteParent = false;
    std::string traceId; ///< 32-hex distributed trace id ("" = local)
};

/** A TraceEvent plus its recording thread and per-thread order. */
struct FlatEvent
{
    TraceEvent event;
    uint32_t tid;
    uint64_t seq; ///< per-thread order, stable tiebreak for equal ts
};

/**
 * Distributed span context for opening a span whose parent lives in
 * another process (or whose trace id must be recorded): the worker
 * opens each job span with the coordinator's span id as parent and
 * remote=true; the single-process scheduler uses remote=false with the
 * batch span as parent.
 */
struct SpanContext
{
    std::string traceId; ///< 32-hex trace id ("" = none)
    SpanId parent = 0;
    bool remote = false;
};

/**
 * RAII span.  Records a begin event at construction and an end event at
 * destruction when tracing is enabled; otherwise both are a branch.
 * The parent defaults to the calling thread's innermost open span; the
 * explicit-parent constructor links across threads.  When the flight
 * recorder is enabled the closed span is also journaled there, even
 * with tracing off.
 *
 * @p category and @p name must outlive the span (string literals at
 * every call site in this repository); dynamic detail goes into
 * @p detail, which is copied.
 */
class Span
{
  public:
    Span(const char *category, const char *name)
        : Span(category, name, std::string())
    {}

    Span(const char *category, const char *name, std::string detail);

    /** Cross-thread span: explicit parent instead of the thread-local. */
    Span(const char *category, const char *name, std::string detail,
         SpanId explicit_parent);

    /** Distributed span: trace id + (possibly remote) explicit parent. */
    Span(const char *category, const char *name, std::string detail,
         const SpanContext &context);

    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** 0 when tracing was disabled at construction. */
    SpanId id() const { return id_; }

  private:
    void open(const char *category, const char *name, std::string detail,
              SpanId parent, bool remoteParent, std::string traceId);

    SpanId id_ = 0;
    SpanId restoreParent_ = 0;
    bool active_ = false;
    // Flight-recorder capture (set when flight::enabled() at open).
    bool flightActive_ = false;
    const char *category_ = nullptr;
    const char *name_ = nullptr;
    std::string flightDetail_;
    TimeNanos start_ = 0;
};

/** Zero-duration instant event (retry fired, breaker tripped, ...). */
void instantEvent(const char *category, const char *name,
                  std::string detail = std::string());

/**
 * Copy every buffered event (registry + per-buffer locks; safe while
 * other threads record).  Order: per-thread recording order within a
 * tid, tids in registration order.
 */
std::vector<FlatEvent> snapshotTraceEvents();

/**
 * The subset of @p events inside subtrees rooted at a remote-parent
 * span whose trace id is in @p traceIds: what a worker ships for the
 * jobs of one cycle.  E events follow their span's membership.  The
 * relative order of the selected events is preserved.
 */
std::vector<FlatEvent>
remoteRootedEvents(const std::vector<FlatEvent> &events,
                   const std::set<std::string> &traceIds);

/**
 * @p events minus every subtree rooted at a remote-parent span: the
 * coordinator's *local* view when workers run in-process (their spans
 * land in the same registry and would otherwise be double-counted once
 * the shipped copies are stitched back in).  In multi-process runs this
 * is the identity.
 */
std::vector<FlatEvent>
withoutRemoteRooted(const std::vector<FlatEvent> &events);

/**
 * Compact @p events into a newline-separated tab-escaped wire form for
 * batch_done.  At most @p maxEvents events are encoded (0 = no cap);
 * the rest are counted into @p dropped (may be nullptr).
 */
std::string encodeSpanEvents(const std::vector<FlatEvent> &events,
                             size_t maxEvents = 0,
                             uint64_t *dropped = nullptr);

/** Parse encodeSpanEvents() output (tolerates ""; skips bad lines). */
std::vector<FlatEvent> decodeSpanEvents(const std::string &encoded);

/** One worker's shipped span forest, stitched under its own pid. */
struct ForeignSpans
{
    std::string process;         ///< Perfetto process name ("worker 0")
    int64_t clockOffsetNanos = 0;///< coordinator clock minus worker clock
    std::vector<FlatEvent> events;
};

/**
 * Export every buffered event as Chrome trace-event JSON to @p path.
 * Events are sorted by timestamp; B/E pairs stay balanced per thread.
 * Returns false on I/O failure.  Call outside any parallel region.
 */
bool writeChromeTrace(const std::string &path);

/**
 * Stitch @p local (remote-rooted subtrees excluded) and each worker's
 * shipped events into ONE Chrome trace-event JSON: local events at
 * pid 1, worker i at pid i+2, process_name metadata for every pid,
 * worker timestamps rebased by the measured clock offset, worker span
 * ids remapped to (i+1)<<32 + id (remote parent ids kept verbatim so
 * cross-process edges land on the coordinator's spans).  Returns false
 * on I/O failure.
 */
bool writeMergedChromeTrace(const std::string &path,
                            const std::vector<FlatEvent> &local,
                            const std::vector<ForeignSpans> &foreign);

/**
 * Canonical, timestamp- and thread-free rendering of the span forest:
 * every node as "category:name[detail](children...)" with children and
 * roots sorted lexicographically.  Byte-identical across thread counts
 * for deterministically instrumented work; the determinism tests and
 * CI compare these strings.
 */
std::string spanTreeSignature();

/** spanTreeSignature over an explicit event set (merged forests). */
std::string spanTreeSignature(const std::vector<FlatEvent> &events);

/**
 * Signature of the stitched cluster forest: local events minus
 * remote-rooted subtrees, plus every worker's shipped events remapped
 * as in writeMergedChromeTrace.  Byte-identical across worker counts
 * and thread counts for a deterministic batch.
 */
std::string
mergedSpanTreeSignature(const std::vector<FlatEvent> &local,
                        const std::vector<ForeignSpans> &foreign);

} // namespace rasengan::obs

#endif // RASENGAN_OBS_TRACE_H
