/**
 * @file
 * Workload fingerprinting for profile-guided adaptive execution.
 *
 * A WorkloadFingerprint captures the PRE-RUN features that decide which
 * hot path a job exercises: problem size (qubit/variable count,
 * constraint count), solver configuration (algorithm, execution
 * backend, segment shape, iteration/shot budget), and any
 * result-AFFECTING knob that deviates from its default (the prune
 * threshold) -- the last so tuned and untuned traffic never pool their
 * measurements.  fingerprintBucket() renders the fingerprint into a
 * coarse, deterministic bucket string (log-2 size buckets) that keys
 * the persisted cost model: jobs in one bucket are assumed to respond
 * to the tunable knobs the same way.
 *
 * OBSERVED shape (peak sparse support, plan-cache hit counts) is
 * deliberately not part of the bucket: it is unknown at decision time.
 * It rides the measurement records and per-job telemetry instead, where
 * it explains WHY a bucket's timings look the way they do.
 *
 * Bucket strings use only [a-z0-9._-] so they are safe as metric label
 * values, JSONL fields, and cluster hint payloads.
 */

#ifndef RASENGAN_TUNE_FINGERPRINT_H
#define RASENGAN_TUNE_FINGERPRINT_H

#include <cstdint>
#include <string>

namespace rasengan::tune {

struct WorkloadFingerprint
{
    int numVars = 0;
    int numConstraints = 0;
    std::string algorithm = "rasengan";
    std::string execution = "exact"; ///< exact|sampled|noisy|gate
    int transitionsPerSegment = 3;
    int iterations = 60;
    uint64_t shots = 1024;
    /**
     * Result-affecting knob carried in the bucket when non-default
     * (< 0 = engine default).  The tuner never CHANGES this -- it only
     * keeps measurements from differently-pruned jobs apart.
     */
    double pruneThreshold = -1.0;
};

/**
 * Lower bound of the log-2 bucket containing @p v: 0, 1, 2, 4, 8, ...
 * (0 and 1 are their own buckets; sizes inside one power-of-two decade
 * share timings closely enough to pool).
 */
uint64_t log2Bucket(uint64_t v);

/**
 * Deterministic bucket key for the cost model, e.g.
 * "q16.c4.alg-rasengan.ex-exact.tps-3.it-32.sh-1024".  Equal
 * fingerprints always render equal buckets; the rendering never
 * depends on host state.
 */
std::string fingerprintBucket(const WorkloadFingerprint &fp);

} // namespace rasengan::tune

#endif // RASENGAN_TUNE_FINGERPRINT_H
