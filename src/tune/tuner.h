/**
 * @file
 * Adaptive execution tuner: deterministic per-job knob decisions driven
 * by the persisted cost model.
 *
 * The tuner only ever adjusts RESULT-INVARIANT knobs -- the dense
 * direct-index vs searched sparse classify engine, rotation-plan
 * caching, gate fusion, thread count, and SIMD ISA.  Every arm of every
 * knob produces bit-identical job results by construction, so the worst
 * a bad decision can do is waste time.  Result-AFFECTING knobs (the
 * prune threshold) are never touched; when a request sets one it is
 * folded into the workload fingerprint instead so its measurements stay
 * quarantined (see tune/fingerprint.h).
 *
 * Determinism contract: decide() is a pure function of (a) the cost
 * model loaded at startup and (b) the sequence of earlier decide()
 * calls this run.  It never consults wall clocks, live pool state, or
 * in-flight measurements -- thread/ISA availability enter only through
 * TunerOptions, and measurements recorded during a run are journaled
 * for FUTURE runs rather than folded into the live model (folding them
 * in would make decisions depend on job completion timing, which varies
 * across thread counts).  Callers invoke decide() from serial,
 * submission-ordered contexts (batch submit, daemon admission,
 * coordinator placement), so the decision sequence for a given request
 * stream is reproducible everywhere.
 *
 * Cold start: with no usable model file, Auto mode deterministically
 * explores one knob arm at a time (all other knobs pinned to their
 * defaults) until each arm has kMinSamplesPerArm observations, then
 * exploits the per-bucket minimum-mean arm -- with a margin in favor of
 * the default, so noise cannot flip a knob for a sub-percent win.
 */

#ifndef RASENGAN_TUNE_TUNER_H
#define RASENGAN_TUNE_TUNER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tune/costmodel.h"
#include "tune/fingerprint.h"

namespace rasengan::serve {
struct PreparedJob;
struct JobResult;
}

namespace rasengan::tune {

enum class TuneMode
{
    Off,     ///< fixed defaults; no decisions, no recording
    Observe, ///< fixed defaults; measurements recorded to the model
    Auto,    ///< decisions from the model; measurements recorded
};

/** "off" / "observe" / "auto" (case-sensitive). */
bool parseTuneMode(const std::string &text, TuneMode *out);
const char *tuneModeName(TuneMode mode);

/** RASENGAN_TUNE environment override, or @p fallback when unset/bad. */
TuneMode envTuneMode(TuneMode fallback);

/** RASENGAN_TUNE_MODEL environment override, or @p fallback when unset. */
std::string envTuneModel(const std::string &fallback);

/**
 * Build the workload fingerprint for a prepared serve job -- the one
 * mapping from request/problem fields to fingerprint features, shared
 * by the batch tools, the daemon, and the cluster coordinator so every
 * entry point buckets identical jobs identically.
 */
WorkloadFingerprint fingerprintForJob(const serve::PreparedJob &job);

/**
 * Build a measurement from a finished job's telemetry (the one mapping
 * from telemetry fields to measurement records, shared by every
 * recording site).  Returns false when the job carries no tune bucket
 * (tuning off, or the job was rejected) -- @p out is unspecified then.
 */
bool measurementForResult(const serve::JobResult &result, Measurement *out);

struct KnobSpec
{
    std::string name;
    std::vector<std::string> arms; ///< arms[0] is the fixed default
};

struct TunerOptions
{
    TuneMode mode = TuneMode::Off;
    /** Measurement journal path; empty = in-memory only (no persist). */
    std::string modelPath;
    /** Thread count the caller uses when untuned (the default arm). */
    int defaultThreads = 0;
    /** Upper bound for explored thread arms (e.g. hardware threads). */
    int maxThreads = 1;
    /** Active ISA when untuned (the default arm), e.g. "avx2". */
    std::string defaultIsa = "scalar";
    /** ISAs available on this host, e.g. {"scalar", "avx2"}. */
    std::vector<std::string> isas = {"scalar"};
    /**
     * Whether this caller can honor PROCESS-WIDE knob changes (threads,
     * fusion, SIMD ISA).  Serial executors (single solve, daemon
     * worker) can; batch schedulers running jobs concurrently cannot,
     * and with this false those knobs collapse to their default arm so
     * the tuner never hands out an assignment the caller must ignore.
     */
    bool processKnobs = true;
    /** Explore until every arm has this many (planned) samples. */
    uint64_t minSamplesPerArm = 2;
    /** A non-default arm must beat the default's mean by this much. */
    double exploitMarginPct = 3.0;
};

struct TuneDecision
{
    std::string bucket;
    ArmAssignment arms; ///< full assignment, every knob present
    /** default | explore:<knob>=<arm> | model */
    std::string source = "default";
    /** True when any arm differs from its fixed default. */
    bool tuned = false;

    /** Arm accessor with fallback (knobs are always present). */
    const std::string &arm(const std::string &knob) const;
    bool denseLookup() const { return arm(kKnobEngine) == "dense"; }
    bool cachePlans() const { return arm(kKnobPlans) != "off"; }
    bool fusion() const { return arm(kKnobFusion) != "off"; }
    int threads() const;
    const std::string &isa() const { return arm(kKnobIsa); }
};

/**
 * Render @p d as a request tune hint:
 * "bucket=<bucket>;<sorted arms>;source=<source>".  The inverse lives
 * in serve's parseTuneHint (per-job knobs) and parseArms (records).
 */
std::string renderHint(const TuneDecision &d);

class Tuner
{
  public:
    explicit Tuner(TunerOptions options);

    TuneMode mode() const { return options_.mode; }
    const TunerOptions &options() const { return options_; }
    const std::vector<KnobSpec> &knobs() const { return knobs_; }

    /** Load the persisted cost model (debris-tolerant; see CostModel). */
    CostModel::LoadStats load();

    /**
     * Decide the knob assignment for one job.  Call from the serial
     * admission path only (see file comment).  Off/Observe modes return
     * the fixed defaults with source "default".
     */
    TuneDecision decide(const WorkloadFingerprint &fp);

    /** Fixed-default assignment (what Off mode always runs). */
    TuneDecision defaults(const std::string &bucket) const;

    /**
     * Record one completed job's measurement: appended to the model
     * journal (when persisted) and retained for drainRecords().
     * Thread-safe; a no-op in Off mode.
     */
    void record(const Measurement &m);

    /**
     * Take the measurement lines accumulated since the last drain
     * (cluster workers ship these back in batch_done).  Thread-safe.
     */
    std::vector<std::string> drainRecords();

    /**
     * Append externally produced measurement lines (newline-separated,
     * e.g. a worker's batch_done payload) to the model journal.  Lines
     * that do not parse as measurements are dropped and counted.  The
     * LIVE model is not updated -- absorbed lines take effect next run,
     * keeping this run's decisions independent of worker timing.
     * Returns the number of lines absorbed.
     */
    size_t absorbLines(const std::string &text);

    struct Stats
    {
        uint64_t decisions = 0;
        uint64_t explored = 0;
        uint64_t exploited = 0; ///< source == "model" with a deviation
        uint64_t recorded = 0;
        uint64_t absorbed = 0;
        uint64_t absorbDropped = 0;
    };
    Stats stats() const;

  private:
    void creditPlanned(const std::string &bucket, const ArmAssignment &arms);
    uint64_t plannedSamples(const std::string &bucket,
                            const std::string &knob,
                            const std::string &arm) const;
    bool appendJournalLine(const std::string &line);

    TunerOptions options_;
    std::vector<KnobSpec> knobs_;
    CostModel model_; ///< frozen after load()

    mutable std::mutex mutex_; ///< decide()/stats bookkeeping
    /** bucket -> knob -> arm -> decisions handed out this run. */
    std::map<std::string, std::map<std::string, std::map<std::string,
        uint64_t>>> planned_;
    Stats stats_;

    std::mutex recordMutex_; ///< journal append + pending lines
    std::vector<std::string> pending_;
};

} // namespace rasengan::tune

#endif // RASENGAN_TUNE_TUNER_H
