#include "tune/costmodel.h"

#include <cmath>
#include <fstream>

#include "common/logging.h"
#include "serve/jsonl.h"

namespace rasengan::tune {

std::string
renderArms(const ArmAssignment &arms)
{
    std::string out;
    for (const auto &[knob, arm] : arms) {
        if (!out.empty())
            out += ';';
        out += knob;
        out += '=';
        out += arm;
    }
    return out;
}

bool
parseArms(const std::string &text, ArmAssignment *out, std::string *bucket,
          std::string *source)
{
    out->clear();
    size_t pos = 0;
    while (pos < text.size()) {
        size_t end = text.find(';', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string clause = text.substr(pos, end - pos);
        pos = end + 1;
        if (clause.empty())
            continue;
        const size_t eq = clause.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = clause.substr(0, eq);
        const std::string value = clause.substr(eq + 1);
        if (key == "bucket") {
            if (bucket)
                *bucket = value;
        } else if (key == "source") {
            if (source)
                *source = value;
        } else if (key == kKnobEngine || key == kKnobPlans ||
                   key == kKnobFusion || key == kKnobThreads ||
                   key == kKnobIsa) {
            (*out)[key] = value;
        }
        // Unknown keys: ignored, so newer writers stay readable.
    }
    return true;
}

std::string
encodeMeasurement(const Measurement &m)
{
    serve::JsonWriter w;
    w.field("bucket", m.bucket);
    for (const auto &[knob, arm] : m.arms)
        w.field(knob, arm);
    w.field("wall_ms", m.wallMs);
    w.field("source", m.source);
    if (m.supportMax)
        w.field("support_max", m.supportMax);
    if (m.planRecorded)
        w.field("plan_recorded", m.planRecorded);
    if (m.planReplayed)
        w.field("plan_replayed", m.planReplayed);
    return w.str();
}

bool
parseMeasurement(const std::string &line, Measurement *out)
{
    const serve::JsonParseResult parsed = serve::parseFlatJson(line);
    if (!parsed.ok)
        return false;
    *out = Measurement{};
    auto str = [&](const char *key, std::string *dst) {
        auto it = parsed.object.find(key);
        if (it != parsed.object.end() &&
            it->second.kind == serve::JsonValue::Kind::String)
            *dst = it->second.str;
    };
    auto num = [&](const char *key, double *dst) -> bool {
        auto it = parsed.object.find(key);
        if (it == parsed.object.end() ||
            it->second.kind != serve::JsonValue::Kind::Number)
            return false;
        *dst = it->second.num;
        return true;
    };
    str("bucket", &out->bucket);
    str("source", &out->source);
    for (const char *knob :
         {kKnobEngine, kKnobPlans, kKnobFusion, kKnobThreads, kKnobIsa}) {
        auto it = parsed.object.find(knob);
        if (it != parsed.object.end() &&
            it->second.kind == serve::JsonValue::Kind::String)
            out->arms[knob] = it->second.str;
    }
    if (!num("wall_ms", &out->wallMs))
        return false;
    double v = 0.0;
    if (num("support_max", &v) && v >= 0.0)
        out->supportMax = static_cast<uint64_t>(v);
    if (num("plan_recorded", &v) && v >= 0.0)
        out->planRecorded = static_cast<uint64_t>(v);
    if (num("plan_replayed", &v) && v >= 0.0)
        out->planReplayed = static_cast<uint64_t>(v);
    return !out->bucket.empty() && std::isfinite(out->wallMs) &&
           out->wallMs >= 0.0 && !out->arms.empty();
}

void
CostModel::add(const Measurement &m)
{
    KnobTable &knobs = table_[m.bucket];
    for (const auto &[knob, arm] : m.arms) {
        ArmStats &cell = knobs[knob][arm];
        ++cell.count;
        cell.totalMs += m.wallMs;
    }
}

CostModel::LoadStats
CostModel::loadFile(const std::string &path)
{
    LoadStats stats;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        stats.fileMissing = true;
        return stats;
    }
    serve::LineReader reader(in);
    serve::LineReader::Line line;
    while (reader.next(line)) {
        if (!line.ok) {
            ++stats.debris;
            continue;
        }
        Measurement m;
        if (!parseMeasurement(line.text, &m)) {
            ++stats.debris;
            continue;
        }
        add(m);
        ++stats.records;
    }
    if (stats.debris > 0)
        warn(LogTail()
                 .kv("path", path)
                 .kv("records", stats.records)
                 .kv("debris", stats.debris),
             "tune: skipped defective cost-model lines");
    return stats;
}

uint64_t
CostModel::samples(const std::string &bucket, const std::string &knob,
                   const std::string &arm) const
{
    const ArmStats *cell = stats(bucket, knob, arm);
    return cell ? cell->count : 0;
}

const CostModel::ArmStats *
CostModel::stats(const std::string &bucket, const std::string &knob,
                 const std::string &arm) const
{
    auto b = table_.find(bucket);
    if (b == table_.end())
        return nullptr;
    auto k = b->second.find(knob);
    if (k == b->second.end())
        return nullptr;
    auto a = k->second.find(arm);
    return a == k->second.end() ? nullptr : &a->second;
}

} // namespace rasengan::tune
