#include "tune/tuner.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"
#include "serve/runner.h"

namespace rasengan::tune {

namespace {

obs::Counter &
decisionCounter(const char *source)
{
    return obs::Registry::global().counter(
        "tune_decisions_total", "Tuner knob decisions by source",
        {{"source", source}});
}

} // namespace

bool
parseTuneMode(const std::string &text, TuneMode *out)
{
    if (text == "off")
        *out = TuneMode::Off;
    else if (text == "observe")
        *out = TuneMode::Observe;
    else if (text == "auto")
        *out = TuneMode::Auto;
    else
        return false;
    return true;
}

const char *
tuneModeName(TuneMode mode)
{
    switch (mode) {
      case TuneMode::Off:
        return "off";
      case TuneMode::Observe:
        return "observe";
      case TuneMode::Auto:
        return "auto";
    }
    return "off";
}

TuneMode
envTuneMode(TuneMode fallback)
{
    const char *env = std::getenv("RASENGAN_TUNE");
    if (!env || !*env)
        return fallback;
    TuneMode mode = fallback;
    if (!parseTuneMode(env, &mode)) {
        warn(LogTail().kv("value", env),
             "tune: unrecognized RASENGAN_TUNE (want off|observe|auto)");
        return fallback;
    }
    return mode;
}

std::string
envTuneModel(const std::string &fallback)
{
    const char *env = std::getenv("RASENGAN_TUNE_MODEL");
    return (env && *env) ? std::string(env) : fallback;
}

WorkloadFingerprint
fingerprintForJob(const serve::PreparedJob &job)
{
    WorkloadFingerprint fp;
    if (job.problem) {
        fp.numVars = job.problem->numVars();
        fp.numConstraints = job.problem->numConstraints();
    }
    fp.algorithm = job.req.algorithm;
    fp.execution = job.req.execution;
    fp.transitionsPerSegment = job.req.transitionsPerSegment;
    fp.iterations = job.req.iterations;
    fp.shots = job.req.shots;
    // The request's prune toggle is result-AFFECTING: disabling it gets
    // its own fingerprint fence so its timings never pool with default
    // traffic.  The tuner itself never touches the toggle.
    fp.pruneThreshold = job.req.prune ? -1.0 : 0.0;
    return fp;
}

bool
measurementForResult(const serve::JobResult &result, Measurement *out)
{
    const serve::JobTelemetry &t = result.telemetry;
    if (!result.accepted || t.tuneBucket.empty())
        return false;
    out->bucket = t.tuneBucket;
    out->arms.clear();
    if (!t.tuneDecision.empty())
        parseArms(t.tuneDecision, &out->arms);
    out->wallMs = t.wallMs;
    out->source = t.tuneSource.empty() ? "hint" : t.tuneSource;
    out->supportMax = t.supportMax;
    out->planRecorded = t.planRecorded;
    out->planReplayed = t.planReplayed;
    return true;
}

std::string
renderHint(const TuneDecision &d)
{
    return "bucket=" + d.bucket + ";" + renderArms(d.arms) +
           ";source=" + d.source;
}

const std::string &
TuneDecision::arm(const std::string &knob) const
{
    static const std::string kEmpty;
    auto it = arms.find(knob);
    return it == arms.end() ? kEmpty : it->second;
}

int
TuneDecision::threads() const
{
    const std::string &a = arm(kKnobThreads);
    return a.empty() ? 0 : std::atoi(a.c_str());
}

Tuner::Tuner(TunerOptions options) : options_(std::move(options))
{
    // Knob specs, fixed decision order; arms[0] is the untuned default,
    // so a cold model always reproduces today's fixed behavior.
    knobs_.push_back({kKnobEngine, {"search", "dense"}});
    knobs_.push_back({kKnobPlans, {"on", "off"}});

    KnobSpec fusion{kKnobFusion, {"on"}};
    if (options_.processKnobs)
        fusion.arms.push_back("off");
    knobs_.push_back(std::move(fusion));

    KnobSpec threads{kKnobThreads, {}};
    const int def =
        options_.defaultThreads > 0 ? options_.defaultThreads : 1;
    threads.arms.push_back(std::to_string(def));
    if (options_.processKnobs) {
        for (int t = 1; t <= options_.maxThreads; t *= 2)
            if (t != def)
                threads.arms.push_back(std::to_string(t));
        if (options_.maxThreads > def &&
            std::find(threads.arms.begin(), threads.arms.end(),
                      std::to_string(options_.maxThreads)) ==
                threads.arms.end())
            threads.arms.push_back(std::to_string(options_.maxThreads));
    }
    knobs_.push_back(std::move(threads));

    KnobSpec isa{kKnobIsa, {}};
    isa.arms.push_back(options_.defaultIsa);
    if (options_.processKnobs)
        for (const std::string &name : options_.isas)
            if (name != options_.defaultIsa)
                isa.arms.push_back(name);
    knobs_.push_back(std::move(isa));
}

CostModel::LoadStats
Tuner::load()
{
    CostModel::LoadStats stats;
    if (options_.modelPath.empty())
        return stats;
    stats = model_.loadFile(options_.modelPath);
    obs::Registry &reg = obs::Registry::global();
    reg.counter("tune_model_records_total",
                "Cost-model measurements loaded at startup")
        .inc(stats.records);
    reg.counter("tune_model_debris_total",
                "Defective cost-model lines skipped at load")
        .inc(stats.debris);
    if (!stats.fileMissing)
        inform(LogTail()
                   .kv("path", options_.modelPath)
                   .kv("records", stats.records)
                   .kv("buckets", model_.bucketCount())
                   .kv("debris", stats.debris),
               "tune: cost model loaded");
    return stats;
}

TuneDecision
Tuner::defaults(const std::string &bucket) const
{
    TuneDecision d;
    d.bucket = bucket;
    for (const KnobSpec &knob : knobs_)
        d.arms[knob.name] = knob.arms.front();
    return d;
}

uint64_t
Tuner::plannedSamples(const std::string &bucket, const std::string &knob,
                      const std::string &arm) const
{
    uint64_t n = model_.samples(bucket, knob, arm);
    auto b = planned_.find(bucket);
    if (b != planned_.end()) {
        auto k = b->second.find(knob);
        if (k != b->second.end()) {
            auto a = k->second.find(arm);
            if (a != k->second.end())
                n += a->second;
        }
    }
    return n;
}

void
Tuner::creditPlanned(const std::string &bucket, const ArmAssignment &arms)
{
    for (const auto &[knob, arm] : arms)
        ++planned_[bucket][knob][arm];
}

TuneDecision
Tuner::decide(const WorkloadFingerprint &fp)
{
    const std::string bucket = fingerprintBucket(fp);
    TuneDecision d = defaults(bucket);

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.decisions;
    if (options_.mode != TuneMode::Auto) {
        decisionCounter("default").inc();
        return d;
    }

    // Explore: find the first undersampled (knob, arm) cell in fixed
    // order and run it with every other knob at its default.  One knob
    // deviates at a time, so each measurement cleanly credits the arm
    // being probed.
    for (const KnobSpec &knob : knobs_) {
        for (const std::string &arm : knob.arms) {
            if (plannedSamples(bucket, knob.name, arm) >=
                options_.minSamplesPerArm)
                continue;
            d.arms[knob.name] = arm;
            d.source = "explore:" + knob.name + "=" + arm;
            d.tuned = arm != knob.arms.front();
            creditPlanned(bucket, d.arms);
            ++stats_.explored;
            decisionCounter("explore").inc();
            return d;
        }
    }

    // Exploit: per knob, the minimum-mean arm -- but a non-default arm
    // must beat the default's mean by exploitMarginPct so measurement
    // noise cannot flip a knob for a negligible win.
    bool deviated = false;
    for (const KnobSpec &knob : knobs_) {
        const std::string &defaultArm = knob.arms.front();
        const CostModel::ArmStats *defStats =
            model_.stats(bucket, knob.name, defaultArm);
        if (!defStats || defStats->count == 0)
            continue; // no default baseline: keep the default arm
        const double defMean = defStats->meanMs();
        const double bar = defMean * (1.0 - options_.exploitMarginPct / 100.0);
        std::string best = defaultArm;
        double bestMean = defMean;
        for (const std::string &arm : knob.arms) {
            if (arm == defaultArm)
                continue;
            const CostModel::ArmStats *s =
                model_.stats(bucket, knob.name, arm);
            if (!s || s->count == 0)
                continue;
            const double mean = s->meanMs();
            if (mean < bestMean && mean < bar) {
                best = arm;
                bestMean = mean;
            }
        }
        if (best != defaultArm) {
            d.arms[knob.name] = best;
            deviated = true;
        }
    }
    d.tuned = deviated;
    d.source = deviated ? "model" : "default";
    creditPlanned(bucket, d.arms);
    if (deviated) {
        ++stats_.exploited;
        decisionCounter("model").inc();
    } else {
        decisionCounter("default").inc();
    }
    return d;
}

bool
Tuner::appendJournalLine(const std::string &line)
{
    if (options_.modelPath.empty())
        return true;
    std::ofstream out(options_.modelPath,
                      std::ios::binary | std::ios::app);
    if (!out.is_open()) {
        warn(LogTail().kv("path", options_.modelPath),
             "tune: cannot append to cost model");
        return false;
    }
    out << line << '\n';
    return out.good();
}

void
Tuner::record(const Measurement &m)
{
    if (options_.mode == TuneMode::Off)
        return;
    const std::string line = encodeMeasurement(m);
    std::lock_guard<std::mutex> lock(recordMutex_);
    appendJournalLine(line);
    pending_.push_back(line);
    obs::Registry::global()
        .counter("tune_measurements_total", "Job measurements recorded")
        .inc();
    std::lock_guard<std::mutex> slock(mutex_);
    ++stats_.recorded;
}

std::vector<std::string>
Tuner::drainRecords()
{
    std::lock_guard<std::mutex> lock(recordMutex_);
    std::vector<std::string> out;
    out.swap(pending_);
    return out;
}

size_t
Tuner::absorbLines(const std::string &text)
{
    size_t absorbed = 0, dropped = 0;
    std::istringstream in(text);
    std::string line;
    {
        std::lock_guard<std::mutex> lock(recordMutex_);
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            Measurement m;
            if (!parseMeasurement(line, &m)) {
                ++dropped;
                continue;
            }
            appendJournalLine(line);
            ++absorbed;
        }
    }
    if (dropped)
        warn(LogTail().kv("absorbed", absorbed).kv("dropped", dropped),
             "tune: dropped unparseable worker measurements");
    obs::Registry::global()
        .counter("tune_absorbed_total",
                 "Worker measurement lines absorbed into the model journal")
        .inc(absorbed);
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.absorbed += absorbed;
    stats_.absorbDropped += dropped;
    return absorbed;
}

Tuner::Stats
Tuner::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace rasengan::tune
