#include "tune/fingerprint.h"

#include <cctype>
#include <cstdio>

namespace rasengan::tune {

namespace {

/**
 * Sanitize a free-form token (algorithm / execution names) into the
 * bucket charset [a-z0-9_-]; anything else becomes '_' so a hostile
 * request string cannot smuggle separators into label values or hints.
 */
std::string
safeToken(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (std::isalnum(u))
            out.push_back(
                static_cast<char>(std::tolower(u)));
        else if (c == '-' || c == '_')
            out.push_back(c);
        else
            out.push_back('_');
    }
    return out.empty() ? std::string("none") : out;
}

} // namespace

uint64_t
log2Bucket(uint64_t v)
{
    if (v <= 1)
        return v;
    uint64_t b = 1;
    while ((b << 1) <= v && (b << 1) != 0)
        b <<= 1;
    return b;
}

std::string
fingerprintBucket(const WorkloadFingerprint &fp)
{
    char buf[160];
    std::snprintf(
        buf, sizeof buf, "q%llu.c%llu.alg-%s.ex-%s.tps-%d.it-%llu.sh-%llu",
        static_cast<unsigned long long>(
            log2Bucket(fp.numVars > 0 ? static_cast<uint64_t>(fp.numVars)
                                      : 0)),
        static_cast<unsigned long long>(log2Bucket(
            fp.numConstraints > 0 ? static_cast<uint64_t>(fp.numConstraints)
                                  : 0)),
        safeToken(fp.algorithm).c_str(), safeToken(fp.execution).c_str(),
        fp.transitionsPerSegment,
        static_cast<unsigned long long>(log2Bucket(
            fp.iterations > 0 ? static_cast<uint64_t>(fp.iterations) : 0)),
        static_cast<unsigned long long>(log2Bucket(fp.shots)));
    std::string bucket(buf);
    if (fp.pruneThreshold >= 0.0) {
        // Non-default prune threshold: fence these measurements off from
        // default-pruned traffic (the knob changes results, so it also
        // changes support growth and therefore timings).
        char pt[48];
        std::snprintf(pt, sizeof pt, ".pt-%.6g", fp.pruneThreshold);
        for (char &c : pt)
            if (c == '+')
                c = 'p'; // "%g" exponent '+' is outside the charset
        bucket += pt;
    }
    return bucket;
}

} // namespace rasengan::tune
