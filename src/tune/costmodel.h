/**
 * @file
 * Persisted cost model for the adaptive tuner.
 *
 * The model is a nested table
 *
 *     fingerprint bucket -> knob -> arm -> (sample count, total wall ms)
 *
 * fed by Measurement records: one record per completed job, carrying the
 * job's bucket, the FULL knob assignment it ran under, the measured
 * wall-clock, and observed-shape extras (peak sparse support, plan-cache
 * replay counts) that explain the timing.  A record credits its wall
 * time to every (knob, arm) pair of its assignment -- the model
 * marginalizes over the other knobs, which keeps it tiny and keeps
 * decisions cheap, at the cost of ignoring knob interactions (acceptable
 * for the result-invariant knobs tuned here: their effects are close to
 * independent).
 *
 * On disk the model is an append-only journal of flat JSON lines (the
 * serve jsonl dialect), stored next to the artifact cache.  Loading
 * follows the journal debris-tolerance rules: torn trailing writes,
 * oversized lines, NUL-bearing blocks, and unparseable records are
 * skipped and counted, never fatal -- a corrupt model file degrades to
 * cold start, it cannot take the process down or poison decisions with
 * half-parsed numbers.
 */

#ifndef RASENGAN_TUNE_COSTMODEL_H
#define RASENGAN_TUNE_COSTMODEL_H

#include <cstdint>
#include <map>
#include <string>

namespace rasengan::tune {

/** Knob names, in fixed decision order. */
inline constexpr const char *kKnobEngine = "engine";   ///< search|dense
inline constexpr const char *kKnobPlans = "plans";     ///< on|off
inline constexpr const char *kKnobFusion = "fusion";   ///< on|off
inline constexpr const char *kKnobThreads = "threads"; ///< "1","2",...
inline constexpr const char *kKnobIsa = "isa";  ///< scalar|avx2|neon

/** Knob assignment: knob name -> arm name (std::map: sorted render). */
using ArmAssignment = std::map<std::string, std::string>;

/** One completed job's timing under a concrete knob assignment. */
struct Measurement
{
    std::string bucket;
    ArmAssignment arms;
    double wallMs = 0.0;
    /** Where the assignment came from: default|explore:<knob>=<arm>|
     *  model|hint.  Informational; not used by decisions. */
    std::string source = "default";
    // Observed workload shape (diagnostic; not part of the bucket key).
    uint64_t supportMax = 0;
    uint64_t planRecorded = 0;
    uint64_t planReplayed = 0;
};

/** Render an assignment as "engine=dense;plans=on;..." (sorted keys). */
std::string renderArms(const ArmAssignment &arms);

/**
 * Parse renderArms() output (also accepts extra "bucket="/"source="
 * pairs, returned via the optional out-params).  Unknown keys are
 * ignored; empty input yields an empty assignment.  Returns false only
 * on structurally broken input (a clause with no '=').
 */
bool parseArms(const std::string &text, ArmAssignment *out,
               std::string *bucket = nullptr, std::string *source = nullptr);

/** Serialize @p m as one flat JSON line (no trailing newline). */
std::string encodeMeasurement(const Measurement &m);

/**
 * Parse one journal line.  Returns false (and leaves @p out unspecified)
 * when the line is not a usable measurement: parse error, missing
 * bucket/wall_ms, or a non-finite/negative wall time.
 */
bool parseMeasurement(const std::string &line, Measurement *out);

class CostModel
{
  public:
    struct ArmStats
    {
        uint64_t count = 0;
        double totalMs = 0.0;
        double meanMs() const { return count ? totalMs / count : 0.0; }
    };

    struct LoadStats
    {
        bool fileMissing = false;
        size_t records = 0; ///< measurements absorbed
        size_t debris = 0;  ///< torn/oversized/NUL/unparseable lines
    };

    /** Credit @p m.wallMs to every (knob, arm) pair of its assignment. */
    void add(const Measurement &m);

    /**
     * Absorb a journal file.  Missing file = clean cold start; any
     * defective line is counted in debris and skipped (one structured
     * warning summarizes the damage).  Never throws, never fatals.
     */
    LoadStats loadFile(const std::string &path);

    uint64_t samples(const std::string &bucket, const std::string &knob,
                     const std::string &arm) const;

    /** nullptr when the (bucket, knob, arm) cell has no samples. */
    const ArmStats *stats(const std::string &bucket, const std::string &knob,
                          const std::string &arm) const;

    size_t bucketCount() const { return table_.size(); }

  private:
    using ArmTable = std::map<std::string, ArmStats>;
    using KnobTable = std::map<std::string, ArmTable>;
    std::map<std::string, KnobTable> table_;
};

} // namespace rasengan::tune

#endif // RASENGAN_TUNE_COSTMODEL_H
