/**
 * @file
 * Commute-Hamiltonian-based QAOA baseline (Choco-Q) [43].
 *
 * QAOA whose mixer commutes with the constraint operators: the initial
 * state is one feasible solution, each layer applies the objective phase
 * e^{-i gamma f(x)} followed by the Trotterized commuting mixer
 * prod_k e^{-i beta H^tau(u_k)} over the full (unsimplified) homogeneous
 * basis.  All output states stay feasible, but the mixer re-encodes every
 * basis vector in every layer, which is where the depth gap to Rasengan
 * comes from (Table 2).
 */

#ifndef RASENGAN_BASELINES_CHOCOQ_H
#define RASENGAN_BASELINES_CHOCOQ_H

#include <vector>

#include "baselines/vqa.h"
#include "circuit/circuit.h"
#include "core/transition.h"
#include "problems/problem.h"

namespace rasengan::baselines {

struct ChocoqOptions : VqaOptions
{
};

class Chocoq
{
  public:
    Chocoq(problems::Problem problem, ChocoqOptions options = {});

    const problems::Problem &problem() const { return problem_; }
    int numParams() const { return 2 * options_.layers; }
    int mixerTerms() const { return static_cast<int>(transitions_.size()); }

    /**
     * Gate-level circuit: X preparation of the feasible initial state,
     * then per layer the objective phase gates and every transition
     * operator at the layer's beta.
     */
    circuit::Circuit buildCircuit(const std::vector<double> &params) const;

    VqaResult run();

  private:
    qsim::SparseState simulate(const std::vector<double> &params) const;
    double exactExpectation(const std::vector<double> &params) const;
    qsim::Counts sampleFinal(const std::vector<double> &params, Rng &rng,
                             uint64_t shots) const;

    problems::Problem problem_;
    ChocoqOptions options_;
    VqaExecHarness harness_; ///< resilient execution engine
    double lambda_;
    std::vector<core::TransitionHamiltonian> transitions_;
};

} // namespace rasengan::baselines

#endif // RASENGAN_BASELINES_CHOCOQ_H
