#include "baselines/hea.h"

#include <cmath>

#include "baselines/qubo.h"
#include "circuit/transpile.h"
#include "common/logging.h"
#include "common/timer.h"
#include "device/latency.h"
#include "opt/factory.h"
#include "problems/metrics.h"
#include "qsim/statevector.h"

namespace rasengan::baselines {

Hea::Hea(problems::Problem problem, HeaOptions options)
    : problem_(std::move(problem)), options_(std::move(options)),
      harness_(options_.resilience)
{
    const int n = problem_.numVars();
    fatal_if(n > 24, "HEA dense simulation limited to 24 qubits, got {}", n);
    lambda_ = options_.penaltyLambda >= 0.0
                  ? options_.penaltyLambda
                  : problems::defaultPenaltyLambda(problem_);
    diagonal_ = diagonalValues(penaltyQubo(problem_, lambda_), n);
}

circuit::Circuit
Hea::buildCircuit(const std::vector<double> &params) const
{
    const int n = problem_.numVars();
    const int layers = options_.layers;
    panic_if(static_cast<int>(params.size()) != numParams(),
             "expected {} parameters, got {}", numParams(), params.size());

    circuit::Circuit circ(n);
    size_t p = 0;
    for (int col = 0; col <= layers; ++col) {
        for (int q = 0; q < n; ++q) {
            circ.ry(q, params[p++]);
            circ.rz(q, params[p++]);
        }
        if (col < layers) {
            for (int q = 0; q + 1 < n; ++q)
                circ.cx(q, q + 1);
        }
    }
    return circ;
}

double
Hea::exactExpectation(const std::vector<double> &params) const
{
    qsim::Statevector sv(problem_.numVars());
    sv.applyCircuit(buildCircuit(params));
    double acc = 0.0;
    const auto &amps = sv.amplitudes();
    for (size_t i = 0; i < amps.size(); ++i)
        acc += std::norm(amps[i]) * diagonal_[i];
    return acc;
}

qsim::Counts
Hea::sampleFinal(const std::vector<double> &params, Rng &rng,
                 uint64_t shots) const
{
    if (options_.noise.enabled()) {
        circuit::Circuit circ = buildCircuit(params);
        return qsim::sampleNoisy(circ, circ.numQubits(), BitVec{},
                                 options_.noise, rng, shots,
                                 options_.trajectories,
                                 problem_.numVars());
    }
    qsim::Statevector sv(problem_.numVars());
    sv.applyCircuit(buildCircuit(params));
    return sv.sample(rng, shots);
}

VqaResult
Hea::run()
{
    VqaResult res;
    res.numParams = numParams();

    Stopwatch wall;
    wall.start();
    Stopwatch sim_time;

    Rng rng(options_.seed);
    double attempt_s = 0.0; // per-execution latency, set once x0 is known
    auto objective = [&](const std::vector<double> &params) {
        ScopedTimer guard(sim_time);
        if (options_.noise.enabled()) {
            const uint64_t job_seed = rng.engine()();
            auto sampled = harness_.sample(
                "hea-train", options_.shots, problem_.numVars(), job_seed,
                attempt_s, [&](Rng &job_rng, uint64_t shots) {
                    return sampleFinal(params, job_rng, shots);
                });
            if (!sampled.ok())
                return VqaExecHarness::kFailureScore;
            return problems::expectedObjective(problem_, sampled.value(),
                                               lambda_);
        }
        auto value = harness_.expectation("hea-train", attempt_s, [&] {
            return exactExpectation(params);
        });
        return value.ok() ? value.value() : VqaExecHarness::kFailureScore;
    };

    // Small random initialization breaks the barren symmetry at zero.
    std::vector<double> x0 = options_.initialParams;
    if (x0.empty()) {
        Rng init_rng(options_.seed + 17);
        x0.resize(numParams());
        for (double &p : x0)
            p = init_rng.uniformReal(-0.2, 0.2);
    } else {
        fatal_if(static_cast<int>(x0.size()) != numParams(),
                 "warm start has {} parameters, ansatz needs {}", x0.size(),
                 numParams());
    }

    // Gate counts (hence latency) are angle-independent, so x0 stands in
    // for the trained parameters here.
    device::LatencyModel latency(options_.latencyDevice);
    attempt_s =
        latency.executionTimeSeconds(buildCircuit(x0), options_.shots);

    opt::OptOptions oo;
    oo.maxIterations = options_.maxIterations;
    oo.initialStep = 0.3;
    oo.tolerance = 1e-5;
    oo.seed = options_.seed;
    auto optimizer = opt::makeOptimizer(options_.optimizer, oo);
    res.training = optimizer->minimize(objective, x0);
    wall.stop();

    circuit::Circuit circ = buildCircuit(res.training.x);
    res.circuitDepth = circ.depth();
    res.circuitCx = circ.countCx();

    auto sampled = harness_.sample(
        "hea-final", options_.shots, problem_.numVars(),
        options_.seed + 1, attempt_s, [&](Rng &job_rng, uint64_t shots) {
            return sampleFinal(res.training.x, job_rng, shots);
        });
    if (sampled.ok()) {
        res.counts = std::move(sampled.value());
    } else {
        warn("HEA final sampling failed ({}); using the clean simulator",
             sampled.error().toString());
        Rng sample_rng(options_.seed + 1);
        res.counts = sampleFinal(res.training.x, sample_rng, options_.shots);
    }
    finalizeMetrics(problem_, lambda_, res);
    harness_.finalize(res);

    res.classicalSeconds = std::max(0.0, wall.seconds() - sim_time.seconds());
    if (options_.noise.enabled()) {
        // The executor clock accounts every attempt (including retried
        // ones), injected timeouts, and backoff sleeps.
        res.quantumSeconds = harness_.executor().elapsedSeconds();
    } else {
        res.quantumSeconds =
            latency.executionTimeSeconds(circ, options_.shots) *
            res.training.evaluations;
    }
    return res;
}

} // namespace rasengan::baselines
