#include "baselines/hea.h"

#include <cmath>

#include "baselines/qubo.h"
#include "circuit/transpile.h"
#include "common/logging.h"
#include "common/timer.h"
#include "device/latency.h"
#include "opt/factory.h"
#include "problems/metrics.h"
#include "qsim/statevector.h"

namespace rasengan::baselines {

Hea::Hea(problems::Problem problem, HeaOptions options)
    : problem_(std::move(problem)), options_(std::move(options))
{
    const int n = problem_.numVars();
    fatal_if(n > 24, "HEA dense simulation limited to 24 qubits, got {}", n);
    lambda_ = options_.penaltyLambda >= 0.0
                  ? options_.penaltyLambda
                  : problems::defaultPenaltyLambda(problem_);
    diagonal_ = diagonalValues(penaltyQubo(problem_, lambda_), n);
}

circuit::Circuit
Hea::buildCircuit(const std::vector<double> &params) const
{
    const int n = problem_.numVars();
    const int layers = options_.layers;
    panic_if(static_cast<int>(params.size()) != numParams(),
             "expected {} parameters, got {}", numParams(), params.size());

    circuit::Circuit circ(n);
    size_t p = 0;
    for (int col = 0; col <= layers; ++col) {
        for (int q = 0; q < n; ++q) {
            circ.ry(q, params[p++]);
            circ.rz(q, params[p++]);
        }
        if (col < layers) {
            for (int q = 0; q + 1 < n; ++q)
                circ.cx(q, q + 1);
        }
    }
    return circ;
}

double
Hea::exactExpectation(const std::vector<double> &params) const
{
    qsim::Statevector sv(problem_.numVars());
    sv.applyCircuit(buildCircuit(params));
    double acc = 0.0;
    const auto &amps = sv.amplitudes();
    for (size_t i = 0; i < amps.size(); ++i)
        acc += std::norm(amps[i]) * diagonal_[i];
    return acc;
}

qsim::Counts
Hea::sampleFinal(const std::vector<double> &params, Rng &rng,
                 uint64_t shots) const
{
    if (options_.noise.enabled()) {
        circuit::Circuit circ = buildCircuit(params);
        return qsim::sampleNoisy(circ, circ.numQubits(), BitVec{},
                                 options_.noise, rng, shots,
                                 options_.trajectories,
                                 problem_.numVars());
    }
    qsim::Statevector sv(problem_.numVars());
    sv.applyCircuit(buildCircuit(params));
    return sv.sample(rng, shots);
}

VqaResult
Hea::run()
{
    VqaResult res;
    res.numParams = numParams();

    Stopwatch wall;
    wall.start();
    Stopwatch sim_time;

    Rng rng(options_.seed);
    auto objective = [&](const std::vector<double> &params) {
        ScopedTimer guard(sim_time);
        if (options_.noise.enabled()) {
            qsim::Counts counts = sampleFinal(params, rng, options_.shots);
            return problems::expectedObjective(problem_, counts, lambda_);
        }
        return exactExpectation(params);
    };

    // Small random initialization breaks the barren symmetry at zero.
    std::vector<double> x0 = options_.initialParams;
    if (x0.empty()) {
        Rng init_rng(options_.seed + 17);
        x0.resize(numParams());
        for (double &p : x0)
            p = init_rng.uniformReal(-0.2, 0.2);
    } else {
        fatal_if(static_cast<int>(x0.size()) != numParams(),
                 "warm start has {} parameters, ansatz needs {}", x0.size(),
                 numParams());
    }

    opt::OptOptions oo;
    oo.maxIterations = options_.maxIterations;
    oo.initialStep = 0.3;
    oo.tolerance = 1e-5;
    oo.seed = options_.seed;
    auto optimizer = opt::makeOptimizer(options_.optimizer, oo);
    res.training = optimizer->minimize(objective, x0);
    wall.stop();

    circuit::Circuit circ = buildCircuit(res.training.x);
    res.circuitDepth = circ.depth();
    res.circuitCx = circ.countCx();

    Rng sample_rng(options_.seed + 1);
    res.counts = sampleFinal(res.training.x, sample_rng, options_.shots);
    finalizeMetrics(problem_, lambda_, res);

    res.classicalSeconds = std::max(0.0, wall.seconds() - sim_time.seconds());
    device::LatencyModel latency(options_.latencyDevice);
    res.quantumSeconds =
        latency.executionTimeSeconds(circ, options_.shots) *
        res.training.evaluations;
    return res;
}

} // namespace rasengan::baselines
