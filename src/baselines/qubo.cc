#include "baselines/qubo.h"

#include "common/logging.h"
#include "problems/metrics.h"

namespace rasengan::baselines {

problems::QuadraticObjective
penaltyQubo(const problems::Problem &problem, double lambda)
{
    if (lambda < 0.0)
        lambda = problems::defaultPenaltyLambda(problem);
    const auto &c = problem.constraints();
    const auto &b = problem.bounds();
    const int n = problem.numVars();

    problems::QuadraticObjective qubo(n);
    qubo.accumulate(problem.objectiveFn());

    // lambda * sum_r (sum_i C_ri x_i - b_r)^2, expanded over binaries
    // (x_i^2 = x_i folds squares into linear terms).
    for (int r = 0; r < c.rows(); ++r) {
        double br = static_cast<double>(b[r]);
        qubo.addConstant(lambda * br * br);
        for (int i = 0; i < n; ++i) {
            double ci = static_cast<double>(c.at(r, i));
            if (ci == 0.0)
                continue;
            qubo.addLinear(i, lambda * (ci * ci - 2.0 * br * ci));
            for (int j = i + 1; j < n; ++j) {
                double cj = static_cast<double>(c.at(r, j));
                if (cj != 0.0)
                    qubo.addQuadratic(i, j, lambda * 2.0 * ci * cj);
            }
        }
    }
    qubo.normalize();
    return qubo;
}

void
appendObjectivePhase(circuit::Circuit &circ,
                     const problems::QuadraticObjective &f, double gamma)
{
    // e^{-i gamma f(x)} as diagonal gates.  P(theta) contributes e^{i
    // theta} on x_i = 1, so linear coefficient l_i needs P(-gamma l_i);
    // a quadratic term fires on x_i = x_j = 1, realized as a CP gate
    // (diagonal, exact) with angle -gamma q_ij.
    circ.ensureQubits(f.numVars());
    for (int i = 0; i < f.numVars(); ++i) {
        double l = f.linear()[i];
        if (l != 0.0)
            circ.p(i, -gamma * l);
    }
    for (const auto &[i, j, q] : f.quadratic()) {
        if (q != 0.0)
            circ.cp(i, j, -gamma * q);
    }
}

qsim::PauliHamiltonian
isingHamiltonian(const problems::QuadraticObjective &f, int num_vars)
{
    fatal_if(f.numVars() > num_vars,
             "objective over {} vars does not fit {} qubits", f.numVars(),
             num_vars);
    qsim::PauliHamiltonian h(num_vars);

    // x_i = (1 - Z_i) / 2:
    //   l_i x_i          -> l_i/2 I - l_i/2 Z_i
    //   q_ij x_i x_j     -> q/4 (I - Z_i - Z_j + Z_i Z_j)
    double identity = f.constant();
    for (int i = 0; i < f.numVars(); ++i) {
        double l = f.linear()[i];
        if (l == 0.0)
            continue;
        identity += l / 2.0;
        qsim::PauliString z(num_vars);
        z.setOp(i, qsim::PauliOp::Z);
        h.addTerm(-l / 2.0, std::move(z));
    }
    for (const auto &[i, j, q] : f.quadratic()) {
        if (q == 0.0)
            continue;
        identity += q / 4.0;
        qsim::PauliString zi(num_vars), zj(num_vars), zz(num_vars);
        zi.setOp(i, qsim::PauliOp::Z);
        zj.setOp(j, qsim::PauliOp::Z);
        zz.setOp(i, qsim::PauliOp::Z);
        zz.setOp(j, qsim::PauliOp::Z);
        h.addTerm(-q / 4.0, std::move(zi));
        h.addTerm(-q / 4.0, std::move(zj));
        h.addTerm(q / 4.0, std::move(zz));
    }
    if (identity != 0.0)
        h.addTerm(identity, qsim::PauliString(num_vars));
    return h;
}

std::vector<double>
diagonalValues(const problems::QuadraticObjective &f, int num_vars)
{
    fatal_if(num_vars < 0 || num_vars > 26,
             "diagonal precompute limited to 26 qubits, got {}", num_vars);
    std::vector<double> out(size_t{1} << num_vars);
    // Incremental evaluation: value(x) built from value(x without its
    // lowest set bit) would need per-bit deltas; with quadratic terms the
    // direct evaluation keeps the code simple and runs once per training.
    for (uint64_t idx = 0; idx < out.size(); ++idx)
        out[idx] = f.eval(BitVec::fromIndex(idx));
    return out;
}

} // namespace rasengan::baselines
