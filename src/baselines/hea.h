/**
 * @file
 * Hardware-efficient ansatz (HEA) baseline, after Kandala et al. [24].
 *
 * L entangling layers, each preceded by a column of RY+RZ rotations on
 * every qubit, plus a final rotation column: 2 n (L+1) parameters (the
 * >10x parameter count Table 2 reports).  Constraints are enforced softly
 * through the penalty QUBO, as the paper does when adapting HEA to
 * constrained problems.
 */

#ifndef RASENGAN_BASELINES_HEA_H
#define RASENGAN_BASELINES_HEA_H

#include <vector>

#include "baselines/vqa.h"
#include "circuit/circuit.h"
#include "problems/problem.h"

namespace rasengan::baselines {

struct HeaOptions : VqaOptions
{
};

class Hea
{
  public:
    Hea(problems::Problem problem, HeaOptions options = {});

    const problems::Problem &problem() const { return problem_; }
    int numParams() const
    {
        return 2 * problem_.numVars() * (options_.layers + 1);
    }

    /**
     * Gate-level ansatz: per column, RY(p) RZ(p) on each qubit; a linear
     * CX entangler chain between columns.
     */
    circuit::Circuit buildCircuit(const std::vector<double> &params) const;

    VqaResult run();

  private:
    double exactExpectation(const std::vector<double> &params) const;
    qsim::Counts sampleFinal(const std::vector<double> &params, Rng &rng,
                             uint64_t shots) const;

    problems::Problem problem_;
    HeaOptions options_;
    VqaExecHarness harness_; ///< resilient execution engine
    double lambda_;
    std::vector<double> diagonal_; ///< penalty QUBO over all variables
};

} // namespace rasengan::baselines

#endif // RASENGAN_BASELINES_HEA_H
