/**
 * @file
 * Shared option/result types for the baseline VQAs (HEA, P-QAOA,
 * Choco-Q), mirroring the evaluation protocol of Section 5: five layers,
 * a COBYLA-style optimizer with a bounded evaluation budget, and metrics
 * computed from a sampled output distribution.
 */

#ifndef RASENGAN_BASELINES_VQA_H
#define RASENGAN_BASELINES_VQA_H

#include <functional>
#include <string>

#include "device/device.h"
#include "exec/executor.h"
#include "opt/factory.h"
#include "opt/optimizer.h"
#include "problems/problem.h"
#include "qsim/counts.h"
#include "qsim/noise.h"

namespace rasengan::baselines {

struct VqaOptions
{
    int layers = 5;            ///< repeated ansatz layers (Section 5.2)
    int maxIterations = 300;   ///< optimizer evaluation budget
    uint64_t shots = 1024;     ///< final sampling shots
    uint64_t seed = 11;
    double penaltyLambda = -1.0; ///< <0: problems::defaultPenaltyLambda
    opt::Method optimizer = opt::Method::Cobyla;

    /** When enabled, training and sampling run gate-level under noise. */
    qsim::NoiseModel noise;
    int trajectories = 8;

    /** Device whose durations drive the quantum-latency estimate. */
    device::DeviceModel latencyDevice = device::DeviceModel::ibmQuebec();

    /**
     * Optional warm start (e.g. layerwise training across layer counts);
     * empty selects each algorithm's default initialization.  Length must
     * match the algorithm's parameter count when set.
     */
    std::vector<double> initialParams;

    /**
     * Retry/backoff, fault-injection, and degradation configuration; all
     * baseline executions route through the same resilient engine as
     * RasenganSolver (src/exec).
     */
    exec::ResilienceOptions resilience;
};

struct VqaResult
{
    qsim::Counts counts;          ///< final output distribution
    double expectedObjective = 0; ///< penalized expectation over counts
    double inConstraintsRate = 0; ///< feasible fraction of counts
    int circuitDepth = 0;         ///< transpiled full-circuit depth
    int circuitCx = 0;
    int numParams = 0;
    opt::OptResult training;
    double classicalSeconds = 0.0;
    double quantumSeconds = 0.0;

    exec::ExecStats execStats;    ///< retries/failures/backoff summary
    exec::DegradationLevel degradation = exec::DegradationLevel::Full;
};

/** Fill the counts-derived metric fields of @p result. */
void finalizeMetrics(const problems::Problem &problem, double lambda,
                     VqaResult &result);

/**
 * Shared resilient-execution harness for the baseline VQAs: owns a
 * ResilientExecutor and wraps the demote-and-retry loop around one
 * sampling or expectation call.  Shots are re-derived from the ladder
 * on every attempt so a ReducedShots demotion takes effect immediately.
 */
class VqaExecHarness
{
  public:
    /** Objective value reported when an execution fails permanently. */
    static constexpr double kFailureScore = 1e18;

    explicit VqaExecHarness(const exec::ResilienceOptions &options)
        : executor_(options)
    {
    }

    /**
     * Sample with retries and degradation.  @p fn is called with a fresh
     * Rng(@p rngSeed) and the ladder-adjusted shot count per attempt.
     */
    exec::Expected<qsim::Counts>
    sample(const std::string &tag, uint64_t nominalShots, int numBits,
           uint64_t rngSeed, double attemptSeconds,
           const std::function<qsim::Counts(Rng &, uint64_t)> &fn);

    /** Evaluate an expectation value with retries and degradation. */
    exec::Expected<double>
    expectation(const std::string &tag, double attemptSeconds,
                const std::function<double()> &fn);

    exec::ResilientExecutor &executor() { return executor_; }

    /** Copy stats/level into @p result at the end of a run. */
    void finalize(VqaResult &result);

  private:
    exec::ResilientExecutor executor_;
};

} // namespace rasengan::baselines

#endif // RASENGAN_BASELINES_VQA_H
