/**
 * @file
 * Shared option/result types for the baseline VQAs (HEA, P-QAOA,
 * Choco-Q), mirroring the evaluation protocol of Section 5: five layers,
 * a COBYLA-style optimizer with a bounded evaluation budget, and metrics
 * computed from a sampled output distribution.
 */

#ifndef RASENGAN_BASELINES_VQA_H
#define RASENGAN_BASELINES_VQA_H

#include "device/device.h"
#include "opt/factory.h"
#include "opt/optimizer.h"
#include "problems/problem.h"
#include "qsim/counts.h"
#include "qsim/noise.h"

namespace rasengan::baselines {

struct VqaOptions
{
    int layers = 5;            ///< repeated ansatz layers (Section 5.2)
    int maxIterations = 300;   ///< optimizer evaluation budget
    uint64_t shots = 1024;     ///< final sampling shots
    uint64_t seed = 11;
    double penaltyLambda = -1.0; ///< <0: problems::defaultPenaltyLambda
    opt::Method optimizer = opt::Method::Cobyla;

    /** When enabled, training and sampling run gate-level under noise. */
    qsim::NoiseModel noise;
    int trajectories = 8;

    /** Device whose durations drive the quantum-latency estimate. */
    device::DeviceModel latencyDevice = device::DeviceModel::ibmQuebec();

    /**
     * Optional warm start (e.g. layerwise training across layer counts);
     * empty selects each algorithm's default initialization.  Length must
     * match the algorithm's parameter count when set.
     */
    std::vector<double> initialParams;
};

struct VqaResult
{
    qsim::Counts counts;          ///< final output distribution
    double expectedObjective = 0; ///< penalized expectation over counts
    double inConstraintsRate = 0; ///< feasible fraction of counts
    int circuitDepth = 0;         ///< transpiled full-circuit depth
    int circuitCx = 0;
    int numParams = 0;
    opt::OptResult training;
    double classicalSeconds = 0.0;
    double quantumSeconds = 0.0;
};

/** Fill the counts-derived metric fields of @p result. */
void finalizeMetrics(const problems::Problem &problem, double lambda,
                     VqaResult &result);

} // namespace rasengan::baselines

#endif // RASENGAN_BASELINES_VQA_H
