#include "baselines/vqa.h"

#include <algorithm>

#include "problems/metrics.h"

namespace rasengan::baselines {

void
finalizeMetrics(const problems::Problem &problem, double lambda,
                VqaResult &result)
{
    result.expectedObjective =
        problems::expectedObjective(problem, result.counts, lambda);
    result.inConstraintsRate =
        problems::inConstraintsRate(problem, result.counts);
}

exec::Expected<qsim::Counts>
VqaExecHarness::sample(const std::string &tag, uint64_t nominalShots,
                       int numBits, uint64_t rngSeed, double attemptSeconds,
                       const std::function<qsim::Counts(Rng &, uint64_t)> &fn)
{
    for (;;) {
        const uint64_t shots =
            std::max<uint64_t>(1, executor_.degradedShots(nominalShots));
        exec::ShotJob job;
        job.tag = tag;
        job.shots = shots;
        job.numBits = numBits;
        job.rngSeed = rngSeed;
        job.attemptSeconds = attemptSeconds;
        job.sample = [&fn, shots](Rng &rng) { return fn(rng, shots); };
        auto attempt = executor_.run(job);
        if (attempt.ok())
            return attempt;
        if (!executor_.canDemote())
            return attempt;
        executor_.demote(attempt.error().toString());
    }
}

exec::Expected<double>
VqaExecHarness::expectation(const std::string &tag, double attemptSeconds,
                            const std::function<double()> &fn)
{
    for (;;) {
        exec::ValueJob job;
        job.tag = tag;
        job.evaluate = fn;
        job.attemptSeconds = attemptSeconds;
        auto attempt = executor_.expectation(job);
        if (attempt.ok())
            return attempt;
        if (!executor_.canDemote())
            return attempt;
        executor_.demote(attempt.error().toString());
    }
}

void
VqaExecHarness::finalize(VqaResult &result)
{
    result.execStats = executor_.stats();
    result.degradation = executor_.level();
}

} // namespace rasengan::baselines
