#include "baselines/vqa.h"

#include "problems/metrics.h"

namespace rasengan::baselines {

void
finalizeMetrics(const problems::Problem &problem, double lambda,
                VqaResult &result)
{
    result.expectedObjective =
        problems::expectedObjective(problem, result.counts, lambda);
    result.inConstraintsRate =
        problems::inConstraintsRate(problem, result.counts);
}

} // namespace rasengan::baselines
