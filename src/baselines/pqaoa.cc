#include "baselines/pqaoa.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/qubo.h"
#include "circuit/optimize.h"
#include "circuit/transpile.h"
#include "common/logging.h"
#include "common/timer.h"
#include "device/latency.h"
#include "opt/factory.h"
#include "problems/metrics.h"
#include "qsim/statevector.h"

namespace rasengan::baselines {

Pqaoa::Pqaoa(problems::Problem problem, PqaoaOptions options)
    : problem_(std::move(problem)), options_(std::move(options)),
      harness_(options_.resilience)
{
    lambda_ = options_.penaltyLambda >= 0.0
                  ? options_.penaltyLambda
                  : problems::defaultPenaltyLambda(problem_);
    qubo_ = penaltyQubo(problem_, lambda_);

    const int n = problem_.numVars();
    int freeze = std::clamp(options_.frozenQubits, 0, n - 1);

    // FrozenQubits: rank variables by QUBO degree (hotspots first).
    std::vector<int> degree(n, 0);
    for (const auto &[i, j, q] : qubo_.quadratic()) {
        if (q != 0.0) {
            ++degree[i];
            ++degree[j];
        }
    }
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return degree[a] > degree[b];
    });
    std::vector<bool> frozen(n, false);
    for (int k = 0; k < freeze; ++k)
        frozen[order[k]] = true;
    for (int v = 0; v < n; ++v) {
        if (frozen[v]) {
            if (problem_.trivialFeasible().get(v))
                frozenValues_.set(v);
        } else {
            active_.push_back(v);
        }
    }
    const int a = static_cast<int>(active_.size());
    fatal_if(a > 24, "P-QAOA dense simulation limited to 24 qubits, got {}",
             a);

    // Substitute frozen values into the QUBO to get the reduced problem.
    std::vector<int> var_to_active(n, -1);
    for (int k = 0; k < a; ++k)
        var_to_active[active_[k]] = k;
    reducedQubo_ = problems::QuadraticObjective(a);
    reducedQubo_.addConstant(qubo_.constant());
    for (int v = 0; v < n; ++v) {
        double l = qubo_.linear()[v];
        if (l == 0.0)
            continue;
        if (frozen[v]) {
            if (frozenValues_.get(v))
                reducedQubo_.addConstant(l);
        } else {
            reducedQubo_.addLinear(var_to_active[v], l);
        }
    }
    for (const auto &[i, j, q] : qubo_.quadratic()) {
        bool fi = frozen[i], fj = frozen[j];
        double vi = frozenValues_.get(i) ? 1.0 : 0.0;
        double vj = frozenValues_.get(j) ? 1.0 : 0.0;
        if (fi && fj) {
            reducedQubo_.addConstant(q * vi * vj);
        } else if (fi) {
            if (vi != 0.0)
                reducedQubo_.addLinear(var_to_active[j], q);
        } else if (fj) {
            if (vj != 0.0)
                reducedQubo_.addLinear(var_to_active[i], q);
        } else {
            reducedQubo_.addQuadratic(var_to_active[i], var_to_active[j], q);
        }
    }
    reducedQubo_.normalize();
    diagonal_ = diagonalValues(reducedQubo_, a);
}

circuit::Circuit
Pqaoa::buildCircuit(const std::vector<double> &params) const
{
    const int layers = options_.layers;
    panic_if(static_cast<int>(params.size()) != 2 * layers,
             "expected {} parameters, got {}", 2 * layers, params.size());
    const int a = numActiveQubits();

    circuit::Circuit circ(a);
    for (int q = 0; q < a; ++q)
        circ.h(q);
    for (int l = 0; l < layers; ++l) {
        double gamma = params[l];
        double beta = params[layers + l];
        appendObjectivePhase(circ, reducedQubo_, gamma);
        for (int q = 0; q < a; ++q)
            circ.rx(q, 2.0 * beta);
    }
    return circ;
}

BitVec
Pqaoa::lift(const BitVec &active_outcome) const
{
    BitVec full = frozenValues_;
    for (size_t k = 0; k < active_.size(); ++k)
        if (active_outcome.get(static_cast<int>(k)))
            full.set(active_[k]);
    return full;
}

std::vector<double>
Pqaoa::initialParams() const
{
    const int layers = options_.layers;
    std::vector<double> params(2 * layers);
    if (options_.smartInit) {
        // Red-QAOA seeding: a discretized annealing ramp.
        for (int l = 0; l < layers; ++l) {
            double frac = static_cast<double>(l + 1) / layers;
            params[l] = 0.05 * frac;                 // gamma ramps up
            params[layers + l] = 0.8 * (1.0 - frac); // beta ramps down
        }
    } else {
        std::fill(params.begin(), params.end(), 0.1);
    }
    return params;
}

double
Pqaoa::exactExpectation(const std::vector<double> &params) const
{
    const int layers = options_.layers;
    const int a = numActiveQubits();
    qsim::Statevector sv(a);
    for (int q = 0; q < a; ++q)
        sv.apply1q(q, qsim::gateMatrix(circuit::GateKind::H, 0.0));
    for (int l = 0; l < layers; ++l) {
        sv.applyDiagonalEvolution(diagonal_, params[l]);
        qsim::Mat2 rx =
            qsim::gateMatrix(circuit::GateKind::RX, 2.0 * params[layers + l]);
        for (int q = 0; q < a; ++q)
            sv.apply1q(q, rx);
    }
    double acc = 0.0;
    const auto &amps = sv.amplitudes();
    for (size_t i = 0; i < amps.size(); ++i)
        acc += std::norm(amps[i]) * diagonal_[i];
    return acc;
}

qsim::Counts
Pqaoa::sampleFinal(const std::vector<double> &params, Rng &rng,
                   uint64_t shots) const
{
    qsim::Counts active_counts;
    if (options_.noise.enabled()) {
        circuit::Circuit lowered = circuit::transpile(
            buildCircuit(params),
            {.mode = circuit::TranspileMode::GrayCode, .lowerToCx = true});
        active_counts =
            qsim::sampleNoisy(lowered, lowered.numQubits(), BitVec{},
                              options_.noise, rng, shots,
                              options_.trajectories, numActiveQubits());
    } else {
        const int layers = options_.layers;
        const int a = numActiveQubits();
        qsim::Statevector sv(a);
        for (int q = 0; q < a; ++q)
            sv.apply1q(q, qsim::gateMatrix(circuit::GateKind::H, 0.0));
        for (int l = 0; l < layers; ++l) {
            sv.applyDiagonalEvolution(diagonal_, params[l]);
            qsim::Mat2 rx = qsim::gateMatrix(circuit::GateKind::RX,
                                             2.0 * params[layers + l]);
            for (int q = 0; q < a; ++q)
                sv.apply1q(q, rx);
        }
        active_counts = sv.sample(rng, shots);
    }
    qsim::Counts lifted;
    for (const auto &[outcome, cnt] : active_counts.map())
        lifted.add(lift(outcome), cnt);
    return lifted;
}

VqaResult
Pqaoa::run()
{
    VqaResult res;
    res.numParams = numParams();

    Stopwatch wall;
    wall.start();
    Stopwatch sim_time;

    Rng rng(options_.seed);
    double attempt_s = 0.0; // per-execution latency, set once x0 is known
    auto objective = [&](const std::vector<double> &params) {
        ScopedTimer guard(sim_time);
        if (options_.noise.enabled()) {
            // Hardware-style training: estimate from noisy samples.
            const uint64_t job_seed = rng.engine()();
            auto sampled = harness_.sample(
                "pqaoa-train", options_.shots, problem_.numVars(),
                job_seed, attempt_s, [&](Rng &job_rng, uint64_t shots) {
                    return sampleFinal(params, job_rng, shots);
                });
            if (!sampled.ok())
                return VqaExecHarness::kFailureScore;
            return problems::expectedObjective(problem_, sampled.value(),
                                               lambda_);
        }
        auto value = harness_.expectation("pqaoa-train", attempt_s, [&] {
            return exactExpectation(params);
        });
        return value.ok() ? value.value() : VqaExecHarness::kFailureScore;
    };

    opt::OptOptions oo;
    oo.maxIterations = options_.maxIterations;
    oo.initialStep = 0.3;
    oo.tolerance = 1e-5;
    oo.seed = options_.seed;
    std::vector<double> x0 = options_.initialParams;
    if (x0.empty()) {
        x0 = initialParams();
    } else {
        fatal_if(static_cast<int>(x0.size()) != numParams(),
                 "warm start has {} parameters, ansatz needs {}", x0.size(),
                 numParams());
    }
    // Gate counts (hence latency) are angle-independent, so x0 stands in
    // for the trained parameters here.
    device::LatencyModel latency(options_.latencyDevice);
    attempt_s = latency.executionTimeSeconds(
        circuit::optimizeCircuit(circuit::transpile(
            buildCircuit(x0),
            {.mode = circuit::TranspileMode::GrayCode, .lowerToCx = true})),
        options_.shots);

    auto optimizer = opt::makeOptimizer(options_.optimizer, oo);
    res.training = optimizer->minimize(objective, x0);
    wall.stop();

    circuit::Circuit lowered = circuit::transpile(
        buildCircuit(res.training.x),
        {.mode = circuit::TranspileMode::GrayCode, .lowerToCx = true});
    circuit::Circuit optimized = circuit::optimizeCircuit(lowered);
    res.circuitDepth = optimized.depth();
    res.circuitCx = optimized.countCx();

    auto sampled = harness_.sample(
        "pqaoa-final", options_.shots, problem_.numVars(),
        options_.seed + 1, attempt_s, [&](Rng &job_rng, uint64_t shots) {
            return sampleFinal(res.training.x, job_rng, shots);
        });
    if (sampled.ok()) {
        res.counts = std::move(sampled.value());
    } else {
        warn("P-QAOA final sampling failed ({}); using the clean "
             "simulator",
             sampled.error().toString());
        Rng sample_rng(options_.seed + 1);
        res.counts = sampleFinal(res.training.x, sample_rng, options_.shots);
    }
    finalizeMetrics(problem_, lambda_, res);
    harness_.finalize(res);

    res.classicalSeconds = std::max(0.0, wall.seconds() - sim_time.seconds());
    if (options_.noise.enabled()) {
        // The executor clock accounts every attempt (including retried
        // ones), injected timeouts, and backoff sleeps.
        res.quantumSeconds = harness_.executor().elapsedSeconds();
    } else {
        res.quantumSeconds =
            latency.executionTimeSeconds(optimized, options_.shots) *
            res.training.evaluations;
    }
    return res;
}

} // namespace rasengan::baselines
