/**
 * @file
 * Penalty-term-based QAOA (P-QAOA) [39], with the two QAOA optimization
 * techniques the paper composes it with: FrozenQubits-style hotspot
 * freezing [3] and Red-QAOA-style parameter seeding [40].
 *
 * The circuit is standard QAOA over the penalty QUBO: |+>^n, then L layers
 * of (diagonal objective phase, RX mixer).  Training uses the exact
 * expectation of the penalized objective; the final distribution is
 * sampled.  FrozenQubits removes the highest-degree QUBO variables from
 * the circuit by pinning them to the trivial solution's values; Red-QAOA
 * seeds (gamma, beta) with a linear annealing ramp instead of a flat
 * initial point.
 */

#ifndef RASENGAN_BASELINES_PQAOA_H
#define RASENGAN_BASELINES_PQAOA_H

#include <vector>

#include "baselines/vqa.h"
#include "circuit/circuit.h"
#include "problems/problem.h"

namespace rasengan::baselines {

struct PqaoaOptions : VqaOptions
{
    int frozenQubits = 0;  ///< FrozenQubits: hotspot variables to pin
    bool smartInit = false;///< Red-QAOA: annealing-ramp initial parameters
};

class Pqaoa
{
  public:
    Pqaoa(problems::Problem problem, PqaoaOptions options = {});

    const problems::Problem &problem() const { return problem_; }
    int numActiveQubits() const { return static_cast<int>(active_.size()); }
    int numParams() const { return 2 * options_.layers; }

    /**
     * Gate-level QAOA circuit over the active (unfrozen) qubits for
     * parameters [gamma_1..gamma_L, beta_1..beta_L].
     */
    circuit::Circuit buildCircuit(const std::vector<double> &params) const;

    /** Map an active-register outcome back to a full-variable outcome. */
    BitVec lift(const BitVec &active_outcome) const;

    /** Train and return the final sampled result. */
    VqaResult run();

  private:
    std::vector<double> initialParams() const;
    double exactExpectation(const std::vector<double> &params) const;
    qsim::Counts sampleFinal(const std::vector<double> &params, Rng &rng,
                             uint64_t shots) const;

    problems::Problem problem_;
    PqaoaOptions options_;
    VqaExecHarness harness_; ///< resilient execution engine
    double lambda_;
    problems::QuadraticObjective qubo_;        ///< full-variable QUBO
    std::vector<int> active_;                  ///< active var per qubit
    BitVec frozenValues_;                      ///< pinned bits (full space)
    problems::QuadraticObjective reducedQubo_; ///< over active qubits
    std::vector<double> diagonal_;             ///< reduced QUBO values
};

} // namespace rasengan::baselines

#endif // RASENGAN_BASELINES_PQAOA_H
