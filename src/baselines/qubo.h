/**
 * @file
 * Penalty-QUBO construction and diagonal-Hamiltonian utilities shared by
 * the baseline VQAs.
 *
 * Penalty-term methods (Section 2.1) fold the constraints into the
 * objective as lambda * ||C x - b||^2, which stays quadratic in the
 * binaries and therefore maps to an Ising-style diagonal Hamiltonian whose
 * time evolution is a layer of RZ and CX-RZ-CX gates.
 */

#ifndef RASENGAN_BASELINES_QUBO_H
#define RASENGAN_BASELINES_QUBO_H

#include <vector>

#include "circuit/circuit.h"
#include "problems/problem.h"
#include "qsim/pauli.h"

namespace rasengan::baselines {

/**
 * f(x) + lambda * ||C x - b||^2 expanded to quadratic pseudo-boolean
 * form.  @p lambda < 0 selects problems::defaultPenaltyLambda.
 */
problems::QuadraticObjective penaltyQubo(const problems::Problem &problem,
                                         double lambda = -1.0);

/**
 * Append the time evolution e^{-i gamma F} of the diagonal Hamiltonian of
 * the quadratic function @p f over qubits 0..n-1 of @p circ: P rotations
 * for linear terms and CX-P-CX conjugations for quadratic terms (global
 * phase from the constant term is dropped).
 */
void appendObjectivePhase(circuit::Circuit &circ,
                          const problems::QuadraticObjective &f,
                          double gamma);

/**
 * Precompute f(x) for every basis index over @p num_vars variables
 * (dense-simulation fast path; 2^n doubles).
 */
std::vector<double> diagonalValues(const problems::QuadraticObjective &f,
                                   int num_vars);

/**
 * Ising form of a quadratic pseudo-boolean function over @p num_vars
 * qubits: substitute x_i = (1 - Z_i) / 2, producing an all-Z (diagonal)
 * Pauli Hamiltonian with H(x-basis-state) = f(x).
 */
qsim::PauliHamiltonian isingHamiltonian(const problems::QuadraticObjective &f,
                                        int num_vars);

} // namespace rasengan::baselines

#endif // RASENGAN_BASELINES_QUBO_H
