#include "baselines/chocoq.h"

#include <cmath>

#include "baselines/qubo.h"
#include "circuit/optimize.h"
#include "circuit/transpile.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/basis.h"
#include "device/latency.h"
#include "opt/factory.h"
#include "problems/metrics.h"

namespace rasengan::baselines {

Chocoq::Chocoq(problems::Problem problem, ChocoqOptions options)
    : problem_(std::move(problem)), options_(std::move(options)),
      harness_(options_.resilience)
{
    lambda_ = options_.penaltyLambda >= 0.0
                  ? options_.penaltyLambda
                  : problems::defaultPenaltyLambda(problem_);
    // Choco-Q drives the mixer with the raw homogeneous basis; Rasengan's
    // simplification pass (Algorithm 1) is its own contribution.
    transitions_ = core::makeTransitions(core::homogeneousBasis(problem_));
}

circuit::Circuit
Chocoq::buildCircuit(const std::vector<double> &params) const
{
    const int layers = options_.layers;
    panic_if(static_cast<int>(params.size()) != 2 * layers,
             "expected {} parameters, got {}", 2 * layers, params.size());
    const int n = problem_.numVars();

    circuit::Circuit circ(n);
    for (int q = 0; q < n; ++q)
        if (problem_.trivialFeasible().get(q))
            circ.x(q);
    for (int l = 0; l < layers; ++l) {
        double gamma = params[l];
        double beta = params[layers + l];
        appendObjectivePhase(circ, problem_.objectiveFn(), gamma);
        for (const auto &transition : transitions_)
            transition.appendToCircuit(circ, beta);
    }
    return circ;
}

qsim::SparseState
Chocoq::simulate(const std::vector<double> &params) const
{
    const int layers = options_.layers;
    const int n = problem_.numVars();
    qsim::SparseState state(n, problem_.trivialFeasible());
    for (int l = 0; l < layers; ++l) {
        double gamma = params[l];
        double beta = params[layers + l];
        state.applyPhase([&](const BitVec &x) {
            return -gamma * problem_.objective(x);
        });
        for (const auto &transition : transitions_)
            transition.applyTo(state, beta);
    }
    return state;
}

double
Chocoq::exactExpectation(const std::vector<double> &params) const
{
    qsim::SparseState state = simulate(params);
    double acc = 0.0;
    const std::vector<BitVec> &keys = state.keys();
    const auto &amps = state.amps();
    for (size_t i = 0; i < keys.size(); ++i)
        acc += std::norm(amps[i]) * problem_.objective(keys[i]);
    return acc;
}

qsim::Counts
Chocoq::sampleFinal(const std::vector<double> &params, Rng &rng,
                    uint64_t shots) const
{
    if (options_.noise.enabled()) {
        circuit::Circuit lowered = circuit::transpile(
            buildCircuit(params),
            {.mode = circuit::TranspileMode::AncillaLadder,
             .lowerToCx = true});
        return qsim::sampleNoisy(lowered, lowered.numQubits(), BitVec{},
                                 options_.noise, rng, shots,
                                 options_.trajectories, problem_.numVars());
    }
    return simulate(params).sample(rng, shots);
}

VqaResult
Chocoq::run()
{
    VqaResult res;
    res.numParams = numParams();

    Stopwatch wall;
    wall.start();
    Stopwatch sim_time;

    Rng rng(options_.seed);
    double attempt_s = 0.0; // per-execution latency, set once x0 is known
    auto objective = [&](const std::vector<double> &params) {
        ScopedTimer guard(sim_time);
        if (options_.noise.enabled()) {
            const uint64_t job_seed = rng.engine()();
            auto sampled = harness_.sample(
                "chocoq-train", options_.shots, problem_.numVars(),
                job_seed, attempt_s, [&](Rng &job_rng, uint64_t shots) {
                    return sampleFinal(params, job_rng, shots);
                });
            if (!sampled.ok())
                return VqaExecHarness::kFailureScore;
            return problems::expectedObjective(problem_, sampled.value(),
                                               lambda_);
        }
        auto value = harness_.expectation("chocoq-train", attempt_s, [&] {
            return exactExpectation(params);
        });
        return value.ok() ? value.value() : VqaExecHarness::kFailureScore;
    };

    std::vector<double> x0 = options_.initialParams;
    if (x0.empty()) {
        x0.assign(numParams(), 0.2);
    } else {
        fatal_if(static_cast<int>(x0.size()) != numParams(),
                 "warm start has {} parameters, ansatz needs {}", x0.size(),
                 numParams());
    }

    // Gate counts (hence latency) are angle-independent, so x0 stands in
    // for the trained parameters here.
    device::LatencyModel latency(options_.latencyDevice);
    attempt_s = latency.executionTimeSeconds(
        circuit::optimizeCircuit(circuit::transpile(
            buildCircuit(x0),
            {.mode = circuit::TranspileMode::AncillaLadder,
             .lowerToCx = true})),
        options_.shots);

    opt::OptOptions oo;
    oo.maxIterations = options_.maxIterations;
    oo.initialStep = 0.3;
    oo.tolerance = 1e-5;
    oo.seed = options_.seed;
    auto optimizer = opt::makeOptimizer(options_.optimizer, oo);
    res.training = optimizer->minimize(objective, x0);
    wall.stop();

    circuit::Circuit lowered = circuit::transpile(
        buildCircuit(res.training.x),
        {.mode = circuit::TranspileMode::AncillaLadder, .lowerToCx = true});
    circuit::Circuit optimized = circuit::optimizeCircuit(lowered);
    res.circuitDepth = optimized.depth();
    res.circuitCx = optimized.countCx();

    auto sampled = harness_.sample(
        "chocoq-final", options_.shots, problem_.numVars(),
        options_.seed + 1, attempt_s, [&](Rng &job_rng, uint64_t shots) {
            return sampleFinal(res.training.x, job_rng, shots);
        });
    if (sampled.ok()) {
        res.counts = std::move(sampled.value());
    } else {
        warn("Choco-Q final sampling failed ({}); using the clean "
             "simulator",
             sampled.error().toString());
        Rng sample_rng(options_.seed + 1);
        res.counts = sampleFinal(res.training.x, sample_rng, options_.shots);
    }
    finalizeMetrics(problem_, lambda_, res);
    harness_.finalize(res);

    res.classicalSeconds = std::max(0.0, wall.seconds() - sim_time.seconds());
    if (options_.noise.enabled()) {
        // The executor clock accounts every attempt (including retried
        // ones), injected timeouts, and backoff sleeps.
        res.quantumSeconds = harness_.executor().elapsedSeconds();
    } else {
        res.quantumSeconds =
            latency.executionTimeSeconds(optimized, options_.shots) *
            res.training.evaluations;
    }
    return res;
}

} // namespace rasengan::baselines
