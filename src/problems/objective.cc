#include "problems/objective.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace rasengan::problems {

void
QuadraticObjective::addLinear(int i, double coeff)
{
    panic_if(i < 0 || i >= numVars_, "linear index {} out of range", i);
    linear_[i] += coeff;
}

void
QuadraticObjective::addQuadratic(int i, int j, double coeff)
{
    panic_if(i < 0 || i >= numVars_ || j < 0 || j >= numVars_,
             "quadratic index ({}, {}) out of range", i, j);
    if (i == j) {
        linear_[i] += coeff;
        return;
    }
    if (i > j)
        std::swap(i, j);
    quad_.emplace_back(i, j, coeff);
}

double
QuadraticObjective::eval(const BitVec &x) const
{
    double acc = constant_;
    for (int i = 0; i < numVars_; ++i)
        if (x.get(i))
            acc += linear_[i];
    for (const auto &[i, j, c] : quad_)
        if (x.get(i) && x.get(j))
            acc += c;
    return acc;
}

void
QuadraticObjective::normalize()
{
    std::map<std::pair<int, int>, double> merged;
    for (const auto &[i, j, c] : quad_)
        merged[{i, j}] += c;
    quad_.clear();
    for (const auto &[key, c] : merged)
        if (c != 0.0)
            quad_.emplace_back(key.first, key.second, c);
}

void
QuadraticObjective::accumulate(const QuadraticObjective &other, double scale)
{
    panic_if(other.numVars_ != numVars_,
             "accumulating objective over {} vars into {}", other.numVars_,
             numVars_);
    constant_ += scale * other.constant_;
    for (int i = 0; i < numVars_; ++i)
        linear_[i] += scale * other.linear_[i];
    for (const auto &[i, j, c] : other.quad_)
        quad_.emplace_back(i, j, scale * c);
    normalize();
}

} // namespace rasengan::problems
