#include "problems/scp.h"

#include <set>

#include "common/logging.h"

namespace rasengan::problems {

Problem
makeScp(const std::string &id, const ScpConfig &config, Rng &rng)
{
    const int e = config.elements;
    const int s = config.totalSets();
    fatal_if(e < 2, "SCP needs at least two elements");
    fatal_if(s > kMaxBits, "SCP instance with {} vars exceeds {}", s,
             kMaxBits);

    // membership[set] = bitmask of covered elements.
    std::vector<uint64_t> membership(s, 0);

    // One singleton per element: guarantees feasibility and gives the
    // O(s) trivial solution ("select every singleton").
    for (int elem = 0; elem < e; ++elem)
        membership[elem] = uint64_t{1} << elem;

    // Random pair sets (distinct pairs while possible).
    std::set<uint64_t> seen;
    for (int k = 0; k < config.pairSets; ++k) {
        uint64_t mask = 0;
        for (int attempt = 0; attempt < 64; ++attempt) {
            int a = static_cast<int>(rng.uniformInt(0, e - 1));
            int b = static_cast<int>(rng.uniformInt(0, e - 1));
            if (a == b)
                continue;
            mask = (uint64_t{1} << a) | (uint64_t{1} << b);
            if (seen.insert(mask).second || attempt > 48)
                break;
        }
        membership[e + k] = mask;
    }

    // Random larger blocks.
    for (int k = 0; k < config.blockSets; ++k) {
        int size = static_cast<int>(
            rng.uniformInt(3, std::max(3, std::min(e, 4))));
        uint64_t mask = 0;
        while (__builtin_popcountll(mask) < size)
            mask |= uint64_t{1} << rng.uniformInt(0, e - 1);
        membership[e + config.pairSets + k] = mask;
    }

    linalg::IntMat c(e, s);
    linalg::IntVec b(e, 1);
    for (int elem = 0; elem < e; ++elem)
        for (int set = 0; set < s; ++set)
            if (membership[set] & (uint64_t{1} << elem))
                c.at(elem, set) = 1;

    // Per-element cost decreases with set size (bulk discount), so
    // larger disjoint sets are worth selecting and the optimum is not
    // simply "all singletons".
    QuadraticObjective f(s);
    for (int set = 0; set < s; ++set) {
        int size = __builtin_popcountll(membership[set]);
        double cost = size + 1.0 +
                      static_cast<double>(
                          rng.uniformInt(config.minCost, config.maxCost)) /
                          size;
        f.addLinear(set, cost);
    }

    // Trivial feasible (O(s)): all singletons.
    BitVec trivial;
    for (int elem = 0; elem < e; ++elem)
        trivial.set(elem);

    return Problem(id, "SCP", std::move(c), std::move(b), std::move(f),
                   trivial);
}

} // namespace rasengan::problems
