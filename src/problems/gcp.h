/**
 * @file
 * Graph coloring problem (GCP) generator [23].
 *
 * Color g vertices with k colors so adjacent vertices differ, minimizing a
 * weighted color usage (low color indices are cheaper, so the optimum uses
 * as few/cheap colors as possible):
 *   minimize  sum_{v,c} w_c x_vc,      w_c = c + 1
 *   s.t.      sum_c x_vc = 1                     for every vertex v
 *             x_uc + x_vc + s_{uv,c} = 1         for every edge, color
 *
 * Variable layout: x_vc vertex-major, then the per-(edge, color) slacks.
 * n = g k + |E| k variables, g + |E| k constraints.  The generated graph
 * is k-partite by construction (edges only across planted color classes),
 * so the planted coloring is the linear-time feasible solution
 * (Section 5.1: O(g)).
 */

#ifndef RASENGAN_PROBLEMS_GCP_H
#define RASENGAN_PROBLEMS_GCP_H

#include "common/rng.h"
#include "problems/problem.h"

namespace rasengan::problems {

struct GcpConfig
{
    int vertices = 3;
    int colors = 2;
    int edges = 2; ///< sampled without replacement across color classes
};

int gcpNumVars(const GcpConfig &config);

/** Variable index of "vertex v has color c". */
int gcpVar(const GcpConfig &config, int v, int c);

Problem makeGcp(const std::string &id, const GcpConfig &config, Rng &rng);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_GCP_H
