#include "problems/gcp.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace rasengan::problems {

int
gcpNumVars(const GcpConfig &config)
{
    return config.vertices * config.colors +
           config.edges * config.colors;
}

int
gcpVar(const GcpConfig &config, int v, int c)
{
    panic_if(v < 0 || v >= config.vertices || c < 0 || c >= config.colors,
             "gcp variable ({}, {}) out of range", v, c);
    return v * config.colors + c;
}

namespace {

int
gcpSlackVar(const GcpConfig &config, int edge, int c)
{
    return config.vertices * config.colors + edge * config.colors + c;
}

} // namespace

Problem
makeGcp(const std::string &id, const GcpConfig &config, Rng &rng)
{
    const int g = config.vertices;
    const int k = config.colors;
    const int e = config.edges;
    fatal_if(g < 2 || k < 2, "GCP needs >= 2 vertices and colors");
    const int n = gcpNumVars(config);
    fatal_if(n > kMaxBits, "GCP instance with {} vars exceeds {}", n,
             kMaxBits);

    // Planted coloring: vertex v belongs to class v mod k.
    std::vector<int> planted(g);
    for (int v = 0; v < g; ++v)
        planted[v] = v % k;

    // Sample e distinct cross-class edges (graph stays k-colorable).
    std::vector<std::pair<int, int>> candidates;
    for (int u = 0; u < g; ++u)
        for (int v = u + 1; v < g; ++v)
            if (planted[u] != planted[v])
                candidates.emplace_back(u, v);
    fatal_if(static_cast<int>(candidates.size()) < e,
             "GCP: cannot place {} cross-class edges (max {})", e,
             candidates.size());
    rng.shuffle(candidates);
    candidates.resize(e);

    linalg::IntMat c(g + e * k, n);
    linalg::IntVec b(g + e * k, 1);
    for (int v = 0; v < g; ++v)
        for (int col = 0; col < k; ++col)
            c.at(v, gcpVar(config, v, col)) = 1;
    int row = g;
    for (int edge = 0; edge < e; ++edge) {
        auto [u, v] = candidates[edge];
        for (int col = 0; col < k; ++col, ++row) {
            c.at(row, gcpVar(config, u, col)) = 1;
            c.at(row, gcpVar(config, v, col)) = 1;
            c.at(row, gcpSlackVar(config, edge, col)) = 1;
        }
    }

    // Weighted color usage: higher color indices tend to cost more, with
    // per-case noise so different cases have different optima.
    QuadraticObjective f(n);
    for (int v = 0; v < g; ++v)
        for (int col = 0; col < k; ++col)
            f.addLinear(gcpVar(config, v, col),
                        static_cast<double>(col + 1 +
                                            rng.uniformInt(0, 3)));

    // Trivial feasible (O(g)): the planted coloring with implied slacks.
    BitVec trivial;
    for (int v = 0; v < g; ++v)
        trivial.set(gcpVar(config, v, planted[v]));
    for (int edge = 0; edge < e; ++edge) {
        auto [u, v] = candidates[edge];
        for (int col = 0; col < k; ++col) {
            int used = (planted[u] == col ? 1 : 0) +
                       (planted[v] == col ? 1 : 0);
            panic_if(used > 1, "planted coloring is improper");
            if (used == 0)
                trivial.set(gcpSlackVar(config, edge, col));
        }
    }

    return Problem(id, "GCP", std::move(c), std::move(b), std::move(f),
                   trivial);
}

} // namespace rasengan::problems
