/**
 * @file
 * Set covering problem (SCP) generator [8], in the exact-cover equality
 * form the paper's constraint system C x = b requires:
 *   minimize  sum_s cost_s x_s
 *   s.t.      sum_{s : e in s} x_s = 1   for every element e
 *
 * Instance structure: one singleton set per element (so "select every
 * singleton" is the O(s) feasible solution of Section 5.1), plus random
 * pair sets and larger block sets.  Exact covers are formed by choosing
 * disjoint pairs/blocks and filling the rest with singletons, which makes
 * the feasible space combinatorially rich (the paper's 12-qubit SCP case
 * has 72 feasible selections out of 4096).
 * Variable layout: one variable per set.  n = #sets, rows = #elements.
 */

#ifndef RASENGAN_PROBLEMS_SCP_H
#define RASENGAN_PROBLEMS_SCP_H

#include "common/rng.h"
#include "problems/problem.h"

namespace rasengan::problems {

struct ScpConfig
{
    int elements = 4;
    int pairSets = 4;   ///< random 2-element sets
    int blockSets = 0;  ///< random sets of size in [3, elements]
    int minCost = 1, maxCost = 4;

    int totalSets() const { return elements + pairSets + blockSets; }
};

Problem makeScp(const std::string &id, const ScpConfig &config, Rng &rng);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_SCP_H
