/**
 * @file
 * K-partition problem (KPP) generator [6].
 *
 * Partition e weighted-graph vertices into k parts with prescribed part
 * sizes, minimizing the total weight of edges cut between parts:
 *   minimize  sum_{(u,v) in E} w_uv (1 - sum_c x_uc x_vc)
 *   s.t.      sum_c x_vc = 1       for every vertex v   (one-hot)
 *             sum_v x_vc = size_c  for every part c     (balance)
 *
 * Variable layout: x_vc, vertex-major.  n = e k, e + k constraints.
 * Trivial feasible solution: round-robin greedy assignment honoring the
 * part sizes (Section 5.1: O(e)).
 */

#ifndef RASENGAN_PROBLEMS_KPP_H
#define RASENGAN_PROBLEMS_KPP_H

#include "common/rng.h"
#include "problems/problem.h"

namespace rasengan::problems {

struct KppConfig
{
    int elements = 4;
    int parts = 2;
    double edgeProbability = 0.6;
    int minWeight = 1, maxWeight = 5;
};

int kppNumVars(const KppConfig &config);

/** Variable index of "vertex v in part c". */
int kppVar(const KppConfig &config, int v, int c);

Problem makeKpp(const std::string &id, const KppConfig &config, Rng &rng);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_KPP_H
