#include "problems/flp.h"

#include <limits>

#include "common/logging.h"

namespace rasengan::problems {

int
flpNumVars(const FlpConfig &config)
{
    return config.facilities + 2 * config.demands * config.facilities;
}

int
flpFacilityVar(const FlpConfig &config, int j)
{
    panic_if(j < 0 || j >= config.facilities, "facility {} out of range", j);
    return j;
}

int
flpAssignVar(const FlpConfig &config, int i, int j)
{
    panic_if(i < 0 || i >= config.demands || j < 0 || j >= config.facilities,
             "assignment ({}, {}) out of range", i, j);
    return config.facilities + i * config.facilities + j;
}

int
flpSlackVar(const FlpConfig &config, int i, int j)
{
    panic_if(i < 0 || i >= config.demands || j < 0 || j >= config.facilities,
             "slack ({}, {}) out of range", i, j);
    return config.facilities + config.demands * config.facilities +
           i * config.facilities + j;
}

Problem
makeFlp(const std::string &id, const FlpConfig &config, Rng &rng)
{
    const int m = config.facilities;
    const int d = config.demands;
    fatal_if(m < 1 || d < 1, "FLP needs at least one facility and demand");
    const int n = flpNumVars(config);
    fatal_if(n > kMaxBits, "FLP instance with {} vars exceeds {}", n,
             kMaxBits);

    std::vector<int64_t> open_cost(m);
    for (int j = 0; j < m; ++j)
        open_cost[j] = rng.uniformInt(config.minOpenCost, config.maxOpenCost);
    std::vector<std::vector<int64_t>> serve_cost(d, std::vector<int64_t>(m));
    for (int i = 0; i < d; ++i)
        for (int j = 0; j < m; ++j)
            serve_cost[i][j] =
                rng.uniformInt(config.minServeCost, config.maxServeCost);

    // Constraints: d assignment rows + d*m linking rows.
    linalg::IntMat c(d + d * m, n);
    linalg::IntVec b(d + d * m, 0);
    for (int i = 0; i < d; ++i) {
        for (int j = 0; j < m; ++j)
            c.at(i, flpAssignVar(config, i, j)) = 1;
        b[i] = 1;
    }
    int row = d;
    for (int i = 0; i < d; ++i) {
        for (int j = 0; j < m; ++j, ++row) {
            c.at(row, flpAssignVar(config, i, j)) = 1;
            c.at(row, flpSlackVar(config, i, j)) = 1;
            c.at(row, flpFacilityVar(config, j)) = -1;
        }
    }

    QuadraticObjective f(n);
    for (int j = 0; j < m; ++j)
        f.addLinear(flpFacilityVar(config, j),
                    static_cast<double>(open_cost[j]));
    for (int i = 0; i < d; ++i)
        for (int j = 0; j < m; ++j)
            f.addLinear(flpAssignVar(config, i, j),
                        static_cast<double>(serve_cost[i][j]));

    // Trivial feasible (O(d)): open facility 0, everything assigned to it.
    BitVec trivial;
    trivial.set(flpFacilityVar(config, 0));
    for (int i = 0; i < d; ++i)
        trivial.set(flpAssignVar(config, i, 0));
    // Linking rows for j != 0 hold with x = s = y = 0; for j = 0 the slack
    // stays 0 because x_i0 = y_0 = 1.

    Problem problem(id, "FLP", std::move(c), std::move(b), std::move(f),
                    trivial);

    // Closed-form optimum: enumerate nonempty open-facility subsets, each
    // demand served by its cheapest open facility.
    fatal_if(m > 20, "FLP closed-form optimum limited to 20 facilities");
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t mask = 1; mask < (1u << m); ++mask) {
        double total = 0.0;
        for (int j = 0; j < m; ++j)
            if (mask & (1u << j))
                total += static_cast<double>(open_cost[j]);
        for (int i = 0; i < d; ++i) {
            int64_t cheapest = std::numeric_limits<int64_t>::max();
            for (int j = 0; j < m; ++j)
                if (mask & (1u << j))
                    cheapest = std::min(cheapest, serve_cost[i][j]);
            total += static_cast<double>(cheapest);
        }
        best = std::min(best, total);
    }
    problem.setExactOptimal(best);
    return problem;
}

} // namespace rasengan::problems
