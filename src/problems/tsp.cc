#include "problems/tsp.h"

#include "common/logging.h"

namespace rasengan::problems {

int
tspNumVars(const TspConfig &config)
{
    return config.cities * config.cities;
}

int
tspVar(const TspConfig &config, int city, int position)
{
    panic_if(city < 0 || city >= config.cities || position < 0 ||
                 position >= config.cities,
             "tsp variable ({}, {}) out of range", city, position);
    return city * config.cities + position;
}

Problem
makeTsp(const std::string &id, const TspConfig &config, Rng &rng)
{
    const int v = config.cities;
    fatal_if(v < 3, "TSP needs at least 3 cities");
    const int n = tspNumVars(config);
    fatal_if(n > kMaxBits, "TSP instance with {} vars exceeds {}", n,
             kMaxBits);

    std::vector<std::vector<int64_t>> dist(v, std::vector<int64_t>(v, 0));
    for (int a = 0; a < v; ++a) {
        for (int b = 0; b < v; ++b) {
            if (a == b)
                continue;
            if (config.symmetric && b < a)
                dist[a][b] = dist[b][a];
            else
                dist[a][b] =
                    rng.uniformInt(config.minDistance, config.maxDistance);
        }
    }

    // Assignment-polytope constraints: city rows then position rows.
    linalg::IntMat c(2 * v, n);
    linalg::IntVec b(2 * v, 1);
    for (int city = 0; city < v; ++city)
        for (int pos = 0; pos < v; ++pos)
            c.at(city, tspVar(config, city, pos)) = 1;
    for (int pos = 0; pos < v; ++pos)
        for (int city = 0; city < v; ++city)
            c.at(v + pos, tspVar(config, city, pos)) = 1;

    // Closed-tour cost: consecutive positions (wrapping) of every city
    // pair.
    QuadraticObjective f(n);
    for (int pos = 0; pos < v; ++pos) {
        int next = (pos + 1) % v;
        for (int a = 0; a < v; ++a) {
            for (int bcity = 0; bcity < v; ++bcity) {
                if (a == bcity)
                    continue;
                f.addQuadratic(tspVar(config, a, pos),
                               tspVar(config, bcity, next),
                               static_cast<double>(dist[a][bcity]));
            }
        }
    }
    f.normalize();

    // Trivial feasible (O(v)): the identity tour 0 -> 1 -> ... -> v-1.
    BitVec trivial;
    for (int city = 0; city < v; ++city)
        trivial.set(tspVar(config, city, city));

    return Problem(id, "TSP", std::move(c), std::move(b), std::move(f),
                   trivial);
}

} // namespace rasengan::problems
