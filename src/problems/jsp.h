/**
 * @file
 * Job scheduling problem (JSP) generator: identical-machines scheduling
 * [42].
 *
 * Assign j jobs with processing times p to m identical machines,
 * minimizing the sum of squared machine loads (the standard smooth proxy
 * for makespan balance):
 *   minimize  sum_m (sum_j p_j x_jm)^2
 *   s.t.      sum_m x_jm = 1   for every job j
 *
 * Variable layout: x_jm, job-major.  n = j m variables, j constraints.
 * Trivial feasible solution: every job on machine 0 (Section 5.1: O(j)).
 */

#ifndef RASENGAN_PROBLEMS_JSP_H
#define RASENGAN_PROBLEMS_JSP_H

#include "common/rng.h"
#include "problems/problem.h"

namespace rasengan::problems {

struct JspConfig
{
    int jobs = 3;
    int machines = 2;
    int minTime = 1, maxTime = 6;
};

int jspNumVars(const JspConfig &config);

/** Variable index of "job j on machine m". */
int jspVar(const JspConfig &config, int job, int machine);

Problem makeJsp(const std::string &id, const JspConfig &config, Rng &rng);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_JSP_H
