/**
 * @file
 * Quadratic pseudo-boolean objective functions.
 *
 * Every benchmark family's objective is at most quadratic in the binary
 * variables: f(x) = c + sum_i l_i x_i + sum_{i<j} q_ij x_i x_j.  This is
 * also the form penalty-term methods square constraints into, so the same
 * type backs the penalized objectives of P-QAOA and HEA.
 */

#ifndef RASENGAN_PROBLEMS_OBJECTIVE_H
#define RASENGAN_PROBLEMS_OBJECTIVE_H

#include <tuple>
#include <vector>

#include "common/bitvec.h"

namespace rasengan::problems {

class QuadraticObjective
{
  public:
    QuadraticObjective() = default;
    explicit QuadraticObjective(int num_vars)
        : numVars_(num_vars), linear_(num_vars, 0.0)
    {}

    int numVars() const { return numVars_; }

    double constant() const { return constant_; }
    void addConstant(double c) { constant_ += c; }

    const std::vector<double> &linear() const { return linear_; }
    void addLinear(int i, double coeff);

    /** Quadratic terms as (i, j, coeff) with i < j. */
    const std::vector<std::tuple<int, int, double>> &quadratic() const
    {
        return quad_;
    }

    /**
     * Add coeff * x_i * x_j.  i == j folds into the linear term
     * (x^2 = x for binaries).
     */
    void addQuadratic(int i, int j, double coeff);

    /** Evaluate at the assignment @p x. */
    double eval(const BitVec &x) const;

    /** True when every quadratic coefficient is zero. */
    bool isLinear() const { return quad_.empty(); }

    /** Merge duplicate quadratic index pairs (normalization). */
    void normalize();

    /** this += scale * other (dimensions must match). */
    void accumulate(const QuadraticObjective &other, double scale = 1.0);

  private:
    int numVars_ = 0;
    double constant_ = 0.0;
    std::vector<double> linear_;
    std::vector<std::tuple<int, int, double>> quad_;
};

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_OBJECTIVE_H
