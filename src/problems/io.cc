#include "problems/io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace rasengan::problems {

std::string
writeProblem(const Problem &problem)
{
    std::ostringstream os;
    os.precision(17); // lossless double round trip
    os << "problem " << problem.id() << " " << problem.family() << "\n";
    os << "vars " << problem.numVars() << "\n";

    const QuadraticObjective &f = problem.objectiveFn();
    if (f.constant() != 0.0)
        os << "objective constant " << f.constant() << "\n";
    for (int i = 0; i < f.numVars(); ++i)
        if (f.linear()[i] != 0.0)
            os << "objective linear " << i << " " << f.linear()[i] << "\n";
    // Quadratic terms are stored in insertion order, which depends on
    // the construction path (generator vs. parser vs. accumulate), so
    // merge and sort them here: two equal problems must serialize to
    // the same bytes -- the serve layer content-addresses its caches
    // with this text.
    std::map<std::pair<int, int>, double> quad;
    for (const auto &[i, j, q] : f.quadratic())
        quad[{i, j}] += q;
    for (const auto &[key, q] : quad)
        if (q != 0.0)
            os << "objective quadratic " << key.first << " " << key.second
               << " " << q << "\n";

    const auto &c = problem.constraints();
    for (int r = 0; r < c.rows(); ++r) {
        os << "constraint " << problem.bounds()[r];
        for (int col = 0; col < c.cols(); ++col)
            if (c.at(r, col) != 0)
                os << " " << col << ":" << c.at(r, col);
        os << "\n";
    }
    os << "feasible "
       << problem.trivialFeasible().toString(problem.numVars()) << "\n";
    return os.str();
}

std::string
canonicalProblemText(const Problem &problem)
{
    return writeProblem(problem);
}

namespace {

/**
 * Strict integer token parse: the whole token must be a decimal integer
 * within range (atoi/atoll silently return 0 on garbage and have UB-ish
 * saturation on overflow, which let corrupted files through unnoticed).
 */
bool
parseIntToken(const std::string &token, long long &out)
{
    if (token.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE)
        return false;
    out = value;
    return true;
}

struct Parser
{
    ProblemParseResult result;

    std::string id, family;
    int num_vars = -1;
    double obj_constant = 0.0;
    std::vector<std::pair<int, double>> obj_linear;
    std::vector<std::tuple<int, int, double>> obj_quadratic;
    std::vector<std::pair<linalg::IntVec, int64_t>> rows;
    std::optional<BitVec> feasible;

    bool
    fail(int line, const std::string &message)
    {
        result.error = message;
        result.errorLine = line;
        return false;
    }

    bool
    checkVar(int line, int var)
    {
        if (num_vars < 0)
            return fail(line, "statement before 'vars'");
        if (var < 0 || var >= num_vars)
            return fail(line, "variable index out of range");
        return true;
    }

    bool
    parseLine(int line_no, const std::string &line)
    {
        std::istringstream ss(line);
        std::string keyword;
        if (!(ss >> keyword) || keyword[0] == '#')
            return true;

        if (keyword == "problem") {
            if (!(ss >> id >> family))
                return fail(line_no, "malformed problem header");
            return true;
        }
        if (keyword == "vars") {
            if (!(ss >> num_vars) || num_vars < 1 || num_vars > kMaxBits)
                return fail(line_no, "malformed vars count");
            return true;
        }
        if (keyword == "objective") {
            std::string kind;
            if (!(ss >> kind))
                return fail(line_no, "malformed objective line");
            if (kind == "constant") {
                double v;
                if (!(ss >> v) || !std::isfinite(v))
                    return fail(line_no, "malformed objective constant");
                obj_constant += v;
                return true;
            }
            if (kind == "linear") {
                int var;
                double v;
                if (!(ss >> var >> v) || !std::isfinite(v) ||
                    !checkVar(line_no, var))
                    return fail(line_no, "malformed linear term");
                obj_linear.emplace_back(var, v);
                return true;
            }
            if (kind == "quadratic") {
                int a, b;
                double v;
                if (!(ss >> a >> b >> v) || !std::isfinite(v) ||
                    !checkVar(line_no, a) || !checkVar(line_no, b)) {
                    return fail(line_no, "malformed quadratic term");
                }
                obj_quadratic.emplace_back(a, b, v);
                return true;
            }
            return fail(line_no, "unknown objective kind '" + kind + "'");
        }
        if (keyword == "constraint") {
            if (num_vars < 0)
                return fail(line_no, "constraint before 'vars'");
            int64_t bound;
            if (!(ss >> bound))
                return fail(line_no, "malformed constraint bound");
            linalg::IntVec row(num_vars, 0);
            std::string entry;
            bool any = false;
            while (ss >> entry) {
                size_t colon = entry.find(':');
                if (colon == std::string::npos)
                    return fail(line_no, "expected var:coeff entry");
                long long var = 0;
                long long coeff = 0;
                if (!parseIntToken(entry.substr(0, colon), var) ||
                    !parseIntToken(entry.substr(colon + 1), coeff))
                    return fail(line_no, "malformed var:coeff entry");
                // Range-check on the wide type: a 2^32-ish index must not
                // wrap into a valid int before checkVar sees it.
                if (var < 0 || var >= num_vars)
                    return fail(line_no, "variable index out of range");
                if (!checkVar(line_no, static_cast<int>(var)))
                    return false;
                row[static_cast<int>(var)] += coeff;
                any = true;
            }
            if (!any)
                return fail(line_no, "constraint with no terms");
            rows.emplace_back(std::move(row), bound);
            return true;
        }
        if (keyword == "feasible") {
            std::string bits;
            if (!(ss >> bits) || num_vars < 0 ||
                static_cast<int>(bits.size()) != num_vars) {
                return fail(line_no, "malformed feasible bitstring");
            }
            for (char ch : bits)
                if (ch != '0' && ch != '1')
                    return fail(line_no, "feasible string must be binary");
            feasible = BitVec::fromString(bits);
            return true;
        }
        return fail(line_no, "unknown keyword '" + keyword + "'");
    }

    bool
    finish()
    {
        if (id.empty())
            return fail(1, "missing 'problem' header");
        if (num_vars < 0)
            return fail(1, "missing 'vars'");
        if (rows.empty())
            return fail(1, "missing constraints");
        if (!feasible)
            return fail(1, "missing 'feasible' line");

        linalg::IntMat c(static_cast<int>(rows.size()), num_vars);
        linalg::IntVec b(rows.size());
        for (size_t r = 0; r < rows.size(); ++r) {
            for (int col = 0; col < num_vars; ++col)
                c.at(static_cast<int>(r), col) = rows[r].first[col];
            b[r] = rows[r].second;
        }
        QuadraticObjective f(num_vars);
        f.addConstant(obj_constant);
        for (const auto &[var, v] : obj_linear)
            f.addLinear(var, v);
        for (const auto &[a, b2, v] : obj_quadratic)
            f.addQuadratic(a, b2, v);
        f.normalize();

        // Validate feasibility here (Problem's constructor aborts).
        linalg::IntVec x(num_vars, 0);
        for (int i = 0; i < num_vars; ++i)
            x[i] = feasible->get(i) ? 1 : 0;
        if (applyInt(c, x) != b)
            return fail(1, "'feasible' point violates the constraints");

        result.problem.emplace(id, family, std::move(c), std::move(b),
                               std::move(f), *feasible);
        return true;
    }
};

} // namespace

ProblemParseResult
parseProblem(const std::string &text)
{
    Parser parser;
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    bool ok = true;
    while (ok && std::getline(stream, line)) {
        ++line_no;
        ok = parser.parseLine(line_no, line);
    }
    if (ok)
        parser.finish();
    return std::move(parser.result);
}

} // namespace rasengan::problems
