/**
 * @file
 * Portfolio optimization generator -- the "financial investment"
 * application the paper's introduction motivates (cf. [5], QAOA
 * portfolio benchmarking).
 *
 * Markowitz-style binary selection of k assets under a budget:
 *   minimize  -sum_i r_i x_i + q * sum_{i<j} sigma_ij x_i x_j  (+ shift)
 *   s.t.      sum_i x_i = k                  (cardinality, equality)
 *             sum_i cost_i x_i <= budget     (inequality -> slack bits)
 *
 * Built through ProblemBuilder, so this family exercises the
 * inequality-to-equality compilation path end to end.  The constant
 * shift keeps every objective value positive so ARG stays defined.
 */

#ifndef RASENGAN_PROBLEMS_PORTFOLIO_H
#define RASENGAN_PROBLEMS_PORTFOLIO_H

#include "common/rng.h"
#include "problems/problem.h"

namespace rasengan::problems {

struct PortfolioConfig
{
    int assets = 6;
    int pick = 3;            ///< cardinality k
    double riskAversion = 0.5;
    int minReturn = 1, maxReturn = 9;
    int minCost = 1, maxCost = 5;
    /** Budget headroom over the k cheapest assets (guarantees
     *  feasibility of the greedy pick). */
    int budgetSlack = 2;
};

Problem makePortfolio(const std::string &id, const PortfolioConfig &config,
                      Rng &rng);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_PORTFOLIO_H
