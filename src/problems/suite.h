/**
 * @file
 * The 20-benchmark suite of Table 2 (F1..F4, K1..K4, J1..J4, S1..S4,
 * G1..G4) and the large-scale FLP series of Figure 10.
 *
 * Benchmark sizes are scaled so the dense-simulated baselines remain
 * tractable on a CPU (6..18 qubits), mirroring the scaling-down the
 * paper's own artifact applies for reproduction.  Instances are generated
 * deterministically from (benchmark id, case index): the paper's "400
 * cases from relevant literature" per family become seeded random
 * instances with the family's structure.
 */

#ifndef RASENGAN_PROBLEMS_SUITE_H
#define RASENGAN_PROBLEMS_SUITE_H

#include <string>
#include <vector>

#include "problems/problem.h"

namespace rasengan::problems {

/** The 20 benchmark ids in Table 2 order: F1..F4, K1..K4, ..., G1..G4. */
std::vector<std::string> benchmarkIds();

/** True when @p id names a suite benchmark. */
bool isBenchmarkId(const std::string &id);

/**
 * Instantiate suite benchmark @p id; @p case_index selects one of the
 * family's random cases (deterministic: same (id, case) -> same
 * instance).
 */
Problem makeBenchmark(const std::string &id, uint64_t case_index = 0);

/**
 * Variable counts of the FLP scalability series (Figure 10): instances
 * from 6 to 105 variables.
 */
std::vector<int> scalabilityFlpSizes();

/**
 * The scalability FLP instance with @p num_vars variables (must be one of
 * scalabilityFlpSizes()).  Enumeration is disabled beyond 24 variables;
 * the closed-form FLP optimum keeps ARG computable.
 */
Problem makeScalabilityFlp(int num_vars, uint64_t case_index = 0);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_SUITE_H
