#include "problems/builder.h"

#include <algorithm>

#include "common/logging.h"

namespace rasengan::problems {

ProblemBuilder::ProblemBuilder(std::string id, std::string family,
                               int num_vars)
    : id_(std::move(id)), family_(std::move(family)), numVars_(num_vars),
      totalVars_(num_vars)
{
    fatal_if(num_vars < 1, "builder needs at least one variable");
}

void
ProblemBuilder::checkVar(int var) const
{
    fatal_if(var < 0 || var >= numVars_,
             "{}: variable {} outside the original range [0, {})", id_, var,
             numVars_);
}

void
ProblemBuilder::objectiveConstant(double c)
{
    objConstant_ += c;
}

void
ProblemBuilder::objectiveLinear(int var, double coeff)
{
    checkVar(var);
    objLinear_.emplace_back(var, coeff);
}

void
ProblemBuilder::objectiveQuadratic(int a, int b, double coeff)
{
    checkVar(a);
    checkVar(b);
    objQuadratic_.emplace_back(a, b, coeff);
}

void
ProblemBuilder::addEquality(const std::vector<Term> &terms, int64_t bound)
{
    fatal_if(terms.empty(), "{}: empty constraint", id_);
    for (const auto &[var, coeff] : terms) {
        checkVar(var);
        (void)coeff;
    }
    rows_.push_back({terms, bound, -1, {}});
}

void
ProblemBuilder::addLessEqual(const std::vector<Term> &terms, int64_t bound)
{
    fatal_if(terms.empty(), "{}: empty constraint", id_);
    int64_t lo = 0;
    for (const auto &[var, coeff] : terms) {
        checkVar(var);
        lo += std::min<int64_t>(0, coeff);
    }
    fatal_if(lo > bound, "{}: <= constraint is infeasible (min lhs {} > {})",
             id_, lo, bound);

    // Maximum slack the equality form must represent.
    int64_t smax = bound - lo;
    Row row{terms, bound, totalVars_, {}};
    if (smax > 0) {
        // Weights 1, 2, 4, ..., then a trimmed final weight so every value
        // in [0, smax] is representable and none above it.
        int64_t covered = 0;
        while (covered < smax) {
            int64_t next = std::min<int64_t>(covered + 1, smax - covered);
            row.slackWeights.push_back(next);
            covered += next;
        }
        totalVars_ += static_cast<int>(row.slackWeights.size());
        fatal_if(totalVars_ > kMaxBits,
                 "{}: slack expansion exceeds {} variables", id_, kMaxBits);
    }
    rows_.push_back(std::move(row));
}

void
ProblemBuilder::addGreaterEqual(const std::vector<Term> &terms,
                                int64_t bound)
{
    std::vector<Term> negated;
    negated.reserve(terms.size());
    for (const auto &[var, coeff] : terms)
        negated.emplace_back(var, -coeff);
    addLessEqual(negated, -bound);
}

Problem
ProblemBuilder::build(const BitVec &feasible_original) const
{
    const int n = totalVars_;
    linalg::IntMat c(static_cast<int>(rows_.size()), n);
    linalg::IntVec b(rows_.size());
    for (size_t r = 0; r < rows_.size(); ++r) {
        const Row &row = rows_[r];
        for (const auto &[var, coeff] : row.terms)
            c.at(static_cast<int>(r), var) += coeff;
        for (size_t k = 0; k < row.slackWeights.size(); ++k)
            c.at(static_cast<int>(r), row.slackBase + static_cast<int>(k)) =
                row.slackWeights[k];
        b[r] = row.bound;
    }

    QuadraticObjective f(n);
    f.addConstant(objConstant_);
    for (const auto &[var, coeff] : objLinear_)
        f.addLinear(var, coeff);
    for (const auto &[a2, b2, coeff] : objQuadratic_)
        f.addQuadratic(a2, b2, coeff);
    f.normalize();

    // Complete the feasible point with the implied slack values.
    BitVec feasible = feasible_original;
    for (const Row &row : rows_) {
        int64_t lhs = 0;
        for (const auto &[var, coeff] : row.terms)
            if (feasible_original.get(var))
                lhs += coeff;
        if (row.slackBase < 0) {
            fatal_if(lhs != row.bound,
                     "{}: provided point violates an equality row", id_);
            continue;
        }
        int64_t slack = row.bound - lhs;
        fatal_if(slack < 0,
                 "{}: provided point violates a <= row", id_);
        // Greedy fill from the largest weight (weights are a complete
        // coverage system for [0, smax]).
        int64_t remaining = slack;
        for (size_t k = row.slackWeights.size(); k-- > 0;) {
            if (row.slackWeights[k] <= remaining) {
                feasible.set(row.slackBase + static_cast<int>(k));
                remaining -= row.slackWeights[k];
            }
        }
        fatal_if(remaining != 0,
                 "{}: slack {} not representable (internal bug)", id_,
                 slack);
    }

    return Problem(id_, family_, std::move(c), std::move(b), std::move(f),
                   feasible);
}

} // namespace rasengan::problems
