#include "problems/metrics.h"

#include <cmath>
#include <limits>

namespace rasengan::problems {

double
defaultPenaltyLambda(const Problem &problem)
{
    const QuadraticObjective &f = problem.objectiveFn();
    double total = 1.0;
    for (double l : f.linear())
        total += std::abs(l);
    for (const auto &[i, j, c] : f.quadratic())
        total += std::abs(c);
    return total;
}

double
expectedObjective(const Problem &problem, const qsim::Counts &counts,
                  double penalty_lambda)
{
    return counts.expectation([&](const BitVec &x) {
        return problem.penalizedObjective(x, penalty_lambda);
    });
}

double
argFromCounts(const Problem &problem, const qsim::Counts &counts,
              double penalty_lambda)
{
    return problem.arg(expectedObjective(problem, counts, penalty_lambda));
}

double
argOfSolution(const Problem &problem, const BitVec &x, double penalty_lambda)
{
    return problem.arg(problem.penalizedObjective(x, penalty_lambda));
}

double
inConstraintsRate(const Problem &problem, const qsim::Counts &counts)
{
    return counts.fraction(
        [&](const BitVec &x) { return problem.isFeasible(x); });
}

double
bestFeasibleObjective(const Problem &problem, const qsim::Counts &counts)
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto &[outcome, n] : counts.map()) {
        (void)n;
        if (problem.isFeasible(outcome))
            best = std::min(best, problem.objective(outcome));
    }
    return best;
}

double
meanFeasibleArg(const Problem &problem)
{
    return problem.arg(problem.meanFeasibleValue());
}

} // namespace rasengan::problems
