/**
 * @file
 * A constrained binary optimization instance (Equation 1 of the paper):
 * minimize f(x) subject to C x = b, x in {0,1}^n.
 */

#ifndef RASENGAN_PROBLEMS_PROBLEM_H
#define RASENGAN_PROBLEMS_PROBLEM_H

#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "linalg/matrix.h"
#include "problems/objective.h"

namespace rasengan::problems {

class Problem
{
  public:
    /**
     * @param id        benchmark label, e.g. "F1"
     * @param family    family label, e.g. "FLP"
     * @param c         equality constraint matrix
     * @param b         constraint bounds
     * @param objective minimization objective
     * @param trivial   a feasible solution the generator constructs in
     *                  linear time (Section 5.1); validated here
     */
    Problem(std::string id, std::string family, linalg::IntMat c,
            linalg::IntVec b, QuadraticObjective objective, BitVec trivial);

    const std::string &id() const { return id_; }
    const std::string &family() const { return family_; }
    int numVars() const { return constraints_.cols(); }
    int numConstraints() const { return constraints_.rows(); }

    const linalg::IntMat &constraints() const { return constraints_; }
    const linalg::IntVec &bounds() const { return bvec_; }
    const QuadraticObjective &objectiveFn() const { return objective_; }

    /** Objective value of assignment @p x (lower is better). */
    double objective(const BitVec &x) const { return objective_.eval(x); }

    /** True iff C x = b. */
    bool isFeasible(const BitVec &x) const;

    /** L1 constraint violation ||C x - b||_1. */
    int64_t violation(const BitVec &x) const;

    /**
     * f(x) + lambda * ||C x - b||_1: the soft-constrained objective
     * penalty-term methods optimize and the value infeasible outputs are
     * scored with in the ARG metric.
     */
    double penalizedObjective(const BitVec &x, double lambda) const;

    /** The generator's linear-time feasible solution. */
    const BitVec &trivialFeasible() const { return trivial_; }

    /**
     * All feasible solutions (cached after the first call).  Aborts when
     * the instance was constructed for scalability runs and enumeration
     * was disabled.
     */
    const std::vector<BitVec> &feasibleSolutions() const;

    /** Number of feasible solutions. */
    size_t feasibleCount() const { return feasibleSolutions().size(); }

    /** Minimum objective over the feasible set. */
    double optimalValue() const;

    /** A feasible solution attaining optimalValue(). */
    BitVec optimalSolution() const;

    /** Mean objective over the feasible set (Figure 11's baseline). */
    double meanFeasibleValue() const;

    /** Maximum objective over the feasible set. */
    double worstFeasibleValue() const;

    /**
     * Approximation ratio gap (Equation 9): |(E_opt - E_real) / E_opt|.
     */
    double arg(double e_real) const;

    /**
     * Provide a closed-form optimum (used by generators whose structure
     * admits one, so scalability instances avoid enumeration).
     */
    void setExactOptimal(double value);

    /** Disable feasible-set enumeration (large scalability instances). */
    void disableEnumeration() { enumerable_ = false; }

    /** True when feasibleSolutions() may be called. */
    bool enumerationEnabled() const { return enumerable_; }

  private:
    std::string id_;
    std::string family_;
    linalg::IntMat constraints_;
    linalg::IntVec bvec_;
    QuadraticObjective objective_;
    BitVec trivial_;
    bool enumerable_ = true;
    std::optional<double> exactOptimal_;

    mutable std::optional<std::vector<BitVec>> feasibleCache_;
};

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_PROBLEM_H
