#include "problems/problem.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/solve.h"

namespace rasengan::problems {

Problem::Problem(std::string id, std::string family, linalg::IntMat c,
                 linalg::IntVec b, QuadraticObjective objective,
                 BitVec trivial)
    : id_(std::move(id)), family_(std::move(family)),
      constraints_(std::move(c)), bvec_(std::move(b)),
      objective_(std::move(objective)), trivial_(trivial)
{
    fatal_if(static_cast<int>(bvec_.size()) != constraints_.rows(),
             "{}: bounds size {} != constraint rows {}", id_, bvec_.size(),
             constraints_.rows());
    fatal_if(objective_.numVars() != constraints_.cols(),
             "{}: objective over {} vars, constraints over {}", id_,
             objective_.numVars(), constraints_.cols());
    fatal_if(!isFeasible(trivial_),
             "{}: generator's trivial solution violates the constraints",
             id_);
}

bool
Problem::isFeasible(const BitVec &x) const
{
    return violation(x) == 0;
}

int64_t
Problem::violation(const BitVec &x) const
{
    int64_t total = 0;
    const int n = numVars();
    for (int r = 0; r < constraints_.rows(); ++r) {
        int64_t acc = 0;
        for (int col = 0; col < n; ++col)
            if (x.get(col))
                acc += constraints_.at(r, col);
        total += std::abs(acc - bvec_[r]);
    }
    return total;
}

double
Problem::penalizedObjective(const BitVec &x, double lambda) const
{
    return objective_.eval(x) +
           lambda * static_cast<double>(violation(x));
}

const std::vector<BitVec> &
Problem::feasibleSolutions() const
{
    if (!feasibleCache_) {
        fatal_if(!enumerable_,
                 "{}: feasible-set enumeration disabled for this instance",
                 id_);
        auto raw = linalg::enumerateBinary(constraints_, bvec_);
        std::vector<BitVec> out;
        out.reserve(raw.size());
        for (const auto &x : raw) {
            std::vector<int> bits(x.begin(), x.end());
            out.push_back(BitVec::fromVector(bits));
        }
        feasibleCache_ = std::move(out);
    }
    return *feasibleCache_;
}

double
Problem::optimalValue() const
{
    if (exactOptimal_)
        return *exactOptimal_;
    const auto &sols = feasibleSolutions();
    fatal_if(sols.empty(), "{}: no feasible solutions", id_);
    double best = objective_.eval(sols[0]);
    for (const BitVec &x : sols)
        best = std::min(best, objective_.eval(x));
    return best;
}

BitVec
Problem::optimalSolution() const
{
    const auto &sols = feasibleSolutions();
    fatal_if(sols.empty(), "{}: no feasible solutions", id_);
    const BitVec *best = &sols[0];
    double best_v = objective_.eval(sols[0]);
    for (const BitVec &x : sols) {
        double v = objective_.eval(x);
        if (v < best_v) {
            best_v = v;
            best = &x;
        }
    }
    return *best;
}

double
Problem::meanFeasibleValue() const
{
    const auto &sols = feasibleSolutions();
    fatal_if(sols.empty(), "{}: no feasible solutions", id_);
    double acc = 0.0;
    for (const BitVec &x : sols)
        acc += objective_.eval(x);
    return acc / static_cast<double>(sols.size());
}

double
Problem::worstFeasibleValue() const
{
    const auto &sols = feasibleSolutions();
    fatal_if(sols.empty(), "{}: no feasible solutions", id_);
    double worst = objective_.eval(sols[0]);
    for (const BitVec &x : sols)
        worst = std::max(worst, objective_.eval(x));
    return worst;
}

double
Problem::arg(double e_real) const
{
    double e_opt = optimalValue();
    panic_if(std::abs(e_opt) < 1e-12,
             "{}: ARG undefined for zero optimal value", id_);
    return std::abs((e_opt - e_real) / e_opt);
}

void
Problem::setExactOptimal(double value)
{
    exactOptimal_ = value;
}

} // namespace rasengan::problems
