/**
 * @file
 * Traveling salesman (route optimization) generator -- the "route
 * optimization" application from the paper's introduction [16].
 *
 * Position-based one-hot encoding: x_{v,p} = 1 iff city v is visited at
 * position p of the tour.
 *   minimize  sum_{p} sum_{u != v} d(u, v) x_{u,p} x_{v,p+1}
 *             (positions wrap around: a closed tour)
 *   s.t.      sum_p x_{v,p} = 1   for every city  (each city once)
 *             sum_v x_{v,p} = 1   for every position (one city per stop)
 *
 * The constraint matrix is the assignment polytope (totally unimodular),
 * so Theorem 1's m-round bound applies directly; the quadratic tour cost
 * needs no objective-Hamiltonian encoding in Rasengan (the generality
 * argument of Section 3.2).  n = cities^2 variables.
 */

#ifndef RASENGAN_PROBLEMS_TSP_H
#define RASENGAN_PROBLEMS_TSP_H

#include "common/rng.h"
#include "problems/problem.h"

namespace rasengan::problems {

struct TspConfig
{
    int cities = 3;
    int minDistance = 1, maxDistance = 9;
    bool symmetric = true; ///< d(u,v) == d(v,u)
};

int tspNumVars(const TspConfig &config);

/** Variable index of "city v at tour position p". */
int tspVar(const TspConfig &config, int city, int position);

Problem makeTsp(const std::string &id, const TspConfig &config, Rng &rng);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_TSP_H
