/**
 * @file
 * Facility location problem (FLP) generator [14].
 *
 * Uncapacitated facility location with m facilities and d demands:
 *   minimize  sum_j f_j y_j + sum_{i,j} c_ij x_ij
 *   s.t.      sum_j x_ij = 1            for every demand i
 *             x_ij + s_ij - y_j = 0     for every (i, j)   (linking slack)
 *
 * Variable layout: y_0..y_{m-1}, then x_ij (demand-major), then s_ij.
 * n = m + 2 d m variables, d + d m constraints.  (m, d) = (5, 10) yields
 * the paper's 105-variable scalability ceiling (Figure 10).
 *
 * The linear-time feasible solution opens facility 0 and assigns every
 * demand to it (Section 5.1: O(d)).  The exact optimum is computed in
 * closed form by enumerating open-facility subsets, so scalability
 * instances do not require feasible-set enumeration.
 */

#ifndef RASENGAN_PROBLEMS_FLP_H
#define RASENGAN_PROBLEMS_FLP_H

#include "common/rng.h"
#include "problems/problem.h"

namespace rasengan::problems {

struct FlpConfig
{
    int facilities = 2;
    int demands = 1;
    int minOpenCost = 2, maxOpenCost = 10;  ///< f_j range (inclusive)
    int minServeCost = 1, maxServeCost = 8; ///< c_ij range (inclusive)
};

/** Number of binary variables of an FLP instance. */
int flpNumVars(const FlpConfig &config);

/** Generate an FLP instance with costs drawn from @p rng. */
Problem makeFlp(const std::string &id, const FlpConfig &config, Rng &rng);

/// @name Variable indexing (exposed for tests and examples)
/// @{
int flpFacilityVar(const FlpConfig &config, int j);
int flpAssignVar(const FlpConfig &config, int i, int j);
int flpSlackVar(const FlpConfig &config, int i, int j);
/// @}

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_FLP_H
