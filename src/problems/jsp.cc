#include "problems/jsp.h"

#include "common/logging.h"

namespace rasengan::problems {

int
jspNumVars(const JspConfig &config)
{
    return config.jobs * config.machines;
}

int
jspVar(const JspConfig &config, int job, int machine)
{
    panic_if(job < 0 || job >= config.jobs || machine < 0 ||
                 machine >= config.machines,
             "jsp variable ({}, {}) out of range", job, machine);
    return job * config.machines + machine;
}

Problem
makeJsp(const std::string &id, const JspConfig &config, Rng &rng)
{
    const int j = config.jobs;
    const int m = config.machines;
    fatal_if(j < 1 || m < 1, "invalid JSP sizes jobs={} machines={}", j, m);
    const int n = jspNumVars(config);
    fatal_if(n > kMaxBits, "JSP instance with {} vars exceeds {}", n,
             kMaxBits);

    std::vector<int64_t> p(j);
    for (int job = 0; job < j; ++job)
        p[job] = rng.uniformInt(config.minTime, config.maxTime);

    linalg::IntMat c(j, n);
    linalg::IntVec b(j, 1);
    for (int job = 0; job < j; ++job)
        for (int mach = 0; mach < m; ++mach)
            c.at(job, jspVar(config, job, mach)) = 1;

    // sum_m (sum_j p_j x_jm)^2 expanded over binaries: x^2 = x gives the
    // p_j^2 linear terms, cross products give the quadratic terms.
    QuadraticObjective f(n);
    for (int mach = 0; mach < m; ++mach) {
        for (int a = 0; a < j; ++a) {
            f.addLinear(jspVar(config, a, mach),
                        static_cast<double>(p[a] * p[a]));
            for (int bjob = a + 1; bjob < j; ++bjob) {
                f.addQuadratic(jspVar(config, a, mach),
                               jspVar(config, bjob, mach),
                               2.0 * static_cast<double>(p[a] * p[bjob]));
            }
        }
    }
    f.normalize();

    // Trivial feasible (O(j)): every job on machine 0.
    BitVec trivial;
    for (int job = 0; job < j; ++job)
        trivial.set(jspVar(config, job, 0));

    return Problem(id, "JSP", std::move(c), std::move(b), std::move(f),
                   trivial);
}

} // namespace rasengan::problems
