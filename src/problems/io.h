/**
 * @file
 * Plain-text serialization of Problem instances.
 *
 * Line-oriented format (order-insensitive apart from the header):
 *
 *   problem <id> <family>
 *   vars <n>
 *   objective constant <value>
 *   objective linear <var> <value>
 *   objective quadratic <var> <var> <value>
 *   constraint <bound> <var>:<coeff> [<var>:<coeff> ...]
 *   feasible <bitstring>
 *
 * '#' starts a comment.  Used by the CLI tool and for sharing instances
 * between runs; round-trips exactly through write/parse.
 */

#ifndef RASENGAN_PROBLEMS_IO_H
#define RASENGAN_PROBLEMS_IO_H

#include <optional>
#include <string>

#include "problems/problem.h"

namespace rasengan::problems {

/**
 * Serialize @p problem into the text format above.
 *
 * The output is CANONICAL: statements appear in a fixed order, zero
 * coefficients are dropped, and quadratic terms are merged and sorted
 * by index pair, so two Problem instances describing the same math
 * serialize to identical bytes no matter how they were constructed.
 * The serve layer's content-addressed artifact caches key on this text
 * (via canonicalProblemText); do not introduce ordering that depends on
 * construction history.
 */
std::string writeProblem(const Problem &problem);

/**
 * The canonical serialization used for cache keys: currently identical
 * to writeProblem, named separately so key-producing call sites survive
 * any future divergence (e.g. a prettier writeProblem).
 */
std::string canonicalProblemText(const Problem &problem);

struct ProblemParseResult
{
    std::optional<Problem> problem;
    std::string error;
    int errorLine = 0;
};

/** Parse the text format; validates the embedded feasible point. */
ProblemParseResult parseProblem(const std::string &text);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_IO_H
