/**
 * @file
 * Evaluation metrics from Section 5.1: approximation ratio gap (ARG) and
 * in-constraints rate, computed from measurement histograms.
 */

#ifndef RASENGAN_PROBLEMS_METRICS_H
#define RASENGAN_PROBLEMS_METRICS_H

#include "problems/problem.h"
#include "qsim/counts.h"

namespace rasengan::problems {

/**
 * Penalty coefficient large enough to dominate the objective range:
 * 1 + sum of absolute objective coefficients, so any constraint violation
 * costs more than the best possible objective gain.  Computable without
 * enumerating the feasible set.
 */
double defaultPenaltyLambda(const Problem &problem);

/**
 * Expected objective of the output distribution; infeasible outcomes are
 * scored with the lambda-penalized objective (this is what makes penalty
 * methods' ARG blow up into the hundreds, as in Table 1/2).
 */
double expectedObjective(const Problem &problem, const qsim::Counts &counts,
                         double penalty_lambda);

/** ARG (Equation 9) of the output distribution. */
double argFromCounts(const Problem &problem, const qsim::Counts &counts,
                     double penalty_lambda);

/** ARG of a single output solution. */
double argOfSolution(const Problem &problem, const BitVec &x,
                     double penalty_lambda);

/** Fraction of shots that satisfy the constraints. */
double inConstraintsRate(const Problem &problem, const qsim::Counts &counts);

/**
 * Best feasible objective value among outcomes; +infinity when no outcome
 * is feasible.
 */
double bestFeasibleObjective(const Problem &problem,
                             const qsim::Counts &counts);

/** ARG of the mean feasible solution (the paper's hardware baseline). */
double meanFeasibleArg(const Problem &problem);

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_METRICS_H
