#include "problems/portfolio.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "problems/builder.h"

namespace rasengan::problems {

Problem
makePortfolio(const std::string &id, const PortfolioConfig &config,
              Rng &rng)
{
    const int n = config.assets;
    const int k = config.pick;
    fatal_if(n < 2 || k < 1 || k > n, "invalid portfolio sizes n={} k={}",
             n, k);

    std::vector<int64_t> ret(n), cost(n);
    for (int i = 0; i < n; ++i) {
        ret[i] = rng.uniformInt(config.minReturn, config.maxReturn);
        cost[i] = rng.uniformInt(config.minCost, config.maxCost);
    }
    // Symmetric covariance-style couplings (risk between asset pairs).
    std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            sigma[i][j] = rng.uniformReal(-1.0, 2.0);

    // Budget: the k cheapest assets always fit (greedy trivial point).
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return cost[a] < cost[b]; });
    int64_t cheapest = 0;
    for (int i = 0; i < k; ++i)
        cheapest += cost[order[i]];
    int64_t budget = cheapest + config.budgetSlack;

    ProblemBuilder builder(id, "PORT", n);

    // Objective: maximize return - risk => minimize the negation, with a
    // positive shift so ARG (Equation 9) stays well defined.
    double shift = 1.0;
    for (int i = 0; i < n; ++i)
        shift += static_cast<double>(ret[i]);
    builder.objectiveConstant(shift);
    for (int i = 0; i < n; ++i)
        builder.objectiveLinear(i, -static_cast<double>(ret[i]));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            builder.objectiveQuadratic(i, j,
                                       config.riskAversion * sigma[i][j]);

    // Cardinality (equality) and budget (inequality -> slack bits).
    std::vector<ProblemBuilder::Term> ones, costs;
    for (int i = 0; i < n; ++i) {
        ones.emplace_back(i, 1);
        costs.emplace_back(i, cost[i]);
    }
    builder.addEquality(ones, k);
    builder.addLessEqual(costs, budget);

    BitVec greedy;
    for (int i = 0; i < k; ++i)
        greedy.set(order[i]);
    return builder.build(greedy);
}

} // namespace rasengan::problems
