#include "problems/suite.h"

#include <map>

#include "common/logging.h"
#include "common/rng.h"
#include "problems/flp.h"
#include "problems/gcp.h"
#include "problems/jsp.h"
#include "problems/kpp.h"
#include "problems/scp.h"

namespace rasengan::problems {

namespace {

/** Deterministic seed from benchmark id and case index. */
uint64_t
caseSeed(const std::string &id, uint64_t case_index)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (char ch : id) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001B3ull;
    }
    h ^= case_index + 0x9E3779B97F4A7C15ull;
    h *= 0x100000001B3ull;
    return h;
}

} // namespace

std::vector<std::string>
benchmarkIds()
{
    return {"F1", "F2", "F3", "F4", "K1", "K2", "K3", "K4",
            "J1", "J2", "J3", "J4", "S1", "S2", "S3", "S4",
            "G1", "G2", "G3", "G4"};
}

bool
isBenchmarkId(const std::string &id)
{
    for (const std::string &known : benchmarkIds())
        if (known == id)
            return true;
    return false;
}

Problem
makeBenchmark(const std::string &id, uint64_t case_index)
{
    Rng rng(caseSeed(id, case_index));

    static const std::map<std::string, FlpConfig> flp = {
        {"F1", {.facilities = 2, .demands = 1}},
        {"F2", {.facilities = 2, .demands = 2}},
        {"F3", {.facilities = 2, .demands = 3}},
        {"F4", {.facilities = 3, .demands = 2}},
    };
    static const std::map<std::string, KppConfig> kpp = {
        {"K1", {.elements = 4, .parts = 2}},
        {"K2", {.elements = 5, .parts = 2}},
        {"K3", {.elements = 6, .parts = 2}},
        {"K4", {.elements = 4, .parts = 3}},
    };
    static const std::map<std::string, JspConfig> jsp = {
        {"J1", {.jobs = 3, .machines = 2}},
        {"J2", {.jobs = 4, .machines = 2}},
        {"J3", {.jobs = 5, .machines = 2}},
        {"J4", {.jobs = 4, .machines = 3}},
    };
    static const std::map<std::string, ScpConfig> scp = {
        {"S1", {.elements = 3, .pairSets = 3, .blockSets = 0}},
        {"S2", {.elements = 4, .pairSets = 4, .blockSets = 0}},
        {"S3", {.elements = 5, .pairSets = 4, .blockSets = 1}},
        {"S4", {.elements = 6, .pairSets = 4, .blockSets = 2}},
    };
    static const std::map<std::string, GcpConfig> gcp = {
        {"G1", {.vertices = 3, .colors = 2, .edges = 1}},
        {"G2", {.vertices = 4, .colors = 2, .edges = 2}},
        {"G3", {.vertices = 3, .colors = 3, .edges = 2}},
        {"G4", {.vertices = 4, .colors = 3, .edges = 2}},
    };

    if (auto it = flp.find(id); it != flp.end())
        return makeFlp(id, it->second, rng);
    if (auto it = kpp.find(id); it != kpp.end())
        return makeKpp(id, it->second, rng);
    if (auto it = jsp.find(id); it != jsp.end())
        return makeJsp(id, it->second, rng);
    if (auto it = scp.find(id); it != scp.end())
        return makeScp(id, it->second, rng);
    if (auto it = gcp.find(id); it != gcp.end())
        return makeGcp(id, it->second, rng);
    fatal("unknown benchmark id '{}'", id);
}

namespace {

/** (facilities, demands) pairs for the Figure 10 series. */
const std::vector<std::pair<int, int>> kScalabilityShapes = {
    {2, 1},  // 6 vars
    {2, 2},  // 10
    {2, 3},  // 14
    {3, 3},  // 21
    {3, 4},  // 27
    {3, 5},  // 33
    {4, 5},  // 44
    {4, 6},  // 52
    {4, 7},  // 60
    {5, 7},  // 75
    {5, 9},  // 95
    {5, 10}, // 105
};

} // namespace

std::vector<int>
scalabilityFlpSizes()
{
    std::vector<int> sizes;
    for (auto [m, d] : kScalabilityShapes)
        sizes.push_back(flpNumVars({.facilities = m, .demands = d}));
    return sizes;
}

Problem
makeScalabilityFlp(int num_vars, uint64_t case_index)
{
    for (auto [m, d] : kScalabilityShapes) {
        FlpConfig config{.facilities = m, .demands = d};
        if (flpNumVars(config) != num_vars)
            continue;
        std::string id = "FLP" + std::to_string(num_vars);
        Rng rng(caseSeed(id, case_index));
        Problem p = makeFlp(id, config, rng);
        if (num_vars > 24)
            p.disableEnumeration();
        return p;
    }
    fatal("no scalability FLP shape with {} variables", num_vars);
}

} // namespace rasengan::problems
