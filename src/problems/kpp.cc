#include "problems/kpp.h"

#include "common/logging.h"

namespace rasengan::problems {

int
kppNumVars(const KppConfig &config)
{
    return config.elements * config.parts;
}

int
kppVar(const KppConfig &config, int v, int c)
{
    panic_if(v < 0 || v >= config.elements || c < 0 || c >= config.parts,
             "kpp variable ({}, {}) out of range", v, c);
    return v * config.parts + c;
}

Problem
makeKpp(const std::string &id, const KppConfig &config, Rng &rng)
{
    const int e = config.elements;
    const int k = config.parts;
    fatal_if(e < 1 || k < 1 || k > e, "invalid KPP sizes e={} k={}", e, k);
    const int n = kppNumVars(config);
    fatal_if(n > kMaxBits, "KPP instance with {} vars exceeds {}", n,
             kMaxBits);

    // Part sizes: as balanced as possible, summing to e.
    std::vector<int64_t> sizes(k, e / k);
    for (int c = 0; c < e % k; ++c)
        ++sizes[c];

    // Random weighted graph.
    std::vector<std::tuple<int, int, int64_t>> edges;
    for (int u = 0; u < e; ++u) {
        for (int v = u + 1; v < e; ++v) {
            if (rng.uniformReal() < config.edgeProbability) {
                edges.emplace_back(
                    u, v, rng.uniformInt(config.minWeight, config.maxWeight));
            }
        }
    }

    linalg::IntMat c(e + k, n);
    linalg::IntVec b(e + k, 0);
    for (int v = 0; v < e; ++v) {
        for (int part = 0; part < k; ++part)
            c.at(v, kppVar(config, v, part)) = 1;
        b[v] = 1;
    }
    for (int part = 0; part < k; ++part) {
        for (int v = 0; v < e; ++v)
            c.at(e + part, kppVar(config, v, part)) = 1;
        b[e + part] = sizes[part];
    }

    // Objective: total cut weight.  Constant = sum of weights; each edge
    // inside one part gets its weight back via -w x_uc x_vc.  The +1
    // offset keeps the optimum nonzero so ARG (Equation 9) stays defined
    // even when a zero-cut partition exists.
    QuadraticObjective f(n);
    f.addConstant(1.0);
    for (const auto &[u, v, w] : edges) {
        f.addConstant(static_cast<double>(w));
        for (int part = 0; part < k; ++part)
            f.addQuadratic(kppVar(config, u, part), kppVar(config, v, part),
                           -static_cast<double>(w));
    }
    f.normalize();

    // Trivial feasible (O(e)): fill parts in order up to their sizes.
    BitVec trivial;
    {
        int part = 0;
        int64_t used = 0;
        for (int v = 0; v < e; ++v) {
            while (used >= sizes[part]) {
                ++part;
                used = 0;
            }
            trivial.set(kppVar(config, v, part));
            ++used;
        }
    }

    return Problem(id, "KPP", std::move(c), std::move(b), std::move(f),
                   trivial);
}

} // namespace rasengan::problems
