/**
 * @file
 * ProblemBuilder: assemble constrained binary optimization instances from
 * equality AND inequality constraints.
 *
 * The paper's formulation (Equation 1) takes linear *equalities*; as
 * Section 2.1 notes, inequalities are folded in with auxiliary binary
 * variables.  This builder implements that compilation: each
 * `sum_i c_i x_i <= bound` becomes
 * `sum_i c_i x_i + sum_k w_k s_k = bound` with fresh slack bits s_k whose
 * weights w_k = 1, 2, 4, ..., r cover exactly the reachable slack range
 * [0, bound - min(lhs)] (the last weight is trimmed so no slack value
 * overshoots).  Transition compatibility is preserved because the
 * homogeneous-basis machinery falls back to feasible-difference vectors,
 * which are signed-0/1 regardless of the constraint coefficients.
 */

#ifndef RASENGAN_PROBLEMS_BUILDER_H
#define RASENGAN_PROBLEMS_BUILDER_H

#include <string>
#include <vector>

#include "problems/problem.h"

namespace rasengan::problems {

class ProblemBuilder
{
  public:
    /** One linear term: coefficient * x_variable. */
    using Term = std::pair<int, int64_t>;

    /**
     * @param num_vars the ORIGINAL decision variables; slack variables
     *                 are appended automatically by inequality rows
     */
    ProblemBuilder(std::string id, std::string family, int num_vars);

    int numOriginalVars() const { return numVars_; }
    /** Total variables so far, including slack bits. */
    int numTotalVars() const { return totalVars_; }

    /// @name Objective (over the original variables)
    /// @{
    void objectiveConstant(double c);
    void objectiveLinear(int var, double coeff);
    void objectiveQuadratic(int a, int b, double coeff);
    /// @}

    /// @name Constraints
    /// @{
    /** sum terms = bound. */
    void addEquality(const std::vector<Term> &terms, int64_t bound);
    /** sum terms <= bound (compiled with binary slack expansion). */
    void addLessEqual(const std::vector<Term> &terms, int64_t bound);
    /** sum terms >= bound (negated into addLessEqual). */
    void addGreaterEqual(const std::vector<Term> &terms, int64_t bound);
    /// @}

    /**
     * Assemble the Problem.  @p feasible_original assigns the original
     * variables; it must satisfy every constraint, and the builder
     * completes it with the implied slack values.
     */
    Problem build(const BitVec &feasible_original) const;

  private:
    struct Row
    {
        std::vector<Term> terms; ///< original-variable terms
        int64_t bound;
        int slackBase = -1;              ///< first slack var, -1 if none
        std::vector<int64_t> slackWeights;
    };

    void checkVar(int var) const;

    std::string id_;
    std::string family_;
    int numVars_;
    int totalVars_;
    std::vector<Row> rows_;
    double objConstant_ = 0.0;
    std::vector<std::pair<int, double>> objLinear_;
    std::vector<std::tuple<int, int, double>> objQuadratic_;
};

} // namespace rasengan::problems

#endif // RASENGAN_PROBLEMS_BUILDER_H
