#include "device/mitigation.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rasengan::device {

ReadoutCalibration
ReadoutCalibration::uniform(int n, double p)
{
    fatal_if(n < 1, "calibration needs at least one qubit");
    fatal_if(p < 0.0 || p >= 0.5, "readout error {} outside [0, 0.5)", p);
    ReadoutCalibration cal;
    cal.p01.assign(n, p);
    cal.p10.assign(n, p);
    return cal;
}

ReadoutCalibration
ReadoutCalibration::measure(int n, const qsim::NoiseModel &noise, Rng &rng,
                            uint64_t shots)
{
    fatal_if(n < 1, "calibration needs at least one qubit");
    fatal_if(shots == 0, "calibration needs shots");

    // Prepare |0...0> and |1...1>, push them through the readout channel,
    // and count per-qubit flips.
    qsim::Counts zeros;
    zeros.add(BitVec{}, shots);
    qsim::Counts ones_in;
    BitVec all_ones;
    for (int q = 0; q < n; ++q)
        all_ones.set(q);
    ones_in.add(all_ones, shots);

    qsim::Counts zeros_read =
        qsim::applyReadoutError(zeros, n, noise.readoutError, rng);
    qsim::Counts ones_read =
        qsim::applyReadoutError(ones_in, n, noise.readoutError, rng);

    ReadoutCalibration cal;
    cal.p01.assign(n, 0.0);
    cal.p10.assign(n, 0.0);
    for (const auto &[outcome, cnt] : zeros_read.map())
        for (int q = 0; q < n; ++q)
            if (outcome.get(q))
                cal.p01[q] += static_cast<double>(cnt);
    for (const auto &[outcome, cnt] : ones_read.map())
        for (int q = 0; q < n; ++q)
            if (!outcome.get(q))
                cal.p10[q] += static_cast<double>(cnt);
    for (int q = 0; q < n; ++q) {
        cal.p01[q] /= static_cast<double>(shots);
        cal.p10[q] /= static_cast<double>(shots);
        // Guard against pathological estimates (>= 0.5 makes the 2x2
        // confusion matrix non-invertible in the useful regime).
        cal.p01[q] = std::min(cal.p01[q], 0.49);
        cal.p10[q] = std::min(cal.p10[q], 0.49);
    }
    return cal;
}

ReadoutMitigator::ReadoutMitigator(ReadoutCalibration calibration)
    : calibration_(std::move(calibration))
{
    fatal_if(calibration_.p01.size() != calibration_.p10.size(),
             "inconsistent calibration sizes");
}

double
ReadoutMitigator::transition(const BitVec &from_true, const BitVec &to_read,
                             int num_bits) const
{
    double prob = 1.0;
    for (int q = 0; q < num_bits; ++q) {
        bool truth = from_true.get(q);
        bool read = to_read.get(q);
        double p01 = calibration_.p01[q];
        double p10 = calibration_.p10[q];
        if (!truth)
            prob *= read ? p01 : (1.0 - p01);
        else
            prob *= read ? (1.0 - p10) : p10;
    }
    return prob;
}

std::vector<std::pair<BitVec, double>>
ReadoutMitigator::mitigate(const qsim::Counts &counts, int num_bits) const
{
    fatal_if(num_bits < 1 ||
                 num_bits > calibration_.numQubits(),
             "mitigating {} bits with a {}-qubit calibration", num_bits,
             calibration_.numQubits());
    fatal_if(counts.total() == 0, "mitigating empty counts");

    // Observed subspace.
    std::vector<BitVec> states;
    std::vector<double> observed;
    states.reserve(counts.map().size());
    for (const auto &[outcome, cnt] : counts.map()) {
        states.push_back(outcome);
        observed.push_back(static_cast<double>(cnt) /
                           static_cast<double>(counts.total()));
    }
    const size_t m = states.size();

    // Confusion matrix restricted to observed states: A[y][x] =
    // P(read states[y] | true states[x]).  Solve A p = observed.
    std::vector<std::vector<double>> a(m, std::vector<double>(m));
    for (size_t y = 0; y < m; ++y)
        for (size_t x = 0; x < m; ++x)
            a[y][x] = transition(states[x], states[y], num_bits);

    // Gaussian elimination with partial pivoting.
    std::vector<double> rhs = observed;
    for (size_t col = 0; col < m; ++col) {
        size_t pivot = col;
        for (size_t row = col + 1; row < m; ++row)
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        if (std::abs(a[pivot][col]) < 1e-12) {
            // Singular subspace (extreme calibration): fall back to the
            // raw distribution.
            std::vector<std::pair<BitVec, double>> raw;
            for (size_t i = 0; i < m; ++i)
                raw.emplace_back(states[i], observed[i]);
            return raw;
        }
        std::swap(a[col], a[pivot]);
        std::swap(rhs[col], rhs[pivot]);
        for (size_t row = col + 1; row < m; ++row) {
            double factor = a[row][col] / a[col][col];
            for (size_t k = col; k < m; ++k)
                a[row][k] -= factor * a[col][k];
            rhs[row] -= factor * rhs[col];
        }
    }
    std::vector<double> quasi(m, 0.0);
    for (size_t col = m; col-- > 0;) {
        double acc = rhs[col];
        for (size_t k = col + 1; k < m; ++k)
            acc -= a[col][k] * quasi[k];
        quasi[col] = acc / a[col][col];
    }

    // Clip negatives and renormalize.
    double total = 0.0;
    for (double &p : quasi) {
        p = std::max(p, 0.0);
        total += p;
    }
    std::vector<std::pair<BitVec, double>> out;
    out.reserve(m);
    if (total <= 0.0) {
        for (size_t i = 0; i < m; ++i)
            out.emplace_back(states[i], observed[i]);
        return out;
    }
    for (size_t i = 0; i < m; ++i)
        if (quasi[i] > 0.0)
            out.emplace_back(states[i], quasi[i] / total);
    return out;
}

double
ReadoutMitigator::mitigatedExpectation(
    const qsim::Counts &counts, int num_bits,
    const std::function<double(const BitVec &)> &value) const
{
    double acc = 0.0;
    for (const auto &[state, p] : mitigate(counts, num_bits))
        acc += p * value(state);
    return acc;
}

} // namespace rasengan::device
