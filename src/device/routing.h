/**
 * @file
 * Greedy SWAP routing onto a coupling map.
 *
 * Maps logical circuit qubits to physical device qubits and inserts SWAP
 * chains so every two-qubit gate acts on coupled qubits (a lightweight
 * SABRE-style router).  Used by the latency/depth models to estimate
 * device-compiled circuit cost, the role IBM Quebec compilation plays in
 * the paper's depth numbers.
 */

#ifndef RASENGAN_DEVICE_ROUTING_H
#define RASENGAN_DEVICE_ROUTING_H

#include <vector>

#include "circuit/circuit.h"
#include "device/topology.h"

namespace rasengan::device {

struct RoutingResult
{
    circuit::Circuit routed;        ///< circuit on physical qubits
    std::vector<int> initialLayout; ///< logical -> physical at circuit start
    std::vector<int> finalLayout;   ///< logical -> physical at circuit end
    int swapsInserted = 0;
};

/**
 * Route @p circ (which must already be lowered to 1q/CX/CP/Swap gates; see
 * circuit::transpile) onto @p coupling.  The initial layout places logical
 * qubit i on physical qubit i; for each non-adjacent two-qubit gate, SWAPs
 * walk one operand along a BFS shortest path.
 *
 * @param lower_swaps emit inserted SWAPs as 3 CX each.
 */
RoutingResult route(const circuit::Circuit &circ, const CouplingMap &coupling,
                    bool lower_swaps = true);

/**
 * SABRE-style lookahead router: maintains the dependency front layer and
 * greedily applies the SWAP that minimizes a weighted sum of front-layer
 * and lookahead-window distances (Li et al.'s heuristic), instead of
 * walking each blocked gate along its own shortest path.  Typically
 * inserts fewer SWAPs than route() on circuits with interleaved distant
 * interactions; compared in the router ablation bench.
 *
 * Falls back to a shortest-path walk if the heuristic stalls (guaranteed
 * termination).  Same contract as route().
 */
RoutingResult routeLookahead(const circuit::Circuit &circ,
                             const CouplingMap &coupling,
                             bool lower_swaps = true);

} // namespace rasengan::device

#endif // RASENGAN_DEVICE_ROUTING_H
