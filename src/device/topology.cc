#include "device/topology.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/logging.h"

namespace rasengan::device {

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edges)
    : numQubits_(num_qubits)
{
    fatal_if(num_qubits < 0, "negative qubit count");
    adj_.resize(num_qubits);
    std::set<std::pair<int, int>> seen;
    for (auto [a, b] : edges) {
        fatal_if(a < 0 || a >= num_qubits || b < 0 || b >= num_qubits,
                 "edge ({}, {}) out of range", a, b);
        fatal_if(a == b, "self-loop on qubit {}", a);
        auto key = std::minmax(a, b);
        if (!seen.insert(key).second)
            continue;
        edges_.push_back(key);
        adj_[a].push_back(b);
        adj_[b].push_back(a);
    }
    for (auto &nbrs : adj_)
        std::sort(nbrs.begin(), nbrs.end());
}

const std::vector<int> &
CouplingMap::neighbors(int q) const
{
    panic_if(q < 0 || q >= numQubits_, "qubit {} out of range", q);
    return adj_[q];
}

bool
CouplingMap::connected(int a, int b) const
{
    const auto &nbrs = neighbors(a);
    return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::vector<int>
CouplingMap::shortestPath(int a, int b) const
{
    panic_if(a < 0 || a >= numQubits_ || b < 0 || b >= numQubits_,
             "path endpoints ({}, {}) out of range", a, b);
    if (a == b)
        return {a};
    std::vector<int> parent(numQubits_, -1);
    std::queue<int> frontier;
    frontier.push(a);
    parent[a] = a;
    while (!frontier.empty()) {
        int cur = frontier.front();
        frontier.pop();
        for (int nxt : adj_[cur]) {
            if (parent[nxt] >= 0)
                continue;
            parent[nxt] = cur;
            if (nxt == b) {
                std::vector<int> path{b};
                for (int p = cur; p != a; p = parent[p])
                    path.push_back(p);
                path.push_back(a);
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(nxt);
        }
    }
    return {};
}

int
CouplingMap::distance(int a, int b) const
{
    auto path = shortestPath(a, b);
    return path.empty() ? -1 : static_cast<int>(path.size()) - 1;
}

bool
CouplingMap::isConnected() const
{
    if (numQubits_ <= 1)
        return true;
    std::vector<bool> seen(numQubits_, false);
    std::queue<int> frontier;
    frontier.push(0);
    seen[0] = true;
    int visited = 1;
    while (!frontier.empty()) {
        int cur = frontier.front();
        frontier.pop();
        for (int nxt : adj_[cur]) {
            if (!seen[nxt]) {
                seen[nxt] = true;
                ++visited;
                frontier.push(nxt);
            }
        }
    }
    return visited == numQubits_;
}

CouplingMap
CouplingMap::linear(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return CouplingMap(n, std::move(edges));
}

CouplingMap
CouplingMap::grid(int rows, int cols)
{
    fatal_if(rows < 1 || cols < 1, "grid dimensions must be positive");
    std::vector<std::pair<int, int>> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return CouplingMap(rows * cols, std::move(edges));
}

CouplingMap
CouplingMap::full(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            edges.emplace_back(a, b);
    return CouplingMap(n, std::move(edges));
}

CouplingMap
CouplingMap::heavyHex(int rows, int row_len)
{
    fatal_if(rows < 1 || row_len < 1, "heavy-hex dimensions must be positive");
    // Qubits 0 .. rows*row_len-1 form the horizontal rows; bridge qubits
    // are appended after them.  Bridges connect row r column c to row r+1
    // column c, placed every 4 columns with an offset alternating by row
    // parity (the Eagle pattern).
    int next = rows * row_len;
    std::vector<std::pair<int, int>> edges;
    auto id = [row_len](int r, int c) { return r * row_len + c; };
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c + 1 < row_len; ++c)
            edges.emplace_back(id(r, c), id(r, c + 1));
    for (int r = 0; r + 1 < rows; ++r) {
        int offset = (r % 2 == 0) ? 0 : 2;
        for (int c = offset; c < row_len; c += 4) {
            int bridge = next++;
            edges.emplace_back(id(r, c), bridge);
            edges.emplace_back(bridge, id(r + 1, c));
        }
    }
    return CouplingMap(next, std::move(edges));
}

} // namespace rasengan::device
