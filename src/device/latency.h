/**
 * @file
 * Latency estimation for quantum execution.
 *
 * Composes per-shot circuit time from the device's gate durations along
 * the circuit's critical path, plus readout and per-shot reset overhead.
 * This is the repository's substitute for measured IBM-cloud execution
 * time (Table 1, Figures 12-13); classical optimizer time is measured for
 * real with common/timer.h and reported next to these estimates.
 */

#ifndef RASENGAN_DEVICE_LATENCY_H
#define RASENGAN_DEVICE_LATENCY_H

#include <cstdint>

#include "circuit/circuit.h"
#include "device/device.h"

namespace rasengan::device {

class LatencyModel
{
  public:
    explicit LatencyModel(DeviceModel device) : device_(std::move(device)) {}

    const DeviceModel &device() const { return device_; }

    /**
     * Critical-path duration of one execution of @p circ, in microseconds:
     * two-qubit layers at the 2q gate duration, remaining layers at the 1q
     * duration, plus readout.
     */
    double circuitTimeUs(const circuit::Circuit &circ) const;

    /** Total quantum time for @p shots executions, in seconds. */
    double executionTimeSeconds(const circuit::Circuit &circ,
                                uint64_t shots) const;

    /**
     * Quantum time of a segmented run: each (circuit, shots) pair is
     * executed independently (Figure 13's latency-vs-segments study).
     */
    double
    segmentedTimeSeconds(
        const std::vector<std::pair<circuit::Circuit, uint64_t>> &segments)
        const;

  private:
    DeviceModel device_;
};

} // namespace rasengan::device

#endif // RASENGAN_DEVICE_LATENCY_H
