#include "device/latency.h"

namespace rasengan::device {

double
LatencyModel::circuitTimeUs(const circuit::Circuit &circ) const
{
    int total_depth = circ.depth();
    int twoq_depth = circ.twoQubitDepth();
    int oneq_depth = total_depth - twoq_depth;
    double ns = twoq_depth * device_.gate2qNs +
                oneq_depth * device_.gate1qNs + device_.readoutNs;
    return ns * 1e-3;
}

double
LatencyModel::executionTimeSeconds(const circuit::Circuit &circ,
                                   uint64_t shots) const
{
    double per_shot_us = circuitTimeUs(circ) + device_.shotOverheadUs;
    return per_shot_us * static_cast<double>(shots) * 1e-6;
}

double
LatencyModel::segmentedTimeSeconds(
    const std::vector<std::pair<circuit::Circuit, uint64_t>> &segments) const
{
    double total = 0.0;
    for (const auto &[circ, shots] : segments)
        total += executionTimeSeconds(circ, shots);
    return total;
}

} // namespace rasengan::device
