/**
 * @file
 * Readout-error mitigation.
 *
 * Purification (core/rasengan) is Rasengan's own error-mitigation layer;
 * this module provides the orthogonal, industry-standard technique for
 * measurement errors so baselines can be mitigated too: a tensored
 * per-qubit confusion model A_i = [[1-p01, p10], [p01, 1-p10]], inverted
 * on the observed-outcome subspace (the M3 approach: build the confusion
 * matrix restricted to observed bitstrings, solve, clip negatives,
 * renormalize) rather than over all 2^n strings.
 */

#ifndef RASENGAN_DEVICE_MITIGATION_H
#define RASENGAN_DEVICE_MITIGATION_H

#include <functional>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "qsim/counts.h"
#include "qsim/noise.h"

namespace rasengan::device {

/** Per-qubit readout confusion rates. */
struct ReadoutCalibration
{
    std::vector<double> p01; ///< P(read 1 | prepared 0) per qubit
    std::vector<double> p10; ///< P(read 0 | prepared 1) per qubit

    int numQubits() const { return static_cast<int>(p01.size()); }

    /** Symmetric error @p p on @p n qubits. */
    static ReadoutCalibration uniform(int n, double p);

    /**
     * Empirical calibration: sample the all-zeros and all-ones
     * preparations through @p noise's readout channel and estimate the
     * per-qubit flip rates (the standard two-circuit calibration).
     */
    static ReadoutCalibration measure(int n, const qsim::NoiseModel &noise,
                                      Rng &rng, uint64_t shots = 4096);
};

class ReadoutMitigator
{
  public:
    explicit ReadoutMitigator(ReadoutCalibration calibration);

    const ReadoutCalibration &calibration() const { return calibration_; }

    /**
     * Mitigated probability distribution over the observed outcomes of
     * @p counts (low @p num_bits wires).  Solves the confusion system on
     * the observed subspace, clips negative quasi-probabilities, and
     * renormalizes.
     */
    std::vector<std::pair<BitVec, double>>
    mitigate(const qsim::Counts &counts, int num_bits) const;

    /** Expectation of @p value under the mitigated distribution. */
    double
    mitigatedExpectation(const qsim::Counts &counts, int num_bits,
                         const std::function<double(const BitVec &)> &value)
        const;

  private:
    /** P(read y | true x) under the tensored model. */
    double transition(const BitVec &from_true, const BitVec &to_read,
                      int num_bits) const;

    ReadoutCalibration calibration_;
};

} // namespace rasengan::device

#endif // RASENGAN_DEVICE_MITIGATION_H
