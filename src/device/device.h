/**
 * @file
 * Device models: calibration-level descriptions of quantum platforms.
 *
 * Each model carries qubit count, topology, gate error rates, decoherence
 * times, and gate/readout durations.  The IBM presets are parameterized
 * from the calibration figures quoted in the paper (Sections 5.4-5.5):
 * Kyiv and Brisbane are the 127-qubit Eagle r3 machines the hardware
 * evaluation runs on; Quebec is the model used for depth compilation.
 * Since we have no hardware access, DeviceModel::toNoiseModel() turns the
 * calibration into the noise channels the simulators inject -- the
 * substitution documented in DESIGN.md.
 */

#ifndef RASENGAN_DEVICE_DEVICE_H
#define RASENGAN_DEVICE_DEVICE_H

#include <string>

#include "device/topology.h"
#include "qsim/noise.h"

namespace rasengan::device {

struct DeviceModel
{
    std::string name;
    CouplingMap coupling;

    double error1q = 0.0;       ///< single-qubit gate error rate
    double error2q = 0.0;       ///< two-qubit gate error rate
    double readoutError = 0.0;  ///< per-bit readout flip probability

    double t1Us = 0.0;          ///< relaxation time (microseconds)
    double t2Us = 0.0;          ///< dephasing time (microseconds)

    double gate1qNs = 0.0;      ///< single-qubit gate duration
    double gate2qNs = 0.0;      ///< two-qubit gate duration
    double readoutNs = 0.0;     ///< measurement duration
    double shotOverheadUs = 0.0;///< reset/prep overhead per shot

    /**
     * Map calibration to simulation noise channels: gate errors become
     * depolarizing rates; T1/T2 over the two-qubit gate duration become
     * per-gate amplitude/phase damping.
     */
    qsim::NoiseModel toNoiseModel() const;

    /// @name Presets
    /// @{
    /** IBM Kyiv (127-qubit Eagle r3): 2q error 1.2% (Section 5.4). */
    static DeviceModel ibmKyiv();
    /** IBM Brisbane (127-qubit Eagle r3): 2q error 0.82%. */
    static DeviceModel ibmBrisbane();
    /** IBM Quebec: the compilation target for depth numbers. */
    static DeviceModel ibmQuebec();
    /** Noise-free, all-to-all device with @p n qubits (simulation). */
    static DeviceModel noiseless(int n);
    /// @}
};

} // namespace rasengan::device

#endif // RASENGAN_DEVICE_DEVICE_H
