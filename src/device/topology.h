/**
 * @file
 * Qubit-coupling topologies.
 *
 * A CouplingMap is an undirected connectivity graph between physical
 * qubits.  Generators cover the topologies relevant to the paper's
 * platforms: the heavy-hex lattice of IBM Eagle-class devices (Kyiv,
 * Brisbane, Quebec) plus the linear/grid/full maps used in tests.
 */

#ifndef RASENGAN_DEVICE_TOPOLOGY_H
#define RASENGAN_DEVICE_TOPOLOGY_H

#include <utility>
#include <vector>

namespace rasengan::device {

class CouplingMap
{
  public:
    CouplingMap() = default;

    /** @param num_qubits physical qubit count
     *  @param edges undirected couplings (validated, deduplicated) */
    CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges);

    int numQubits() const { return numQubits_; }
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }
    const std::vector<int> &neighbors(int q) const;

    bool connected(int a, int b) const;

    /**
     * Breadth-first shortest path from @p a to @p b (inclusive of both
     * endpoints).  Empty when unreachable.
     */
    std::vector<int> shortestPath(int a, int b) const;

    /** Hop distance between @p a and @p b; -1 when unreachable. */
    int distance(int a, int b) const;

    /** True when the graph is a single connected component. */
    bool isConnected() const;

    /// @name Generators
    /// @{
    /** Chain 0-1-2-...-(n-1). */
    static CouplingMap linear(int n);
    /** Rectangular grid with row-major indexing. */
    static CouplingMap grid(int rows, int cols);
    /** All-to-all coupling. */
    static CouplingMap full(int n);
    /**
     * Heavy-hex lattice in the IBM Eagle style: @p rows qubit rows of
     * @p row_len qubits, with sparse bridge qubits between consecutive
     * rows (one bridge every four columns, offset alternating by row
     * parity).  rows=7, row_len=15 approximates the 127-qubit Eagle.
     */
    static CouplingMap heavyHex(int rows, int row_len);
    /// @}

  private:
    int numQubits_ = 0;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adj_;
};

} // namespace rasengan::device

#endif // RASENGAN_DEVICE_TOPOLOGY_H
