#include "device/routing.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.h"

namespace rasengan::device {

namespace {

void
emitSwap(circuit::Circuit &out, int a, int b, bool lower)
{
    if (lower) {
        out.cx(a, b);
        out.cx(b, a);
        out.cx(a, b);
    } else {
        out.swap(a, b);
    }
}

} // namespace

RoutingResult
route(const circuit::Circuit &circ, const CouplingMap &coupling,
      bool lower_swaps)
{
    fatal_if(circ.numQubits() > coupling.numQubits(),
             "circuit needs {} qubits, device has {}", circ.numQubits(),
             coupling.numQubits());
    fatal_if(!coupling.isConnected(), "coupling map is disconnected");

    RoutingResult res;
    res.routed = circuit::Circuit(coupling.numQubits());

    // logical -> physical and its inverse.
    std::vector<int> l2p(circ.numQubits());
    std::iota(l2p.begin(), l2p.end(), 0);
    std::vector<int> p2l(coupling.numQubits(), -1);
    for (int l = 0; l < circ.numQubits(); ++l)
        p2l[l2p[l]] = l;
    res.initialLayout = l2p;

    auto swap_physical = [&](int pa, int pb) {
        emitSwap(res.routed, pa, pb, lower_swaps);
        ++res.swapsInserted;
        int la = p2l[pa], lb = p2l[pb];
        if (la >= 0)
            l2p[la] = pb;
        if (lb >= 0)
            l2p[lb] = pa;
        std::swap(p2l[pa], p2l[pb]);
    };

    for (const circuit::Gate &g : circ.gates()) {
        if (g.kind == circuit::GateKind::Barrier) {
            res.routed.barrier();
            continue;
        }
        std::vector<int> qs = g.qubits();
        fatal_if(qs.size() > 2,
                 "router requires a transpiled circuit; found {}-qubit {}",
                 qs.size(), circuit::gateName(g.kind));
        if (qs.size() == 2) {
            int pa = l2p[qs[0]];
            int pb = l2p[qs[1]];
            if (!coupling.connected(pa, pb)) {
                // Walk operand A along the shortest path until adjacent.
                std::vector<int> path = coupling.shortestPath(pa, pb);
                panic_if(path.size() < 3, "BFS path inconsistent");
                for (size_t i = 0; i + 2 < path.size(); ++i)
                    swap_physical(path[i], path[i + 1]);
                pa = l2p[qs[0]];
                pb = l2p[qs[1]];
                panic_if(!coupling.connected(pa, pb),
                         "routing failed to adjacency");
            }
        }
        circuit::Gate mapped = g;
        for (int &q : mapped.controls)
            q = l2p[q];
        for (int &q : mapped.targets)
            q = l2p[q];
        res.routed.append(std::move(mapped));
    }

    res.finalLayout = l2p;
    return res;
}

namespace {

/** All-pairs hop distances via per-node BFS. */
std::vector<std::vector<int>>
distanceMatrix(const CouplingMap &coupling)
{
    const int n = coupling.numQubits();
    std::vector<std::vector<int>> dist(n, std::vector<int>(n, -1));
    for (int s = 0; s < n; ++s) {
        std::queue<int> frontier;
        frontier.push(s);
        dist[s][s] = 0;
        while (!frontier.empty()) {
            int cur = frontier.front();
            frontier.pop();
            for (int nxt : coupling.neighbors(cur)) {
                if (dist[s][nxt] < 0) {
                    dist[s][nxt] = dist[s][cur] + 1;
                    frontier.push(nxt);
                }
            }
        }
    }
    return dist;
}

} // namespace

RoutingResult
routeLookahead(const circuit::Circuit &circ, const CouplingMap &coupling,
               bool lower_swaps)
{
    fatal_if(circ.numQubits() > coupling.numQubits(),
             "circuit needs {} qubits, device has {}", circ.numQubits(),
             coupling.numQubits());
    fatal_if(!coupling.isConnected(), "coupling map is disconnected");

    const auto dist = distanceMatrix(coupling);
    const auto &gates = circ.gates();

    // Dependency DAG: per gate, the number of unfinished predecessors and
    // the successors to release.  Wires order gates totally per qubit.
    const size_t num_gates = gates.size();
    std::vector<int> pending(num_gates, 0);
    std::vector<std::vector<size_t>> successors(num_gates);
    {
        std::vector<int> last_on(circ.numQubits(), -1);
        for (size_t i = 0; i < num_gates; ++i) {
            fatal_if(gates[i].qubits().size() > 2,
                     "router requires a transpiled circuit; found "
                     "{}-qubit {}",
                     gates[i].qubits().size(),
                     circuit::gateName(gates[i].kind));
            for (int q : gates[i].qubits()) {
                if (last_on[q] >= 0) {
                    successors[last_on[q]].push_back(i);
                    ++pending[i];
                }
                last_on[q] = static_cast<int>(i);
            }
        }
    }

    RoutingResult res;
    res.routed = circuit::Circuit(coupling.numQubits());
    std::vector<int> l2p(circ.numQubits());
    std::iota(l2p.begin(), l2p.end(), 0);
    std::vector<int> p2l(coupling.numQubits(), -1);
    for (int l = 0; l < circ.numQubits(); ++l)
        p2l[l2p[l]] = l;
    res.initialLayout = l2p;

    std::vector<size_t> front;
    for (size_t i = 0; i < num_gates; ++i)
        if (pending[i] == 0)
            front.push_back(i);

    auto emit = [&](size_t idx) {
        circuit::Gate mapped = gates[idx];
        for (int &q : mapped.controls)
            q = l2p[q];
        for (int &q : mapped.targets)
            q = l2p[q];
        res.routed.append(std::move(mapped));
        for (size_t s : successors[idx])
            if (--pending[s] == 0)
                front.push_back(s);
    };

    auto swap_physical = [&](int pa, int pb) {
        emitSwap(res.routed, pa, pb, lower_swaps);
        ++res.swapsInserted;
        int la = p2l[pa], lb = p2l[pb];
        if (la >= 0)
            l2p[la] = pb;
        if (lb >= 0)
            l2p[lb] = pa;
        std::swap(p2l[pa], p2l[pb]);
    };

    auto gate_distance = [&](size_t idx) {
        auto qs = gates[idx].qubits();
        return dist[l2p[qs[0]]][l2p[qs[1]]];
    };

    const double lookahead_weight = 0.5;
    const int lookahead_window = 20;
    int stall = 0;
    const int stall_limit = 2 * coupling.numQubits();

    while (!front.empty()) {
        // Execute everything currently executable.
        bool executed = false;
        for (size_t i = 0; i < front.size();) {
            size_t idx = front[i];
            auto qs = gates[idx].qubits();
            bool ok = qs.size() < 2 ||
                      coupling.connected(l2p[qs[0]], l2p[qs[1]]);
            if (ok) {
                front.erase(front.begin() + i);
                emit(idx);
                executed = true;
                i = 0; // releases may enable earlier entries
            } else {
                ++i;
            }
        }
        if (front.empty())
            break;
        if (executed) {
            stall = 0;
            continue;
        }

        if (++stall > stall_limit) {
            // Heuristic stalled: walk the first blocked gate directly.
            auto qs = gates[front[0]].qubits();
            std::vector<int> path =
                coupling.shortestPath(l2p[qs[0]], l2p[qs[1]]);
            panic_if(path.size() < 3, "stall fallback on adjacent gate");
            for (size_t i = 0; i + 2 < path.size(); ++i)
                swap_physical(path[i], path[i + 1]);
            stall = 0;
            continue;
        }

        // Lookahead window: the next blocked 2q gates in program order.
        std::vector<size_t> window;
        for (size_t idx = front[0];
             idx < num_gates &&
             static_cast<int>(window.size()) < lookahead_window;
             ++idx) {
            if (gates[idx].qubits().size() == 2)
                window.push_back(idx);
        }

        // Candidate SWAPs: edges touching a physical qubit of a blocked
        // front gate.
        std::vector<std::pair<int, int>> candidates;
        for (size_t idx : front) {
            for (int lq : gates[idx].qubits()) {
                int pq = l2p[lq];
                for (int nbr : coupling.neighbors(pq))
                    candidates.emplace_back(std::min(pq, nbr),
                                            std::max(pq, nbr));
            }
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
        panic_if(candidates.empty(), "no candidate swaps for blocked gate");

        auto score = [&](const std::pair<int, int> &swap_edge) {
            // Hypothetically apply, score, undo (cheap via l2p tweaks).
            auto [pa, pb] = swap_edge;
            int la = p2l[pa], lb = p2l[pb];
            if (la >= 0)
                l2p[la] = pb;
            if (lb >= 0)
                l2p[lb] = pa;
            double total = 0.0;
            for (size_t idx : front)
                total += gate_distance(idx);
            double ahead = 0.0;
            for (size_t idx : window)
                ahead += gate_distance(idx);
            if (la >= 0)
                l2p[la] = pa;
            if (lb >= 0)
                l2p[lb] = pb;
            return total + lookahead_weight * ahead /
                               std::max<size_t>(window.size(), 1);
        };

        std::pair<int, int> best = candidates[0];
        double best_score = score(candidates[0]);
        for (size_t i = 1; i < candidates.size(); ++i) {
            double s = score(candidates[i]);
            if (s < best_score) {
                best = candidates[i];
                best_score = s;
            }
        }
        swap_physical(best.first, best.second);
    }

    res.finalLayout = l2p;
    return res;
}

} // namespace rasengan::device
