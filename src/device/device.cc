#include "device/device.h"

#include <cmath>

namespace rasengan::device {

qsim::NoiseModel
DeviceModel::toNoiseModel() const
{
    qsim::NoiseModel noise;
    noise.depol1q = error1q;
    noise.depol2q = error2q;
    noise.readoutError = readoutError;
    // Decoherence over one two-qubit gate duration, the dominant window.
    double dt_us = gate2qNs * 1e-3;
    if (t1Us > 0.0)
        noise.amplitudeDamping = 1.0 - std::exp(-dt_us / t1Us);
    if (t2Us > 0.0) {
        // Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1).
        double inv_tphi = 1.0 / t2Us - (t1Us > 0.0 ? 1.0 / (2.0 * t1Us) : 0.0);
        if (inv_tphi > 0.0)
            noise.phaseDamping = 1.0 - std::exp(-dt_us * inv_tphi);
    }
    return noise;
}

DeviceModel
DeviceModel::ibmKyiv()
{
    DeviceModel d;
    d.name = "ibm_kyiv";
    d.coupling = CouplingMap::heavyHex(7, 15);
    d.error1q = 3.5e-4;
    d.error2q = 1.2e-2;
    d.readoutError = 1.3e-2;
    d.t1Us = 263.0;
    d.t2Us = 112.0;
    d.gate1qNs = 60.0;
    d.gate2qNs = 533.0;
    d.readoutNs = 1244.0;
    d.shotOverheadUs = 250.0;
    return d;
}

DeviceModel
DeviceModel::ibmBrisbane()
{
    DeviceModel d;
    d.name = "ibm_brisbane";
    d.coupling = CouplingMap::heavyHex(7, 15);
    d.error1q = 2.5e-4;
    d.error2q = 8.2e-3;
    d.readoutError = 1.1e-2;
    d.t1Us = 221.0;
    d.t2Us = 134.0;
    d.gate1qNs = 60.0;
    d.gate2qNs = 660.0;
    d.readoutNs = 1300.0;
    d.shotOverheadUs = 250.0;
    return d;
}

DeviceModel
DeviceModel::ibmQuebec()
{
    DeviceModel d;
    d.name = "ibm_quebec";
    d.coupling = CouplingMap::heavyHex(7, 15);
    d.error1q = 2.2e-4;
    d.error2q = 7.7e-3;
    d.readoutError = 1.0e-2;
    d.t1Us = 280.0;
    d.t2Us = 180.0;
    d.gate1qNs = 60.0;
    d.gate2qNs = 533.0;
    d.readoutNs = 1216.0;
    d.shotOverheadUs = 250.0;
    return d;
}

DeviceModel
DeviceModel::noiseless(int n)
{
    DeviceModel d;
    d.name = "noiseless";
    d.coupling = CouplingMap::full(n);
    d.gate1qNs = 60.0;
    d.gate2qNs = 533.0;
    d.readoutNs = 1200.0;
    d.shotOverheadUs = 250.0;
    return d;
}

} // namespace rasengan::device
