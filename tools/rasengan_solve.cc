/**
 * @file
 * Command-line solver.
 *
 * Usage:
 *   rasengan_solve --benchmark F1 [options]
 *   rasengan_solve --file instance.txt [options]
 *   rasengan_solve --dump F1              # print an instance file
 *
 * Options:
 *   --algorithm rasengan|chocoq|pqaoa|hea   (default rasengan)
 *   --iterations N                          (default 200)
 *   --seed S                                (default 7)
 *   --noise none|kyiv|brisbane              (default none)
 *   --optimizer cobyla|nelder-mead|spsa|adam-spsa
 *   --draw                                  ASCII-draw the first segment
 *   --qasm                                  dump the first segment QASM
 *   --faults RATE    inject transient faults at RATE (0..1) per execution
 *   --retries N      retry budget per execution (default 5)
 *   --checkpoint P   checkpoint/resume the solve through file P
 *   --threads N      simulation threads (default: RASENGAN_THREADS env,
 *                    then hardware concurrency); results are
 *                    bit-identical at every setting
 *   --simd ISA       amplitude kernel ISA: auto|avx2|neon|scalar
 *                    (default: RASENGAN_SIMD env, then auto); results
 *                    are bit-identical for every choice
 *   --trace PATH     write a Chrome trace-event JSON of the solve
 *                    (load in Perfetto or chrome://tracing)
 *   --metrics PATH   write the metrics registry; Prometheus text, or
 *                    flat JSON when PATH ends in .json
 *   --tune MODE      adaptive execution: off|observe|auto (default:
 *                    RASENGAN_TUNE env, then off); auto picks
 *                    result-invariant knobs from the cost model
 *   --tune-model P   cost-model journal (default: RASENGAN_TUNE_MODEL
 *                    env, then rasengan_tune_model.jsonl)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/chocoq.h"
#include "common/parallel.h"
#include "baselines/hea.h"
#include "baselines/pqaoa.h"
#include "circuit/draw.h"
#include "core/rasengan.h"
#include "device/device.h"
#include "problems/io.h"
#include "problems/metrics.h"
#include "problems/suite.h"
#include "obs_cli.h"
#include "tune_cli.h"

using namespace rasengan;

namespace {

struct Args
{
    std::string benchmark;
    std::string file;
    std::string dump;
    std::string algorithm = "rasengan";
    std::string noise = "none";
    std::string optimizer = "cobyla";
    int iterations = 200;
    uint64_t seed = 7;
    bool draw = false;
    bool qasm = false;
    double faults = 0.0;
    int retries = 5;
    std::string checkpoint;
    int threads = 0;
    std::string simd;
    std::string tune;
    std::string tuneModel;
    tools::ObsCliOptions obs;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: rasengan_solve (--benchmark ID | --file PATH | "
                 "--dump ID)\n"
                 "  [--algorithm rasengan|chocoq|pqaoa|hea] "
                 "[--iterations N] [--seed S]\n"
                 "  [--noise none|kyiv|brisbane] "
                 "[--optimizer cobyla|nelder-mead|spsa|adam-spsa]\n"
                 "  [--draw] [--qasm]\n"
                 "  [--faults RATE] [--retries N] [--checkpoint PATH]\n"
                 "  [--threads N] [--simd auto|avx2|neon|scalar]\n"
                 "  [--tune off|observe|auto] [--tune-model PATH]\n"
                 "  [--trace PATH] [--metrics PATH] "
                 "[--flight on|off|N|PATH]\n");
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (flag == "--benchmark") {
            const char *v = next();
            if (!v)
                return false;
            args.benchmark = v;
        } else if (flag == "--file") {
            const char *v = next();
            if (!v)
                return false;
            args.file = v;
        } else if (flag == "--dump") {
            const char *v = next();
            if (!v)
                return false;
            args.dump = v;
        } else if (flag == "--algorithm") {
            const char *v = next();
            if (!v)
                return false;
            args.algorithm = v;
        } else if (flag == "--noise") {
            const char *v = next();
            if (!v)
                return false;
            args.noise = v;
        } else if (flag == "--optimizer") {
            const char *v = next();
            if (!v)
                return false;
            args.optimizer = v;
        } else if (flag == "--iterations") {
            const char *v = next();
            if (!v)
                return false;
            args.iterations = std::atoi(v);
        } else if (flag == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            args.seed = std::strtoull(v, nullptr, 10);
        } else if (flag == "--faults") {
            const char *v = next();
            if (!v)
                return false;
            char *end = nullptr;
            args.faults = std::strtod(v, &end);
            if (end == v || *end != '\0' || args.faults < 0.0 ||
                args.faults > 1.0) {
                std::fprintf(stderr, "--faults needs a rate in [0, 1]\n");
                return false;
            }
        } else if (flag == "--retries") {
            const char *v = next();
            if (!v)
                return false;
            args.retries = std::atoi(v);
            if (args.retries < 1) {
                std::fprintf(stderr, "--retries needs a count >= 1\n");
                return false;
            }
        } else if (flag == "--checkpoint") {
            const char *v = next();
            if (!v)
                return false;
            args.checkpoint = v;
        } else if (flag == "--threads") {
            const char *v = next();
            if (!v)
                return false;
            args.threads = std::atoi(v);
            if (args.threads < 1) {
                std::fprintf(stderr, "--threads needs a count >= 1\n");
                return false;
            }
        } else if (flag == "--simd") {
            const char *v = next();
            if (!v)
                return false;
            args.simd = v;
        } else if (flag == "--tune") {
            const char *v = next();
            if (!v)
                return false;
            args.tune = v;
        } else if (flag == "--tune-model") {
            const char *v = next();
            if (!v)
                return false;
            args.tuneModel = v;
        } else if (flag == "--trace") {
            const char *v = next();
            if (!v)
                return false;
            args.obs.tracePath = v;
        } else if (flag == "--metrics") {
            const char *v = next();
            if (!v)
                return false;
            args.obs.metricsPath = v;
        } else if (flag == "--flight") {
            const char *v = next();
            if (!v)
                return false;
            args.obs.flightSpec = v;
        } else if (flag == "--draw") {
            args.draw = true;
        } else if (flag == "--qasm") {
            args.qasm = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            return false;
        }
    }
    return true;
}

std::optional<opt::Method>
parseOptimizer(const std::string &name)
{
    if (name == "cobyla")
        return opt::Method::Cobyla;
    if (name == "nelder-mead")
        return opt::Method::NelderMead;
    if (name == "spsa")
        return opt::Method::Spsa;
    if (name == "adam-spsa")
        return opt::Method::AdamSpsa;
    return std::nullopt;
}

exec::ResilienceOptions
makeResilience(const Args &args)
{
    exec::ResilienceOptions r;
    r.faults.rate = args.faults;
    r.faults.seed = args.seed ^ 0xFA17;
    r.retry.maxAttempts = args.retries;
    r.threads = args.threads;
    return r;
}

std::optional<qsim::NoiseModel>
parseNoise(const std::string &name)
{
    if (name == "none")
        return qsim::NoiseModel{};
    if (name == "kyiv")
        return device::DeviceModel::ibmKyiv().toNoiseModel();
    if (name == "brisbane")
        return device::DeviceModel::ibmBrisbane().toNoiseModel();
    return std::nullopt;
}

int
runRasengan(const problems::Problem &problem, const Args &args,
            opt::Method method, const qsim::NoiseModel &noise,
            tune::Tuner &tuner)
{
    core::RasenganOptions options;
    options.maxIterations = args.iterations;
    options.seed = args.seed;
    options.optimizer = method;
    if (noise.enabled()) {
        options.execution =
            core::RasenganOptions::Execution::NoisyGateLevel;
        options.noise = noise;
        options.shotsPerSegment = 256;
        options.trajectories = 4;
    }
    options.resilience = makeResilience(args);
    options.checkpointPath = args.checkpoint;
    if (args.faults > 0.0 &&
        options.execution == core::RasenganOptions::Execution::ExactSparse) {
        // Faults act on shot-based executions; the exact path never
        // leaves the process.
        options.execution = core::RasenganOptions::Execution::SampledSparse;
    }

    // Adaptive execution: decide the result-invariant knobs for this
    // solve.  The single solve is strictly serial, so process knobs
    // (threads, fusion, ISA) may be applied too.
    tune::TuneDecision decision;
    if (tuner.mode() != tune::TuneMode::Off) {
        tune::WorkloadFingerprint fp;
        fp.numVars = problem.numVars();
        fp.numConstraints = problem.numConstraints();
        fp.algorithm = args.algorithm;
        fp.execution =
            options.execution == core::RasenganOptions::Execution::ExactSparse
                ? "exact"
            : options.execution ==
                    core::RasenganOptions::Execution::SampledSparse
                ? "sampled"
                : "noisy";
        fp.iterations = args.iterations;
        fp.shots = options.shotsPerSegment;
        decision = tuner.decide(fp);
        tools::applyTuneDecision(decision);
        options.denseIndexLookup = decision.denseLookup();
        options.cacheRotationPlans = decision.cachePlans();
        std::printf("tune: %s [%s] bucket %s\n",
                    decision.source.c_str(),
                    tune::renderArms(decision.arms).c_str(),
                    decision.bucket.c_str());
    }
    core::RasenganSolver solver(problem, options);

    std::printf("pipeline: %zu transitions, chain %zu (of %zu unpruned), "
                "%zu segments\n",
                solver.transitions().size(), solver.chain().steps.size(),
                solver.chain().unprunedSteps.size(),
                solver.segments().size());

    if (args.draw || args.qasm) {
        std::vector<double> nominal(solver.numParams(), 0.6);
        circuit::Circuit segment = solver.segmentCircuit(
            0, problem.trivialFeasible(), nominal);
        if (args.draw) {
            std::printf("\nfirst segment (native gates):\n%s\n",
                        circuit::drawCircuit(segment, 24).c_str());
        }
        if (args.qasm)
            std::printf("\n%s\n", segment.toQasm().c_str());
    }

    const auto tuneStart = std::chrono::steady_clock::now();
    core::RasenganResult res = solver.run();
    if (tuner.mode() != tune::TuneMode::Off && !res.failed) {
        tune::Measurement m;
        m.bucket = decision.bucket;
        m.arms = decision.arms;
        m.wallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - tuneStart)
                       .count();
        m.source = decision.source;
        m.supportMax = solver.maxObservedSupport();
        m.planRecorded = solver.planStats().recorded;
        m.planReplayed = solver.planStats().replayed;
        tuner.record(m);
    }
    if (res.failed) {
        std::printf("run FAILED: purification removed every outcome "
                    "(noise too strong for the segment depth)\n");
        return 2;
    }
    std::printf("\nsolution  %s\n",
                res.solution.toString(problem.numVars()).c_str());
    std::printf("objective %.4f", res.objectiveValue);
    if (problem.enumerationEnabled())
        std::printf("   (optimum %.4f, ARG %.4f)", problem.optimalValue(),
                    problem.arg(res.expectedObjective));
    std::printf("\nin-constraints %.1f%%   segment depth %d   params %d\n",
                100.0 * res.inConstraintsRate, res.maxSegmentDepth,
                res.numParams);
    std::printf("latency: %.3fs classical + %.3fs quantum (model)\n",
                res.classicalSeconds, res.quantumSeconds);
    if (res.resumed)
        std::printf("resumed from checkpoint '%s'\n",
                    args.checkpoint.c_str());
    if (args.faults > 0.0) {
        const exec::ExecStats &st = res.execStats;
        std::printf("resilience: %llu executions, %llu retries, "
                    "%llu breaker trips, %d demotions, level %s\n",
                    static_cast<unsigned long long>(st.executions),
                    static_cast<unsigned long long>(st.retries),
                    static_cast<unsigned long long>(st.breakerTrips),
                    st.demotions,
                    exec::degradationLevelName(res.degradation));
    }
    return 0;
}

int
runBaseline(const problems::Problem &problem, const Args &args,
            opt::Method method, const qsim::NoiseModel &noise)
{
    baselines::VqaResult res;
    if (args.algorithm == "chocoq") {
        baselines::ChocoqOptions o;
        o.maxIterations = args.iterations;
        o.seed = args.seed;
        o.noise = noise;
        o.optimizer = method;
        o.resilience = makeResilience(args);
        res = baselines::Chocoq(problem, o).run();
    } else if (args.algorithm == "pqaoa") {
        baselines::PqaoaOptions o;
        o.maxIterations = args.iterations;
        o.seed = args.seed;
        o.noise = noise;
        o.optimizer = method;
        o.smartInit = true;
        o.resilience = makeResilience(args);
        res = baselines::Pqaoa(problem, o).run();
    } else {
        baselines::HeaOptions o;
        o.maxIterations = args.iterations;
        o.seed = args.seed;
        o.noise = noise;
        o.optimizer = method;
        o.resilience = makeResilience(args);
        res = baselines::Hea(problem, o).run();
    }
    std::printf("expected objective %.4f", res.expectedObjective);
    if (problem.enumerationEnabled())
        std::printf("   (optimum %.4f, ARG %.4f)", problem.optimalValue(),
                    problem.arg(res.expectedObjective));
    std::printf("\nin-constraints %.1f%%   depth %d   params %d\n",
                100.0 * res.inConstraintsRate, res.circuitDepth,
                res.numParams);
    std::printf("best feasible in output: %.4f\n",
                problems::bestFeasibleObjective(problem, res.counts));
    if (args.faults > 0.0) {
        const exec::ExecStats &st = res.execStats;
        std::printf("resilience: %llu executions, %llu retries, "
                    "%llu breaker trips, %d demotions, level %s\n",
                    static_cast<unsigned long long>(st.executions),
                    static_cast<unsigned long long>(st.retries),
                    static_cast<unsigned long long>(st.breakerTrips),
                    st.demotions,
                    exec::degradationLevelName(res.degradation));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        usage();
        return 1;
    }
    if (args.threads > 0)
        parallel::setThreadCount(args.threads);
    if (!tools::applySimdFlag(args.simd))
        return 1;
    tools::obsCliStart(args.obs);

    if (!args.dump.empty()) {
        if (!problems::isBenchmarkId(args.dump)) {
            std::fprintf(stderr, "unknown benchmark '%s'\n",
                         args.dump.c_str());
            return 1;
        }
        std::printf("%s",
                    problems::writeProblem(
                        problems::makeBenchmark(args.dump))
                        .c_str());
        return 0;
    }

    std::optional<problems::Problem> problem;
    if (!args.benchmark.empty()) {
        if (!problems::isBenchmarkId(args.benchmark)) {
            std::fprintf(stderr, "unknown benchmark '%s'\n",
                         args.benchmark.c_str());
            return 1;
        }
        problem = problems::makeBenchmark(args.benchmark);
    } else if (!args.file.empty()) {
        std::ifstream in(args.file);
        if (!in) {
            std::fprintf(stderr, "cannot open '%s'\n", args.file.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        problems::ProblemParseResult parsed =
            problems::parseProblem(buf.str());
        if (!parsed.problem) {
            std::fprintf(stderr, "%s:%d: %s\n", args.file.c_str(),
                         parsed.errorLine, parsed.error.c_str());
            return 1;
        }
        problem = std::move(parsed.problem);
    } else {
        usage();
        return 1;
    }

    auto method = parseOptimizer(args.optimizer);
    auto noise = parseNoise(args.noise);
    if (!method || !noise) {
        usage();
        return 1;
    }

    std::printf("instance %s (%s): %d vars, %d constraints",
                problem->id().c_str(), problem->family().c_str(),
                problem->numVars(), problem->numConstraints());
    if (problem->enumerationEnabled())
        std::printf(", %zu feasible", problem->feasibleCount());
    std::printf("\nalgorithm %s, optimizer %s, noise %s, simd %s, "
                "%d iterations\n\n",
                args.algorithm.c_str(), args.optimizer.c_str(),
                args.noise.c_str(),
                qsim::simdIsaName(qsim::simdActiveIsa()),
                args.iterations);

    // Adaptive-execution tuner: host knobs are captured AFTER
    // --threads/--simd applied, so the default arms reproduce the
    // untuned configuration exactly.
    tune::TunerOptions tuneOpts;
    if (!tools::resolveTunerOptions(args.tune, args.tuneModel, tuneOpts))
        return 1;
    tools::fillHostKnobs(tuneOpts);
    tune::Tuner tuner(tuneOpts);
    tuner.load();

    int rc = -1;
    if (args.algorithm == "rasengan") {
        rc = runRasengan(*problem, args, *method, *noise, tuner);
    } else if (args.algorithm == "chocoq" || args.algorithm == "pqaoa" ||
               args.algorithm == "hea") {
        rc = runBaseline(*problem, args, *method, *noise);
    }
    if (rc >= 0) {
        if (!tools::obsCliFinish(args.obs) && rc == 0)
            rc = 1;
        return rc;
    }
    std::fprintf(stderr, "unknown algorithm '%s'\n",
                 args.algorithm.c_str());
    return 1;
}
