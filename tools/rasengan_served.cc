/**
 * @file
 * Always-on serve daemon driver.
 *
 * Listens on a Unix or TCP socket for newline-delimited JSONL solve
 * requests (the batch rasengan_serve format plus `priority`,
 * `deadline_ms`, and `timeout_ms`) and streams one deterministic
 * result line back per job as it finishes.  A line starting with
 * "GET " is answered as an HTTP/1.0 probe: /healthz, /readyz,
 * /metrics (Prometheus text), /metrics.json, /debug/flight (the live
 * flight-recorder ring as JSON).
 *
 * With --journal the daemon is crash-safe: every accepted request is
 * journaled before acknowledgment, and a restarted daemon re-runs
 * exactly the unfinished jobs, producing byte-identical result lines
 * (child seeds derive from request content, not timing).
 *
 * Signals: SIGTERM/SIGINT drain gracefully -- stop accepting, finish
 * or checkpoint the in-flight job, flush the journal, exit 0.  SIGHUP
 * compacts the journal in place and, with --policy, re-reads the
 * admission/SLO policy file.
 *
 * Usage:
 *   rasengan_served --listen unix:/tmp/rasengan.sock [options]
 *   rasengan_served --listen tcp:7733 [options]
 *
 * Options:
 *   --journal FILE       write-ahead job journal (crash recovery)
 *   --results FILE       append every result line (audit mirror)
 *   --checkpoint-dir DIR segment checkpoints for drain/crash resume
 *   --policy FILE        admission/SLO policy file (serve/policy flat
 *                        JSON); loaded at start, re-read on SIGHUP
 *   --threads N          simulation pool threads (0 = current config)
 *   --batch-seed S       mixed into every job's child seed (default 0)
 *   --cache-mb M         artifact cache budget in MiB (default 64)
 *   --max-queue N        admission: max queued jobs
 *   --max-qubits N       admission: max problem variables
 *   --max-shots N        admission: max shots per job
 *   --max-cost UNITS     admission: per-job cost ceiling
 *   --cost-rate R        SLO: worker throughput in cost units/second
 *                        (calibrates the deadline-miss predictor)
 *   --shed-margin F      SLO: fraction of a deadline kept as safety
 *                        margin before shedding (default 0.1)
 *   --simd ISA           amplitude kernel ISA: auto|avx2|neon|scalar
 *                        (default: RASENGAN_SIMD env, then auto); the
 *                        active ISA is logged at startup and exported
 *                        as the simd_isa_info gauge on /metrics.json
 *   --tune MODE          adaptive execution: off|observe|auto (default:
 *                        RASENGAN_TUNE env, then off).  The worker
 *                        thread runs jobs strictly serially, so auto
 *                        may retune process knobs (threads, fusion,
 *                        SIMD ISA) per job on top of the per-job
 *                        engine/plan knobs; every knob is
 *                        result-invariant
 *   --tune-model FILE    cost-model journal (default: RASENGAN_TUNE_MODEL
 *                        env, then rasengan_tune_model.jsonl)
 *   --flight SPEC        flight recorder: on|off|N (ring entries)|
 *                        /dump/path (default: RASENGAN_FLIGHT env, then
 *                        ON -- the daemon always keeps a flight ring).
 *                        SIGQUIT dumps the ring and keeps serving; the
 *                        live ring is at GET /debug/flight
 *
 * Exit status: 0 after a clean drain, 1 on startup failure.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/flight.h"
#include "qsim/simd.h"
#include "serve/daemon.h"
#include "tune_cli.h"

using namespace rasengan;

namespace {

serve::Daemon *g_daemon = nullptr;

extern "C" void
onSignal(int sig)
{
    if (g_daemon != nullptr)
        g_daemon->notifySignal(sig); // one async-signal-safe write(2)
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: rasengan_served --listen (unix:PATH | tcp:[HOST:]PORT)\n"
        "  [--journal FILE] [--results FILE] [--checkpoint-dir DIR]\n"
        "  [--policy FILE]\n"
        "  [--threads N] [--batch-seed S] [--cache-mb M]\n"
        "  [--max-queue N] [--max-qubits N] [--max-shots N] "
        "[--max-cost UNITS]\n"
        "  [--cost-rate UNITS_PER_S] [--shed-margin FRACTION]\n"
        "  [--simd auto|avx2|neon|scalar]\n"
        "  [--tune off|observe|auto] [--tune-model FILE]\n"
        "  [--flight on|off|N|PATH]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    serve::DaemonOptions options;
    options.listen.clear();
    long cacheMb = 64;
    std::string simdSpec;
    std::string tuneSpec;
    std::string tuneModelSpec;
    std::string flightSpec;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (flag == "--listen" && (v = next()))
            options.listen = v;
        else if (flag == "--journal" && (v = next()))
            options.journalPath = v;
        else if (flag == "--results" && (v = next()))
            options.resultsPath = v;
        else if (flag == "--checkpoint-dir" && (v = next()))
            options.checkpointDir = v;
        else if (flag == "--policy" && (v = next()))
            options.policyPath = v;
        else if (flag == "--threads" && (v = next()))
            options.threads =
                static_cast<int>(std::strtol(v, nullptr, 10));
        else if (flag == "--batch-seed" && (v = next()))
            options.batchSeed = std::strtoull(v, nullptr, 10);
        else if (flag == "--cache-mb" && (v = next()))
            cacheMb = std::strtol(v, nullptr, 10);
        else if (flag == "--max-queue" && (v = next()))
            options.limits.maxQueuedJobs =
                static_cast<size_t>(std::strtol(v, nullptr, 10));
        else if (flag == "--max-qubits" && (v = next()))
            options.limits.maxQubits =
                static_cast<int>(std::strtol(v, nullptr, 10));
        else if (flag == "--max-shots" && (v = next()))
            options.limits.maxShotsPerJob =
                std::strtoull(v, nullptr, 10);
        else if (flag == "--max-cost" && (v = next()))
            options.limits.maxJobCostUnits = std::strtod(v, nullptr);
        else if (flag == "--cost-rate" && (v = next()))
            options.slo.costUnitsPerSecond = std::strtod(v, nullptr);
        else if (flag == "--shed-margin" && (v = next()))
            options.slo.shedMargin = std::strtod(v, nullptr);
        else if (flag == "--simd" && (v = next()))
            simdSpec = v;
        else if (flag == "--tune" && (v = next()))
            tuneSpec = v;
        else if (flag == "--tune-model" && (v = next()))
            tuneModelSpec = v;
        else if (flag == "--flight" && (v = next()))
            flightSpec = v;
        else {
            std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                         flag.c_str());
            usage();
            return 1;
        }
    }
    if (options.listen.empty()) {
        usage();
        return 1;
    }
    if (cacheMb < 0) {
        std::fprintf(stderr, "--cache-mb must be >= 0\n");
        return 1;
    }
    options.cacheBudgetBytes = static_cast<uint64_t>(cacheMb) << 20;

    // Pin the amplitude kernel tier before the daemon starts serving:
    // this also registers the simd_isa_info gauge, so the very first
    // /metrics.json probe already reports the active ISA.
    if (!simdSpec.empty()) {
        std::string simdError;
        if (!qsim::selectSimdIsa(simdSpec, &simdError)) {
            std::fprintf(stderr, "rasengan_served: --simd: %s\n",
                         simdError.c_str());
            return 1;
        }
    }
    const char *simdIsa = qsim::simdIsaName(qsim::simdActiveIsa());

    // An explicit --flight decision sticks: Daemon::start() applies the
    // env/default-ON convention only when nothing was decided here.
    if (!flightSpec.empty())
        obs::flight::configureFromSpec(flightSpec, /*defaultOn=*/true);

    // Adaptive execution: the daemon's worker thread runs jobs strictly
    // serially, so process knobs (threads, fusion, ISA) can be retuned
    // per job in addition to the per-job engine/plan knobs.  The tuner
    // outlives the daemon (hooks reference it).
    tune::TunerOptions tuneOpts;
    if (!tools::resolveTunerOptions(tuneSpec, tuneModelSpec, tuneOpts))
        return 1;
    tools::fillHostKnobs(tuneOpts);
    if (options.threads > 0)
        tuneOpts.defaultThreads = options.threads;
    tune::Tuner tuner(tuneOpts);
    tuner.load();
    if (tuner.mode() != tune::TuneMode::Off) {
        options.onJobPrepared = [&tuner](serve::PreparedJob &job) {
            tune::TuneDecision d =
                tuner.decide(tune::fingerprintForJob(job));
            tools::applyTuneDecision(d);
            job.tuning.denseLookup = d.denseLookup();
            job.tuning.cachePlans = d.cachePlans();
            job.tuning.bucket = d.bucket;
            job.tuning.decision = tune::renderArms(d.arms);
            job.tuning.source = d.source;
        };
        options.onJobComplete = [&tuner](const serve::PreparedJob &,
                                         const serve::JobResult &result) {
            tune::Measurement m;
            if (tune::measurementForResult(result, &m))
                tuner.record(m);
        };
    }

    serve::Daemon daemon(options);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "rasengan_served: %s\n", error.c_str());
        return 1;
    }

    g_daemon = &daemon;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGHUP, onSignal);
    std::signal(SIGPIPE, SIG_IGN); // client hangups are routine

    std::fprintf(stderr, "rasengan_served: listening on %s%s (simd %s)\n",
                 options.listen.c_str(),
                 options.journalPath.empty() ? ""
                                             : " (journaled)",
                 simdIsa);
    daemon.wait();
    g_daemon = nullptr;

    serve::DaemonStats stats = daemon.stats();
    std::fprintf(stderr,
                 "rasengan_served: drained (%llu accepted, %llu "
                 "completed, %llu shed, %llu replayed, %llu "
                 "checkpointed)\n",
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.shed),
                 static_cast<unsigned long long>(stats.replayed),
                 static_cast<unsigned long long>(stats.drainCancelled));
    return 0;
}
