/**
 * @file
 * Shared --tune/--tune-model plumbing for the CLI tools.
 *
 * Every entry point takes the same two flags:
 *
 *   --tune off|observe|auto   adaptive-execution mode (default: the
 *                             RASENGAN_TUNE env var, then off)
 *   --tune-model PATH         cost-model journal (default: the
 *                             RASENGAN_TUNE_MODEL env var, then
 *                             rasengan_tune_model.jsonl)
 *
 * resolveTunerOptions() folds flag > env > default, and
 * fillHostKnobs() fills the host-capability fields (thread ceiling,
 * available ISAs) for tools that can honor process-wide knobs.
 * applyTuneDecision()/restoreTuneDefaults() are the process-knob
 * apply/undo pair for strictly serial executors.
 */

#ifndef RASENGAN_TOOLS_TUNE_CLI_H
#define RASENGAN_TOOLS_TUNE_CLI_H

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "circuit/fusion.h"
#include "common/parallel.h"
#include "qsim/simd.h"
#include "tune/tuner.h"

namespace rasengan::tools {

inline constexpr const char *kDefaultTuneModelPath =
    "rasengan_tune_model.jsonl";

/**
 * Resolve --tune/--tune-model into @p opts (mode + modelPath only).
 * @p modeSpec and @p modelSpec are the raw flag values ("" = not
 * given).  Returns false after a diagnostic on a bad mode spec.
 */
inline bool
resolveTunerOptions(const std::string &modeSpec,
                    const std::string &modelSpec,
                    tune::TunerOptions &opts)
{
    opts.mode = tune::envTuneMode(tune::TuneMode::Off);
    if (!modeSpec.empty() && !tune::parseTuneMode(modeSpec, &opts.mode)) {
        std::fprintf(stderr, "--tune wants off|observe|auto, got '%s'\n",
                     modeSpec.c_str());
        return false;
    }
    opts.modelPath = modelSpec.empty()
                         ? tune::envTuneModel(kDefaultTuneModelPath)
                         : modelSpec;
    return true;
}

/**
 * Fill the host-capability fields for a PROCESS-knob-capable tuner:
 * current pool threads as the default arm, hardware concurrency as the
 * explore ceiling, and the active/available SIMD ISAs.  Call AFTER
 * --threads/--simd have been applied so the default arms reproduce the
 * untuned configuration exactly.
 */
inline void
fillHostKnobs(tune::TunerOptions &opts)
{
    opts.defaultThreads = parallel::threadCount();
    opts.maxThreads = std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
    opts.maxThreads = std::max(opts.maxThreads, opts.defaultThreads);
    opts.defaultIsa = qsim::simdIsaName(qsim::simdActiveIsa());
    opts.isas.clear();
    for (qsim::SimdIsa isa : qsim::simdAvailableIsas())
        opts.isas.push_back(qsim::simdIsaName(isa));
}

/**
 * Apply a decision's PROCESS-WIDE knobs (threads, fusion, SIMD ISA).
 * Only strictly serial executors may call this -- the knobs are global,
 * so a concurrent scheduler would leak one job's arms into another's
 * measurement.  All three knobs are result-invariant.
 */
inline void
applyTuneDecision(const tune::TuneDecision &d)
{
    if (d.threads() > 0)
        parallel::setThreadCount(d.threads());
    circuit::setFusionEnabled(d.fusion());
    if (!d.isa().empty())
        qsim::selectSimdIsa(d.isa(), nullptr);
}

} // namespace rasengan::tools

#endif // RASENGAN_TOOLS_TUNE_CLI_H
