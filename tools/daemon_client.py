#!/usr/bin/env python3
"""Minimal client for the rasengan_served JSONL socket protocol.

The daemon speaks newline-delimited JSON over a Unix or TCP socket and
answers HTTP/1.0 probe lines on the same port, so this client is all the
tooling an operator (or the CI daemon-smoke job) needs:

  daemon_client.py send ADDR REQUESTS.jsonl [--read N] [--retry S]
      Stream request lines to the daemon; with --read, wait for N
      response lines and echo them to stdout.

  daemon_client.py probe ADDR PATH
      Issue an HTTP GET (e.g. /healthz, /metrics.json) and print the
      response body; exits non-zero unless the status is 200.

  daemon_client.py wait-idle JOURNAL [--jobs N] [--timeout S]
      Poll a job journal until every accepted job has a terminal
      record (and, with --jobs, until N jobs exist at all).

  daemon_client.py verify JOURNAL REFERENCE.jsonl
      Check that every done record in the journal carries a result
      line byte-identical to the same id's line in REFERENCE.jsonl,
      and that the journal holds no pending jobs.

ADDR is "unix:PATH" or "tcp:HOST:PORT".
"""

import argparse
import json
import socket
import sys
import time


def connect(addr, retry_seconds=10.0):
    """Connect to unix:PATH or tcp:HOST:PORT, retrying while the
    daemon is still binding its socket."""
    deadline = time.monotonic() + retry_seconds
    last = None
    while time.monotonic() < deadline:
        try:
            if addr.startswith("unix:"):
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.connect(addr[len("unix:"):])
            elif addr.startswith("tcp:"):
                host, _, port = addr[len("tcp:"):].rpartition(":")
                s = socket.create_connection((host or "127.0.0.1",
                                              int(port)))
            else:
                raise SystemExit(f"bad address {addr!r}: want "
                                 "unix:PATH or tcp:HOST:PORT")
            return s
        except OSError as exc:
            last = exc
            time.sleep(0.05)
    raise SystemExit(f"cannot connect to {addr}: {last}")


def read_lines(sock, count, timeout=300.0):
    sock.settimeout(timeout)
    buffer = b""
    lines = []
    while len(lines) < count:
        chunk = sock.recv(65536)
        if not chunk:
            raise SystemExit(f"daemon closed after {len(lines)}/"
                             f"{count} responses")
        buffer += chunk
        while b"\n" in buffer and len(lines) < count:
            line, _, buffer = buffer.partition(b"\n")
            lines.append(line.decode())
    return lines


def journal_state(path):
    """(jobs-by-seq, done{id: result}, pending-ids) from a journal."""
    jobs, done, pending = {}, {}, []
    try:
        raw = open(path, "rb").read().decode(errors="replace")
    except FileNotFoundError:
        return jobs, done, pending
    for line in raw.split("\n"):
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn/garbled crash debris: replay skips it too
        seq = rec.get("seq")
        kind = rec.get("type")
        if kind == "accepted":
            jobs[seq] = {"id": rec.get("id", ""), "terminal": False}
        elif kind in ("done", "shed") and seq in jobs:
            jobs[seq]["terminal"] = True
            if kind == "done":
                done[jobs[seq]["id"]] = rec.get("result", "")
    pending = [j["id"] for j in jobs.values() if not j["terminal"]]
    return jobs, done, pending


def cmd_send(args):
    sock = connect(args.addr, args.retry)
    requests = [l for l in open(args.requests).read().split("\n") if l]
    for line in requests:
        sock.sendall(line.encode() + b"\n")
    if args.read:
        for line in read_lines(sock, args.read):
            print(line)
    sock.close()
    return 0


def cmd_probe(args):
    sock = connect(args.addr, args.retry)
    sock.sendall(f"GET {args.path} HTTP/1.0\r\n".encode())
    sock.settimeout(30.0)
    response = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        response += chunk
    head, _, body = response.partition(b"\r\n\r\n")
    sys.stdout.write(body.decode())
    return 0 if b" 200 " in head.split(b"\r\n")[0] + b" " else 1


def cmd_wait_idle(args):
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        jobs, _, pending = journal_state(args.journal)
        if len(jobs) >= args.jobs and not pending:
            return 0
        time.sleep(0.2)
    print(f"timeout: {len(pending)} pending of {len(jobs)} jobs",
          file=sys.stderr)
    return 1


def cmd_verify(args):
    _, done, pending = journal_state(args.journal)
    if pending:
        print(f"still pending: {pending}", file=sys.stderr)
        return 1
    reference = {}
    for line in open(args.reference).read().split("\n"):
        if line:
            reference[json.loads(line)["id"]] = line
    if set(done) != set(reference):
        print(f"id mismatch: journal {sorted(done)} vs reference "
              f"{sorted(reference)}", file=sys.stderr)
        return 1
    for job_id, result in sorted(done.items()):
        if result != reference[job_id]:
            print(f"{job_id}: replayed result differs from the "
                  f"uninterrupted run\n  replay: {result}\n  "
                  f"reference: {reference[job_id]}", file=sys.stderr)
            return 1
    print(f"verified {len(done)} jobs byte-identical")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("send")
    p.add_argument("addr")
    p.add_argument("requests")
    p.add_argument("--read", type=int, default=0)
    p.add_argument("--retry", type=float, default=10.0)
    p.set_defaults(run=cmd_send)

    p = sub.add_parser("probe")
    p.add_argument("addr")
    p.add_argument("path")
    p.add_argument("--retry", type=float, default=10.0)
    p.set_defaults(run=cmd_probe)

    p = sub.add_parser("wait-idle")
    p.add_argument("journal")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--timeout", type=float, default=300.0)
    p.set_defaults(run=cmd_wait_idle)

    p = sub.add_parser("verify")
    p.add_argument("journal")
    p.add_argument("reference")
    p.set_defaults(run=cmd_verify)

    args = parser.parse_args()
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
