/**
 * @file
 * Distributed solve cluster driver.
 *
 * Three modes share one binary:
 *
 *  - Local fork mode (default): `--workers N` forks N worker processes
 *    connected over socketpairs, shards the batch across them, and
 *    merges the streamed results.  The merged result file is
 *    byte-identical to a single-process `rasengan_serve` run over the
 *    same requests and batch seed -- at any worker count, any
 *    completion order, and across worker crashes (orphaned jobs are
 *    re-placed onto survivors and reproduce the same bytes).
 *
 *  - Worker mode: `--worker --connect HOST:PORT` runs one remote
 *    worker against a listening coordinator.
 *
 *  - Listen mode: `--listen PORT --expect-workers N` accepts N remote
 *    workers, then coordinates exactly like fork mode.
 *
 * Usage:
 *   rasengan_clusterd (--requests FILE | --workload N [--workload-seed S])
 *                     [--workers N | --listen PORT --expect-workers N]
 *   rasengan_clusterd --worker --connect HOST:PORT
 *
 * Options (coordinator modes):
 *   --out FILE, --telemetry FILE, --threads N, --batch-seed S,
 *   --cache-mb M, --max-queue N, --max-qubits N, --max-shots N,
 *   --max-cost UNITS        (same meanings as rasengan_serve)
 *   --max-placements N      placement attempts per job across worker
 *                           deaths (default 3)
 *   --fault SPEC            fault plan forwarded to one worker:
 *                           kill-after:N | disconnect-after:N
 *   --fault-worker W        which worker gets --fault (default 0)
 *   --tune MODE             adaptive execution: off|observe|auto
 *                           (default: RASENGAN_TUNE env, then off).
 *                           The coordinator decides per-job knob hints
 *                           at the serial submit point and ships them
 *                           with each placement; workers report
 *                           measurements back in batch_done and the
 *                           coordinator journals them for future runs.
 *                           Only result-invariant per-job knobs are
 *                           tuned, so merged results stay
 *                           byte-identical in every mode
 *   --tune-model FILE       cost-model journal (default:
 *                           RASENGAN_TUNE_MODEL env, then
 *                           rasengan_tune_model.jsonl)
 *   --simd ISA, --trace FILE, --metrics FILE, --flight SPEC
 *
 * Distributed tracing: with --trace the coordinator propagates a
 * per-job 128-bit trace id inside every forwarded request, workers
 * ship their span forests back in batch_done, and FILE receives ONE
 * merged Chrome trace (coordinator + every worker under per-worker
 * pids, clock-aligned).  --trace-signature FILE additionally writes
 * the canonical merged span-tree signature, which is byte-identical
 * across worker counts and thread counts for a deterministic batch.
 *
 * Environment:
 *   RASENGAN_CLUSTER_WORKERS    default for --workers
 *   RASENGAN_CLUSTER_FAULT      default for --fault
 *   RASENGAN_CLUSTER_MAX_FRAME  wire frame size cap in bytes
 *   RASENGAN_FLIGHT             default for --flight
 *
 * Exit status: 0 all jobs ok, 1 usage/I-O/cluster failure, 2 some
 * admitted job failed (rejections alone are reported outcomes).
 */

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/protocol.h"
#include "cluster/worker.h"
#include "exec/faults.h"
#include "obs_cli.h"
#include "serve/job.h"
#include "serve/jsonl.h"
#include "serve/workload.h"
#include "tune_cli.h"

using namespace rasengan;

namespace {

struct Args
{
    // Transport selection
    long workers = -1; ///< fork mode worker count
    bool workerMode = false;
    std::string connect; ///< HOST:PORT (worker mode)
    long listenPort = -1;
    long expectWorkers = -1;

    // Batch (mirrors rasengan_serve)
    std::string requests;
    long workload = -1;
    uint64_t workloadSeed = 1;
    std::string out;
    std::string telemetry;
    int threads = 0;
    uint64_t batchSeed = 0;
    long cacheMb = 64;
    long maxQueue = -1;
    long maxQubits = -1;
    long maxShots = -1;
    double maxCost = -1.0;
    long maxPlacements = 3;
    std::string fault;
    long faultWorker = 0;
    std::string simd;
    std::string tune;
    std::string tuneModel;
    tools::ObsCliOptions obs;
    std::string traceSignature; ///< merged signature output path
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: rasengan_clusterd (--requests FILE | --workload N "
        "[--workload-seed S])\n"
        "  [--workers N | --listen PORT --expect-workers N]\n"
        "  [--out FILE] [--telemetry FILE] [--threads N] "
        "[--batch-seed S]\n"
        "  [--cache-mb M] [--max-queue N] [--max-qubits N] "
        "[--max-shots N] [--max-cost UNITS]\n"
        "  [--max-placements N] [--fault SPEC] [--fault-worker W]\n"
        "  [--tune off|observe|auto] [--tune-model FILE]\n"
        "  [--simd auto|avx2|neon|scalar] [--trace FILE] "
        "[--trace-signature FILE]\n"
        "  [--metrics FILE] [--flight on|off|N|PATH]\n"
        "   or: rasengan_clusterd --worker --connect HOST:PORT\n");
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    if (const char *env = std::getenv("RASENGAN_CLUSTER_WORKERS"))
        args.workers = std::strtol(env, nullptr, 10);
    if (const char *env = std::getenv("RASENGAN_CLUSTER_FAULT"))
        args.fault = env;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (flag == "--workers" && (v = next()))
            args.workers = std::strtol(v, nullptr, 10);
        else if (flag == "--worker")
            args.workerMode = true;
        else if (flag == "--connect" && (v = next()))
            args.connect = v;
        else if (flag == "--listen" && (v = next()))
            args.listenPort = std::strtol(v, nullptr, 10);
        else if (flag == "--expect-workers" && (v = next()))
            args.expectWorkers = std::strtol(v, nullptr, 10);
        else if (flag == "--requests" && (v = next()))
            args.requests = v;
        else if (flag == "--workload" && (v = next()))
            args.workload = std::strtol(v, nullptr, 10);
        else if (flag == "--workload-seed" && (v = next()))
            args.workloadSeed = std::strtoull(v, nullptr, 10);
        else if (flag == "--out" && (v = next()))
            args.out = v;
        else if (flag == "--telemetry" && (v = next()))
            args.telemetry = v;
        else if (flag == "--threads" && (v = next()))
            args.threads = static_cast<int>(std::strtol(v, nullptr, 10));
        else if (flag == "--batch-seed" && (v = next()))
            args.batchSeed = std::strtoull(v, nullptr, 10);
        else if (flag == "--cache-mb" && (v = next()))
            args.cacheMb = std::strtol(v, nullptr, 10);
        else if (flag == "--max-queue" && (v = next()))
            args.maxQueue = std::strtol(v, nullptr, 10);
        else if (flag == "--max-qubits" && (v = next()))
            args.maxQubits = std::strtol(v, nullptr, 10);
        else if (flag == "--max-shots" && (v = next()))
            args.maxShots = std::strtol(v, nullptr, 10);
        else if (flag == "--max-cost" && (v = next()))
            args.maxCost = std::strtod(v, nullptr);
        else if (flag == "--max-placements" && (v = next()))
            args.maxPlacements = std::strtol(v, nullptr, 10);
        else if (flag == "--fault" && (v = next()))
            args.fault = v;
        else if (flag == "--fault-worker" && (v = next()))
            args.faultWorker = std::strtol(v, nullptr, 10);
        else if (flag == "--tune" && (v = next()))
            args.tune = v;
        else if (flag == "--tune-model" && (v = next()))
            args.tuneModel = v;
        else if (flag == "--simd" && (v = next()))
            args.simd = v;
        else if (flag == "--trace" && (v = next()))
            args.obs.tracePath = v;
        else if (flag == "--trace-signature" && (v = next()))
            args.traceSignature = v;
        else if (flag == "--metrics" && (v = next()))
            args.obs.metricsPath = v;
        else if (flag == "--flight" && (v = next()))
            args.obs.flightSpec = v;
        else {
            std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                         flag.c_str());
            return false;
        }
    }

    if (args.workerMode) {
        if (args.connect.empty()) {
            std::fprintf(stderr, "--worker requires --connect\n");
            return false;
        }
        return true;
    }
    bool haveRequests = !args.requests.empty();
    bool haveWorkload = args.workload >= 0;
    if (haveRequests == haveWorkload) {
        std::fprintf(stderr, "exactly one of --requests and --workload "
                             "is required\n");
        return false;
    }
    bool forkMode = args.workers > 0;
    bool listenMode = args.listenPort >= 0;
    if (forkMode == listenMode) {
        std::fprintf(stderr, "exactly one of --workers and --listen is "
                             "required\n");
        return false;
    }
    if (listenMode && args.expectWorkers <= 0) {
        std::fprintf(stderr, "--listen requires --expect-workers N\n");
        return false;
    }
    if (args.maxPlacements < 1) {
        std::fprintf(stderr, "--max-placements must be >= 1\n");
        return false;
    }
    exec::ProcessFaultParseResult fault =
        exec::parseProcessFaultPlan(args.fault);
    if (!fault.ok) {
        std::fprintf(stderr, "--fault: %s\n", fault.error.c_str());
        return false;
    }
    return true;
}

/** Parse HOST:PORT and connect a TCP stream; -1 on failure. */
int
connectTo(const std::string &target)
{
    size_t colon = target.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= target.size()) {
        std::fprintf(stderr, "--connect expects HOST:PORT\n");
        return -1;
    }
    std::string host = target.substr(0, colon);
    std::string port = target.substr(colon + 1);
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
        res == nullptr) {
        std::fprintf(stderr, "cannot resolve %s\n", target.c_str());
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        std::fprintf(stderr, "cannot connect to %s\n", target.c_str());
    return fd;
}

/** Accept @p count worker connections on 127.0.0.1:@p port. */
bool
acceptWorkers(long port, long count, std::vector<int> &fds)
{
    int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        std::fprintf(stderr, "cannot create listen socket\n");
        return false;
    }
    int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listener, static_cast<int>(count)) != 0) {
        std::fprintf(stderr, "cannot listen on port %ld\n", port);
        ::close(listener);
        return false;
    }
    std::fprintf(stderr, "cluster: waiting for %ld workers on port %ld\n",
                 count, port);
    for (long i = 0; i < count; ++i) {
        int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            std::fprintf(stderr, "accept failed\n");
            ::close(listener);
            return false;
        }
        fds.push_back(fd);
    }
    ::close(listener);
    return true;
}

/**
 * Fork @p count workers connected over socketpairs.  Forking happens
 * before the coordinator touches the simulation pool, so children never
 * inherit live pool threads.  Each child closes the coordinator ends it
 * inherited (a stray duplicate would defeat EOF-based death detection).
 */
bool
forkWorkers(long count, std::vector<int> &coordinatorFds,
            std::vector<pid_t> &children)
{
    for (long i = 0; i < count; ++i) {
        int pair[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
            std::fprintf(stderr, "socketpair failed\n");
            return false;
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "fork failed\n");
            ::close(pair[0]);
            ::close(pair[1]);
            return false;
        }
        if (pid == 0) {
            ::close(pair[0]);
            for (int fd : coordinatorFds)
                ::close(fd);
            cluster::WorkerOutcome outcome = cluster::runWorker(pair[1]);
            if (!outcome.ok)
                std::fprintf(stderr, "worker %ld: %s\n", i,
                             outcome.error.c_str());
            std::fflush(nullptr);
            ::_exit(outcome.ok ? 0 : 1);
        }
        ::close(pair[1]);
        coordinatorFds.push_back(pair[0]);
        children.push_back(pid);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        usage();
        return 1;
    }
    if (!args.traceSignature.empty() && args.obs.tracePath.empty()) {
        std::fprintf(stderr,
                     "--trace-signature requires --trace (the signature "
                     "is computed over the merged trace)\n");
        return 1;
    }

    if (args.workerMode) {
        if (!tools::applySimdFlag(args.simd))
            return 1;
        int fd = connectTo(args.connect);
        if (fd < 0)
            return 1;
        cluster::WorkerOutcome outcome = cluster::runWorker(fd);
        if (!outcome.ok) {
            std::fprintf(stderr, "worker: %s\n", outcome.error.c_str());
            return 1;
        }
        std::fprintf(stderr, "worker: %zu jobs run\n", outcome.jobsRun);
        return 0;
    }

    // Workers first: fork mode must spawn before any pool/simd setup so
    // children start from a clean, thread-free process image.
    std::vector<int> workerFds;
    std::vector<pid_t> children;
    if (args.workers > 0) {
        if (!forkWorkers(args.workers, workerFds, children))
            return 1;
    } else if (!acceptWorkers(args.listenPort, args.expectWorkers,
                              workerFds)) {
        return 1;
    }

    // Assemble the request list (same defaulting as rasengan_serve, so
    // the merged output is comparable line for line).
    std::vector<serve::JobRequest> requests;
    if (!args.requests.empty()) {
        std::ifstream in(args.requests);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         args.requests.c_str());
            return 1;
        }
        serve::LineReader reader(in);
        serve::LineReader::Line line;
        while (reader.next(line)) {
            if (!line.ok) {
                const char *why =
                    line.hasNul ? "request line contains a NUL byte"
                    : line.oversized
                        ? "request line exceeds the length cap"
                        : "truncated final line (no newline)";
                std::fprintf(stderr, "%s:%zu: %s\n",
                             args.requests.c_str(), line.number, why);
                return 1;
            }
            serve::RequestParseResult parsed =
                serve::parseRequest(line.text);
            if (!parsed.ok) {
                std::fprintf(stderr, "%s:%zu: %s\n",
                             args.requests.c_str(), line.number,
                             parsed.error.c_str());
                return 1;
            }
            if (parsed.request.id.empty())
                parsed.request.id = "line-" + std::to_string(line.number);
            requests.push_back(std::move(parsed.request));
        }
    } else {
        requests = serve::generateWorkload(
            static_cast<size_t>(args.workload), args.workloadSeed);
    }

    cluster::CoordinatorOptions options;
    options.batchSeed = args.batchSeed;
    options.threads = args.threads;
    options.cacheBudgetBytes = static_cast<uint64_t>(args.cacheMb) << 20;
    if (args.maxQueue >= 0)
        options.limits.maxQueuedJobs = static_cast<size_t>(args.maxQueue);
    if (args.maxQubits >= 0)
        options.limits.maxQubits = static_cast<int>(args.maxQubits);
    if (args.maxShots >= 0)
        options.limits.maxShotsPerJob =
            static_cast<uint64_t>(args.maxShots);
    if (args.maxCost >= 0.0)
        options.limits.maxJobCostUnits = args.maxCost;
    options.maxFrameBytes = cluster::maxFrameBytesFromEnv();
    options.faultSpec = args.fault;
    options.faultWorker = static_cast<int>(args.faultWorker);
    options.retry.maxAttempts = static_cast<int>(args.maxPlacements);

    if (!tools::applySimdFlag(args.simd))
        return 1;
    if (!tools::resolveTunerOptions(args.tune, args.tuneModel,
                                    options.tune))
        return 1;
    tools::fillHostKnobs(options.tune);
    // The coordinator forces processKnobs off itself; host knobs above
    // only label the default arms in measurement records honestly.
    tools::obsCliStart(args.obs);

    cluster::Coordinator coordinator(options, std::move(workerFds));
    for (const auto &req : requests)
        coordinator.submit(req);
    std::string error;
    bool ok = coordinator.runAll(&error);
    if (!ok)
        std::fprintf(stderr, "cluster: %s\n", error.c_str());

    // Merged result stream, submission order.
    std::FILE *out = stdout;
    if (!args.out.empty()) {
        out = std::fopen(args.out.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         args.out.c_str());
            return 1;
        }
    }
    for (const auto &line : coordinator.resultLines())
        std::fprintf(out, "%s\n", line.c_str());
    if (out != stdout)
        std::fclose(out);

    if (!args.telemetry.empty()) {
        std::FILE *tel = std::fopen(args.telemetry.c_str(), "w");
        if (!tel) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         args.telemetry.c_str());
            return 1;
        }
        for (const auto &line : coordinator.telemetryLines())
            std::fprintf(tel, "%s\n", line.c_str());
        std::fclose(tel);
    }

    // Outcome accounting from the merged lines themselves.
    size_t accepted = 0, rejected = 0, failed = 0;
    for (const auto &line : coordinator.resultLines()) {
        serve::JsonParseResult parsed = serve::parseFlatJson(line);
        if (!parsed.ok) {
            ++failed;
            continue;
        }
        auto boolOf = [&](const char *key) {
            auto it = parsed.object.find(key);
            return it != parsed.object.end() &&
                   it->second.kind == serve::JsonValue::Kind::Bool &&
                   it->second.flag;
        };
        if (!boolOf("accepted"))
            ++rejected;
        else if (!boolOf("ok"))
            ++failed;
        else
            ++accepted;
    }

    const cluster::CoordinatorStats &stats = coordinator.stats();
    std::fprintf(stderr,
                 "cluster: %zu jobs (%zu ok, %zu failed, %zu rejected) "
                 "on %zu workers (%zu died, %zu jobs re-placed, %zu "
                 "abandoned)\n",
                 coordinator.resultLines().size(), accepted, failed,
                 rejected, stats.workers, stats.workersDead,
                 stats.jobsReplaced, stats.jobsSynthesized);
    std::fprintf(stderr,
                 "cluster cache: %llu hits, %llu misses, %llu evictions "
                 "across surviving workers\n",
                 static_cast<unsigned long long>(stats.cacheHits),
                 static_cast<unsigned long long>(stats.cacheMisses),
                 static_cast<unsigned long long>(stats.cacheEvictions));
    if (coordinator.tuner().mode() != tune::TuneMode::Off) {
        tune::Tuner::Stats ts = coordinator.tuner().stats();
        std::fprintf(
            stderr,
            "cluster tune: mode %s, %llu decisions (%llu explore, "
            "%llu model), %llu worker measurements absorbed "
            "(%llu dropped)\n",
            tune::tuneModeName(coordinator.tuner().mode()),
            static_cast<unsigned long long>(ts.decisions),
            static_cast<unsigned long long>(ts.explored),
            static_cast<unsigned long long>(ts.exploited),
            static_cast<unsigned long long>(ts.absorbed),
            static_cast<unsigned long long>(ts.absorbDropped));
    }

    // Reap fork-mode children (a faulted worker died by SIGKILL; that
    // is the experiment, not an error).
    for (pid_t pid : children) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }

    // The cluster trace is stitched from every worker's shipped spans,
    // so the merged writer replaces the plain per-process export that
    // obsCliFinish() would produce.
    if (!args.obs.tracePath.empty()) {
        obs::stopTracing();
        std::string traceError;
        if (!coordinator.writeMergedTrace(args.obs.tracePath,
                                          &traceError)) {
            std::fprintf(stderr, "cluster trace: %s\n",
                         traceError.c_str());
            return 1;
        }
        size_t foreign = 0;
        for (const auto &f : coordinator.foreignSpans())
            foreign += f.events.size();
        std::fprintf(stderr,
                     "cluster trace: %zu coordinator events + %zu "
                     "worker events -> %s\n",
                     obs::traceEventCount(), foreign,
                     args.obs.tracePath.c_str());
        if (uint64_t dropped = coordinator.shippedSpansDropped())
            std::fprintf(
                stderr,
                "cluster trace: %llu worker spans dropped (frame cap)\n",
                static_cast<unsigned long long>(dropped));
        args.obs.tracePath.clear(); // merged trace already written
    }
    if (!args.traceSignature.empty()) {
        const std::string sig = coordinator.mergedSignature() + "\n";
        if (!obs::writeTextFile(args.traceSignature, sig)) {
            std::fprintf(stderr, "cannot write trace signature to '%s'\n",
                         args.traceSignature.c_str());
            return 1;
        }
    }

    if (!tools::obsCliFinish(args.obs))
        return 1;
    if (!ok)
        return 1;
    return failed > 0 ? 2 : 0;
}
