/**
 * @file
 * Batch solve service driver.
 *
 * Reads solve requests (one flat JSON object per line) from a file or
 * generates a synthetic workload, runs them through the
 * serve::BatchScheduler, and writes one deterministic result line per
 * job -- in submission order -- plus an optional telemetry stream.
 *
 * The result file contains no timing fields: two runs over the same
 * requests with the same --batch-seed are byte-identical at any
 * --threads setting (CI diffs them), while --telemetry captures queue
 * wait, wall time, cache hits, and retries per job.
 *
 * Usage:
 *   rasengan_serve --requests FILE [options]
 *   rasengan_serve --workload N [--workload-seed S] [options]
 *
 * Options:
 *   --out FILE           result JSONL (default: stdout)
 *   --telemetry FILE     per-job telemetry JSONL (default: off)
 *   --threads N          worker threads (0 = current/env config)
 *   --batch-seed S       mixed into every job's child seed (default 0)
 *   --cache-mb M         artifact cache budget in MiB (default 64; 0
 *                        disables caching)
 *   --max-queue N        admission: max queued jobs
 *   --max-qubits N       admission: max problem variables
 *   --max-shots N        admission: max shots per job
 *   --max-cost UNITS     admission: per-job cost ceiling
 *   --dump-workload      print the generated workload requests and exit
 *   --simd ISA           amplitude kernel ISA: auto|avx2|neon|scalar
 *                        (default: RASENGAN_SIMD env, then auto)
 *   --tune MODE          adaptive execution: off|observe|auto (default:
 *                        RASENGAN_TUNE env, then off).  Per-job
 *                        result-invariant knobs only -- batch jobs run
 *                        concurrently, so process-wide knobs (threads,
 *                        fusion, ISA) stay at their fixed defaults and
 *                        results are byte-identical in every mode
 *   --tune-model FILE    cost-model journal (default: RASENGAN_TUNE_MODEL
 *                        env, then rasengan_tune_model.jsonl)
 *   --trace FILE         write a Chrome trace-event JSON of the batch
 *   --metrics FILE       write the metrics registry; Prometheus text,
 *                        or flat JSON when FILE ends in .json
 *
 * Exit status: 0 when every admitted job succeeded, 1 on usage or I/O
 * errors, 2 when some admitted job failed (rejections alone do not
 * fail the batch: they are reported outcomes, not errors), 3 when
 * SIGTERM/SIGINT interrupted the batch -- jobs already running finish,
 * results/telemetry/metrics are still written, and jobs that never
 * started are reported as accepted-but-interrupted failures.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs_cli.h"
#include "serve/job.h"
#include "serve/jsonl.h"
#include "serve/scheduler.h"
#include "serve/workload.h"
#include "tune_cli.h"

using namespace rasengan;

namespace {

/** SIGTERM/SIGINT trip this; the scheduler polls it between jobs. */
std::atomic<bool> g_stop{false};

extern "C" void
onStopSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

struct Args
{
    std::string requests;
    long workload = -1;
    uint64_t workloadSeed = 1;
    std::string out;
    std::string telemetry;
    int threads = 0;
    uint64_t batchSeed = 0;
    long cacheMb = 64;
    long maxQueue = -1;
    long maxQubits = -1;
    long maxShots = -1;
    double maxCost = -1.0;
    bool dumpWorkload = false;
    std::string simd;
    std::string tune;
    std::string tuneModel;
    tools::ObsCliOptions obs;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: rasengan_serve (--requests FILE | --workload N "
                 "[--workload-seed S])\n"
                 "  [--out FILE] [--telemetry FILE] [--threads N] "
                 "[--batch-seed S]\n"
                 "  [--cache-mb M] [--max-queue N] [--max-qubits N] "
                 "[--max-shots N]\n"
                 "  [--max-cost UNITS] [--dump-workload]\n"
                 "  [--simd auto|avx2|neon|scalar]\n"
                 "  [--tune off|observe|auto] [--tune-model FILE]\n"
                 "  [--trace FILE] [--metrics FILE] "
                 "[--flight on|off|N|PATH]\n");
}

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (flag == "--requests" && (v = next()))
            args.requests = v;
        else if (flag == "--workload" && (v = next()))
            args.workload = std::strtol(v, nullptr, 10);
        else if (flag == "--workload-seed" && (v = next()))
            args.workloadSeed = std::strtoull(v, nullptr, 10);
        else if (flag == "--out" && (v = next()))
            args.out = v;
        else if (flag == "--telemetry" && (v = next()))
            args.telemetry = v;
        else if (flag == "--threads" && (v = next()))
            args.threads = static_cast<int>(std::strtol(v, nullptr, 10));
        else if (flag == "--batch-seed" && (v = next()))
            args.batchSeed = std::strtoull(v, nullptr, 10);
        else if (flag == "--cache-mb" && (v = next()))
            args.cacheMb = std::strtol(v, nullptr, 10);
        else if (flag == "--max-queue" && (v = next()))
            args.maxQueue = std::strtol(v, nullptr, 10);
        else if (flag == "--max-qubits" && (v = next()))
            args.maxQubits = std::strtol(v, nullptr, 10);
        else if (flag == "--max-shots" && (v = next()))
            args.maxShots = std::strtol(v, nullptr, 10);
        else if (flag == "--max-cost" && (v = next()))
            args.maxCost = std::strtod(v, nullptr);
        else if (flag == "--simd" && (v = next()))
            args.simd = v;
        else if (flag == "--tune" && (v = next()))
            args.tune = v;
        else if (flag == "--tune-model" && (v = next()))
            args.tuneModel = v;
        else if (flag == "--trace" && (v = next()))
            args.obs.tracePath = v;
        else if (flag == "--metrics" && (v = next()))
            args.obs.metricsPath = v;
        else if (flag == "--flight" && (v = next()))
            args.obs.flightSpec = v;
        else if (flag == "--dump-workload")
            args.dumpWorkload = true;
        else {
            std::fprintf(stderr, "unknown or incomplete flag: %s\n",
                         flag.c_str());
            return false;
        }
    }
    bool haveRequests = !args.requests.empty();
    bool haveWorkload = args.workload >= 0;
    if (haveRequests == haveWorkload) {
        std::fprintf(stderr, "exactly one of --requests and --workload "
                             "is required\n");
        return false;
    }
    if (args.cacheMb < 0) {
        std::fprintf(stderr, "--cache-mb must be >= 0\n");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        usage();
        return 1;
    }

    // Assemble the request list.
    std::vector<serve::JobRequest> requests;
    if (!args.requests.empty()) {
        std::ifstream in(args.requests);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         args.requests.c_str());
            return 1;
        }
        serve::LineReader reader(in);
        serve::LineReader::Line line;
        while (reader.next(line)) {
            // Request files are operator input: a defective line is an
            // error, not something to skip silently.
            if (!line.ok) {
                const char *why =
                    line.hasNul ? "request line contains a NUL byte"
                    : line.oversized
                        ? "request line exceeds the length cap"
                        : "truncated final line (no newline)";
                std::fprintf(stderr, "%s:%zu: %s\n",
                             args.requests.c_str(), line.number, why);
                return 1;
            }
            serve::RequestParseResult parsed =
                serve::parseRequest(line.text);
            if (!parsed.ok) {
                std::fprintf(stderr, "%s:%zu: %s\n",
                             args.requests.c_str(), line.number,
                             parsed.error.c_str());
                return 1;
            }
            if (parsed.request.id.empty())
                parsed.request.id = "line-" + std::to_string(line.number);
            requests.push_back(std::move(parsed.request));
        }
    } else {
        requests = serve::generateWorkload(
            static_cast<size_t>(args.workload), args.workloadSeed);
    }

    if (args.dumpWorkload) {
        for (const auto &req : requests)
            std::printf("%s\n", serve::writeRequest(req).c_str());
        return 0;
    }

    serve::ServeOptions options;
    options.threads = args.threads;
    options.batchSeed = args.batchSeed;
    options.cacheBudgetBytes =
        static_cast<uint64_t>(args.cacheMb) << 20;
    if (args.maxQueue >= 0)
        options.limits.maxQueuedJobs = static_cast<size_t>(args.maxQueue);
    if (args.maxQubits >= 0)
        options.limits.maxQubits = static_cast<int>(args.maxQubits);
    if (args.maxShots >= 0)
        options.limits.maxShotsPerJob =
            static_cast<uint64_t>(args.maxShots);
    if (args.maxCost >= 0.0)
        options.limits.maxJobCostUnits = args.maxCost;

    // Graceful interruption: finish running jobs, skip unstarted ones,
    // and still write every output stream before exiting with code 3.
    options.stopFlag = &g_stop;
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);

    if (!tools::applySimdFlag(args.simd))
        return 1;
    tools::obsCliStart(args.obs);

    // Adaptive execution: the batch scheduler runs jobs CONCURRENTLY,
    // so only per-job result-invariant knobs are tuned (processKnobs
    // off collapses threads/fusion/ISA to their default arms).
    // Decisions happen in the serial onJobPrepared hook, in submission
    // order, so the decision sequence is reproducible; measurements are
    // recorded from completion callbacks for FUTURE runs.
    tune::TunerOptions tuneOpts;
    if (!tools::resolveTunerOptions(args.tune, args.tuneModel, tuneOpts))
        return 1;
    tools::fillHostKnobs(tuneOpts);
    tuneOpts.processKnobs = false;
    tune::Tuner tuner(tuneOpts);
    tuner.load();
    if (tuner.mode() != tune::TuneMode::Off) {
        options.onJobPrepared = [&tuner](serve::PreparedJob &job) {
            tune::TuneDecision d =
                tuner.decide(tune::fingerprintForJob(job));
            job.tuning.denseLookup = d.denseLookup();
            job.tuning.cachePlans = d.cachePlans();
            job.tuning.bucket = d.bucket;
            job.tuning.decision = tune::renderArms(d.arms);
            job.tuning.source = d.source;
        };
        options.onJobComplete = [&tuner](size_t,
                                         const serve::JobResult &result) {
            tune::Measurement m;
            if (tune::measurementForResult(result, &m))
                tuner.record(m);
        };
    }

    serve::BatchScheduler scheduler(options);
    for (const auto &req : requests)
        scheduler.submit(req);
    scheduler.runAll();

    // Result stream (deterministic, submission order).
    std::FILE *out = stdout;
    if (!args.out.empty()) {
        out = std::fopen(args.out.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         args.out.c_str());
            return 1;
        }
    }
    for (const auto &result : scheduler.results())
        std::fprintf(out, "%s\n", serve::writeResult(result).c_str());
    if (out != stdout)
        std::fclose(out);

    if (!args.telemetry.empty()) {
        std::FILE *tel = std::fopen(args.telemetry.c_str(), "w");
        if (!tel) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         args.telemetry.c_str());
            return 1;
        }
        for (const auto &result : scheduler.results())
            std::fprintf(tel, "%s\n",
                         serve::writeTelemetry(result).c_str());
        std::fclose(tel);
    }

    // Batch summary (stderr: keep stdout byte-comparable).
    size_t accepted = 0, rejected = 0, failed = 0;
    for (const auto &result : scheduler.results()) {
        if (!result.accepted)
            ++rejected;
        else if (!result.ok)
            ++failed;
        else
            ++accepted;
    }
    serve::ArtifactCache::Stats cache = scheduler.cache().stats();
    const size_t interrupted = scheduler.interruptedJobs();
    std::fprintf(stderr,
                 "batch: %zu jobs (%zu ok, %zu failed, %zu rejected, "
                 "%zu interrupted)\n",
                 scheduler.results().size(), accepted, failed, rejected,
                 interrupted);
    std::fprintf(stderr,
                 "cache: %llu hits, %llu misses (%.1f%% hit rate), "
                 "%llu evictions, %llu bytes in %zu entries\n",
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.misses),
                 100.0 * cache.hitRate(),
                 static_cast<unsigned long long>(cache.evictions),
                 static_cast<unsigned long long>(cache.bytesInUse),
                 cache.entries);
    std::fprintf(stderr, "admission: %.3g cost units committed\n",
                 scheduler.admission().batchCostUnits());
    if (tuner.mode() != tune::TuneMode::Off) {
        tune::Tuner::Stats ts = tuner.stats();
        std::fprintf(stderr,
                     "tune: mode %s, %llu decisions (%llu explore, "
                     "%llu model), %llu measurements -> %s\n",
                     tune::tuneModeName(tuner.mode()),
                     static_cast<unsigned long long>(ts.decisions),
                     static_cast<unsigned long long>(ts.explored),
                     static_cast<unsigned long long>(ts.exploited),
                     static_cast<unsigned long long>(ts.recorded),
                     tuner.options().modelPath.c_str());
    }

    if (!tools::obsCliFinish(args.obs))
        return 1;
    if (g_stop.load(std::memory_order_relaxed))
        return 3;
    return failed > 0 ? 2 : 0;
}
