/**
 * @file
 * Shared --trace/--metrics/--simd/--flight plumbing for the CLI tools.
 *
 * Usage: call obsCliStart() once flags are parsed (enables tracing when
 * a trace path was given, configures the flight recorder from --flight
 * or RASENGAN_FLIGHT and installs its dump signal handlers) and
 * obsCliFinish() before exit (writes the Chrome trace JSON and the
 * metrics exposition).  A metrics path ending in ".json" selects the
 * flat JSON export; anything else gets Prometheus text.
 *
 * obsCliStart() also pins the SIMD kernel tier: it resolves the active
 * ISA (registering the simd_isa_info gauge before any export can run)
 * and, when tracing, records the ISA as an instant event so every
 * trace artifact carries the kernel configuration it was produced
 * under.  applySimdFlag() is the shared --simd ISA handler.
 */

#ifndef RASENGAN_TOOLS_OBS_CLI_H
#define RASENGAN_TOOLS_OBS_CLI_H

#include <cstdio>
#include <string>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qsim/simd.h"

namespace rasengan::tools {

struct ObsCliOptions
{
    std::string tracePath;
    std::string metricsPath;
    /** --flight value: on|off|N (ring entries)|/dump/path; "" falls
     *  back to RASENGAN_FLIGHT, then to flightDefaultOn. */
    std::string flightSpec;
    /** Daemon-shaped tools keep the recorder on by default. */
    bool flightDefaultOn = false;
};

/**
 * Apply a --simd spec ("auto"|"avx2"|"neon"|"scalar"); empty means
 * leave the RASENGAN_SIMD / auto default in place.  Returns false
 * after printing a diagnostic when the spec is unknown or the ISA is
 * unavailable on this build/CPU.
 */
inline bool
applySimdFlag(const std::string &spec)
{
    if (spec.empty())
        return true;
    std::string error;
    if (!qsim::selectSimdIsa(spec, &error)) {
        std::fprintf(stderr, "--simd: %s\n", error.c_str());
        return false;
    }
    return true;
}

inline void
obsCliStart(const ObsCliOptions &opts)
{
    // Resolving the active ISA here registers the simd_isa_info gauge
    // before any metrics export can run.
    const char *isa = qsim::simdIsaName(qsim::simdActiveIsa());
    const bool flight =
        opts.flightSpec.empty()
            ? obs::flight::configureFromEnv(opts.flightDefaultOn)
            : obs::flight::configureFromSpec(opts.flightSpec,
                                             opts.flightDefaultOn);
    if (flight)
        obs::flight::installSignalHandlers();
    if (!opts.tracePath.empty()) {
        obs::clearTrace();
        obs::startTracing();
        obs::instantEvent("qsim", "simd_isa", isa);
    }
}

/** Returns false (after printing to stderr) if an export failed. */
inline bool
obsCliFinish(const ObsCliOptions &opts)
{
    bool ok = true;
    if (!opts.tracePath.empty()) {
        obs::stopTracing();
        if (!obs::writeChromeTrace(opts.tracePath)) {
            std::fprintf(stderr, "cannot write trace to '%s'\n",
                         opts.tracePath.c_str());
            ok = false;
        } else {
            std::fprintf(stderr, "trace: %zu events -> %s\n",
                         obs::traceEventCount(), opts.tracePath.c_str());
            if (uint64_t dropped = obs::traceDroppedCount())
                std::fprintf(stderr,
                             "trace: %llu events dropped (buffer full)\n",
                             static_cast<unsigned long long>(dropped));
        }
    }
    if (!opts.metricsPath.empty()) {
        const bool json =
            opts.metricsPath.size() >= 5 &&
            opts.metricsPath.compare(opts.metricsPath.size() - 5, 5,
                                     ".json") == 0;
        const std::string text = json ? obs::Registry::global().jsonText()
                                      : obs::Registry::global().promText();
        if (!obs::writeTextFile(opts.metricsPath, text)) {
            std::fprintf(stderr, "cannot write metrics to '%s'\n",
                         opts.metricsPath.c_str());
            ok = false;
        }
    }
    return ok;
}

} // namespace rasengan::tools

#endif // RASENGAN_TOOLS_OBS_CLI_H
