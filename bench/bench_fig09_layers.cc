/**
 * @file
 * Reproduces Figure 9: ARG of P-QAOA and Choco-Q as a function of layer
 * count on the F1 benchmark, against Rasengan's fixed-depth result.
 *
 * Paper shape: Choco-Q approaches Rasengan's ARG only around 14 layers
 * (at ~1419 circuit depth); P-QAOA barely improves with depth; Rasengan
 * sits at a small constant ARG with ~50-depth segments.
 */

#include <algorithm>

#include "algo_runners.h"
#include "bench_util.h"
#include "baselines/chocoq.h"
#include "baselines/pqaoa.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    banner("Figure 9: ARG vs number of QAOA layers (F1)");
    problems::Problem problem = problems::makeBenchmark("F1");
    const int iters = budget(200);

    AlgoMetrics rasengan = runRasengan(problem, iters);
    std::printf("Rasengan reference: ARG %.4f at segment depth %d "
                "(%d segments)\n\n",
                rasengan.arg, rasengan.depth, rasengan.params);

    Table table({"layers", "PQAOA-ARG", "PQAOA-dep", "ChocoQ-ARG",
                 "ChocoQ-dep"});
    table.printHeader();

    // Layerwise (warm-started) training, as in standard QAOA practice:
    // layer L starts from layer L-1's trained parameters, with the new
    // (gamma, beta) appended near zero.
    auto extend = [](const std::vector<double> &prev, int old_layers,
                     int new_layers) {
        if (prev.empty())
            return std::vector<double>{};
        std::vector<double> next(2 * new_layers, 0.05);
        for (int l = 0; l < old_layers; ++l) {
            next[l] = prev[l];
            next[new_layers + l] = prev[old_layers + l];
        }
        return next;
    };

    std::vector<double> pq_warm, cq_warm;
    int prev_layers = 0;
    double best_cq_arg = 1e18;
    for (int layers : {1, 2, 4, 6, 8, 10, 12, 14}) {
        baselines::PqaoaOptions po;
        po.layers = layers;
        po.maxIterations = iters;
        po.smartInit = true;
        po.initialParams = extend(pq_warm, prev_layers, layers);
        baselines::VqaResult pq = baselines::Pqaoa(problem, po).run();
        pq_warm = pq.training.x;

        baselines::ChocoqOptions co;
        co.layers = layers;
        co.maxIterations = iters;
        co.initialParams = extend(cq_warm, prev_layers, layers);
        baselines::VqaResult cq = baselines::Chocoq(problem, co).run();
        cq_warm = cq.training.x;
        prev_layers = layers;

        best_cq_arg =
            std::min(best_cq_arg, problem.arg(cq.expectedObjective));
        table.cell(layers);
        table.cell(problem.arg(pq.expectedObjective), "%.3f");
        table.cell(pq.circuitDepth);
        table.cell(best_cq_arg, "%.3f");
        table.cell(cq.circuitDepth);
        table.endRow();
    }

    std::printf("\nexpected shape (paper): Choco-Q ARG decays toward the "
                "Rasengan line as layers grow, at rapidly growing depth; "
                "P-QAOA stays poor at every layer count.\n");
    return 0;
}
