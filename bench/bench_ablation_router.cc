/**
 * @file
 * Design-choice ablation: SWAP routing strategy.  Compares the greedy
 * shortest-path walker against the SABRE-style lookahead router on
 * Rasengan segment circuits and on the deep Choco-Q mixer circuits,
 * targeting the heavy-hex topology of the IBM Eagle devices.  Reports
 * inserted SWAPs, routed CX count, routed depth, and the latency-model
 * execution time.
 */

#include "baselines/chocoq.h"
#include "bench_util.h"
#include "circuit/transpile.h"
#include "core/rasengan.h"
#include "device/latency.h"
#include "device/routing.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

void
compareOn(const std::string &label, const circuit::Circuit &lowered,
          const device::CouplingMap &map, const Table &table)
{
    device::LatencyModel latency(device::DeviceModel::ibmQuebec());
    struct Entry
    {
        const char *router;
        device::RoutingResult result;
    };
    std::vector<Entry> entries;
    entries.push_back({"greedy", device::route(lowered, map)});
    entries.push_back({"lookahead", device::routeLookahead(lowered, map)});
    for (const Entry &e : entries) {
        table.cell(label);
        table.cell(std::string(e.router));
        table.cell(e.result.swapsInserted);
        table.cell(e.result.routed.countCx());
        table.cell(e.result.routed.depth());
        table.cell(1e3 * latency.executionTimeSeconds(e.result.routed, 1),
                   "%.3f");
        table.endRow();
    }
}

} // namespace

int
main()
{
    banner("Router ablation: greedy walker vs SABRE-style lookahead");
    device::CouplingMap map = device::CouplingMap::heavyHex(7, 15);
    std::printf("target: heavy-hex %d qubits (IBM Eagle layout)\n\n",
                map.numQubits());

    Table table({"circuit", "router", "swaps", "cx", "depth", "ms/shot"});
    table.printHeader();

    for (const char *id : {"K3", "S4", "G3"}) {
        problems::Problem p = problems::makeBenchmark(id);
        core::RasenganSolver solver(p, {});
        std::vector<double> nominal(solver.numParams(), 0.5);
        circuit::Circuit segment = circuit::transpile(
            solver.segmentCircuit(0, p.trivialFeasible(), nominal));
        compareOn(std::string(id) + "-seg", segment, map, table);

        baselines::Chocoq chocoq(p, {});
        std::vector<double> params(chocoq.numParams(), 0.2);
        circuit::Circuit mixer = circuit::transpile(
            chocoq.buildCircuit(params));
        compareOn(std::string(id) + "-mix", mixer, map, table);
    }

    std::printf("\nexpected shape: the lookahead router inserts no more "
                "swaps than the greedy walker, with the gap widening on "
                "the deep mixer circuits.\n");
    return 0;
}
