/**
 * @file
 * Reproduces Figure 12: training-latency breakdown (classical vs
 * quantum) for each method on the small-scale benchmarks.  Quantum time
 * comes from the device timing model (depth x gate durations x shots x
 * iterations); classical time is the measured optimizer/purification
 * wall-clock share.
 *
 * Paper shape: HEA and P-QAOA are dominated by classical time (>70%,
 * penalty bookkeeping); Choco-Q is quantum-dominated by its deep mixer;
 * Rasengan cuts total time ~1.7x vs Choco-Q with slightly more classical
 * work (segment handling) but far less quantum time.
 */

#include "algo_runners.h"
#include "bench_util.h"
#include "common/stats.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    banner("Figure 12: latency breakdown (per training run)");
    const int iters = budget(100);

    Table table({"bench", "method", "classic-ms", "quantum-s", "total-s",
                 "quantum%"},
                12);
    table.printHeader();

    for (const char *id : {"F1", "K1", "J1"}) {
        problems::Problem p = problems::makeBenchmark(id);
        struct Row
        {
            const char *name;
            AlgoMetrics metrics;
        };
        std::vector<Row> rows = {
            {"HEA", runHea(p, iters)},
            {"P-QAOA", runPqaoa(p, iters)},
            {"Choco-Q", runChocoq(p, iters)},
            {"Rasengan", runRasengan(p, iters)},
        };
        for (const Row &row : rows) {
            double total =
                row.metrics.classicalSeconds + row.metrics.quantumSeconds;
            table.cell(id);
            table.cell(std::string(row.name));
            table.cell(1e3 * row.metrics.classicalSeconds, "%.2f");
            table.cell(row.metrics.quantumSeconds, "%.3f");
            table.cell(total, "%.3f");
            table.cell(100.0 * row.metrics.quantumSeconds /
                           std::max(total, 1e-12),
                       "%.1f%%");
            table.endRow();
        }
    }

    std::printf("\nnote: classical time is measured on this machine "
                "(optimizer + purification + scoring in C++); the paper's "
                "~70%% classical share for HEA/P-QAOA reflects its "
                "Python-level penalty scoring, so the absolute classical "
                "numbers differ while the quantum-side ordering is "
                "reproduced by the IBM Quebec timing model.\n");
    return 0;
}
