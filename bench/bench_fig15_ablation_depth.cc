/**
 * @file
 * Reproduces Figure 15: ablation of the three circuit optimizations on
 * deployable circuit depth --
 *   base : raw transition chain, one monolithic circuit
 *   +opt1: Hamiltonian simplification (Algorithm 1)
 *   +opt2: pruning + early stop
 *   +opt3: segmented execution
 *
 * Paper shape: opt1 helps where constraints are not already sparsest
 * (~10%), opt2 cuts >50%, opt3 is the largest cut (~82%), together
 * >94.6%.
 */

#include "bench_util.h"
#include "core/rasengan.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

int
depthWith(const problems::Problem &problem, bool simplify, bool prune,
          bool segmented)
{
    core::RasenganOptions options;
    options.simplify = simplify;
    options.prune = prune;
    // Opt 3 at its strongest setting: one transition per segment (the
    // paper's "minimal execution circuit depth").
    options.transitionsPerSegment = segmented ? 1 : 0;
    core::RasenganSolver solver(problem, options);
    return solver.maxSegmentCost().first;
}

} // namespace

int
main()
{
    banner("Figure 15: circuit-depth ablation of opt1/opt2/opt3");

    Table table({"bench", "base", "+opt1", "+opt1,2", "+opt1,2,3",
                 "reduction"});
    table.printHeader();

    double total_base = 0.0, total_all = 0.0;
    for (const char *id : {"F1", "K1", "J1", "S1", "G1"}) {
        problems::Problem p = problems::makeBenchmark(id);
        int base = depthWith(p, false, false, false);
        int opt1 = depthWith(p, true, false, false);
        int opt12 = depthWith(p, true, true, false);
        int opt123 = depthWith(p, true, true, true);
        total_base += base;
        total_all += opt123;

        table.cell(id);
        table.cell(base);
        table.cell(opt1);
        table.cell(opt12);
        table.cell(opt123);
        table.cell(100.0 * (1.0 - static_cast<double>(opt123) / base),
                   "%.1f%%");
        table.endRow();
    }

    std::printf("\noverall depth reduction: %.1f%% (paper: >94.6%%)\n",
                100.0 * (1.0 - total_all / total_base));
    return 0;
}
