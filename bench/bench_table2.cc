/**
 * @file
 * Reproduces Table 2: algorithmic evaluation of HEA, P-QAOA, Choco-Q and
 * Rasengan on the 20-benchmark suite (F1..G4) in a noise-free
 * environment -- ARG, circuit depth, and parameter count per benchmark,
 * averaged over RASENGAN_BENCH_CASES seeded cases, plus the cross-suite
 * improvement factors the paper headlines (4.12x ARG vs Choco-Q, 1.96x
 * depth, etc.).
 */

#include <cmath>
#include <map>

#include "algo_runners.h"
#include "bench_util.h"
#include "common/stats.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

struct Accumulated
{
    std::vector<double> arg;
    std::vector<double> depth;
    std::vector<double> params;
};

} // namespace

int
main()
{
    const int cases = benchCases();
    const int iters = budget(200);
    banner("Table 2: ARG / circuit depth / #parameters, 20 benchmarks");
    std::printf("cases per benchmark: %d (RASENGAN_BENCH_CASES), "
                "optimizer budget: %d\n\n",
                cases, iters);

    const std::vector<std::string> algos = {"HEA", "P-QAOA", "Choco-Q",
                                            "Rasengan"};
    std::map<std::string, Accumulated> totals;

    Table table({"bench", "qubits", "feasible", "algo", "ARG", "depth",
                 "params"});
    table.printHeader();

    for (const std::string &id : problems::benchmarkIds()) {
        std::map<std::string, Accumulated> acc;
        size_t feasible = 0;
        int qubits = 0;
        for (int c = 0; c < cases; ++c) {
            problems::Problem p = problems::makeBenchmark(id, c);
            feasible = p.feasibleCount();
            qubits = p.numVars();
            std::map<std::string, AlgoMetrics> metrics;
            metrics["HEA"] = runHea(p, iters);
            metrics["P-QAOA"] = runPqaoa(p, iters);
            metrics["Choco-Q"] = runChocoq(p, iters);
            metrics["Rasengan"] = runRasengan(p, iters);
            for (const auto &[name, m] : metrics) {
                acc[name].arg.push_back(m.arg);
                acc[name].depth.push_back(m.depth);
                acc[name].params.push_back(m.params);
                totals[name].arg.push_back(std::max(m.arg, 1e-4));
                totals[name].depth.push_back(
                    std::max<double>(m.depth, 1.0));
                totals[name].params.push_back(m.params);
            }
        }
        for (const std::string &name : algos) {
            table.cell(id);
            table.cell(qubits);
            table.cell(static_cast<int>(feasible));
            table.cell(name);
            table.cell(mean(acc[name].arg), "%.3f");
            table.cell(mean(acc[name].depth), "%.0f");
            table.cell(mean(acc[name].params), "%.0f");
            table.endRow();
        }
    }

    banner("improvement factors vs Rasengan (geomean across suite)");
    for (const std::string &name : algos) {
        if (name == "Rasengan")
            continue;
        double arg_ratio =
            geomean(totals[name].arg) / geomean(totals["Rasengan"].arg);
        double depth_ratio = geomean(totals[name].depth) /
                             geomean(totals["Rasengan"].depth);
        std::printf("%-10s ARG %8.2fx   depth %6.2fx\n", name.c_str(),
                    arg_ratio, depth_ratio);
    }
    std::printf("\nexpected shape (paper): HEA/P-QAOA ~1900x worse ARG, "
                "Choco-Q ~4x worse ARG and ~2-49x deeper circuits; HEA "
                ">10x more parameters.\n");
    return 0;
}
