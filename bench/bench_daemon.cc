/**
 * @file
 * Serve daemon benchmark (BENCH_daemon.json): what the always-on path
 * adds on top of the batch scheduler.
 *
 * Three measurements:
 *
 *  - "journal-append": raw write-ahead journal throughput.  Every
 *    accepted/running/done record is fflush'd and fdatasync'd, so this
 *    is a disk-latency bench; it bounds the daemon's accept rate.
 *
 *  - "queue": DeadlineQueue push+pop throughput at a realistic mixed
 *    backlog, with the priority -> EDF -> FIFO dispatch order asserted
 *    on every drain (a perf regression and a policy regression would
 *    both show up here).
 *
 *  - "daemon" / "daemon-journaled": end-to-end jobs/second through a
 *    live unix socket, with and without the journal, on the same
 *    request stream.  The two runs' result lines are asserted
 *    byte-identical: durability may cost latency, never bytes.
 *
 * Knobs: RASENGAN_BENCH_FAST=1 shrinks the stream for CI;
 * RASENGAN_BENCH_JSON overrides the output path.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serve/daemon.h"
#include "serve/job.h"
#include "serve/journal.h"
#include "serve/slo.h"

namespace {

using namespace rasengan;
using bench::fastMode;

struct Record
{
    std::string phase;
    size_t ops = 0;
    double seconds = 0.0;
    double opsPerSec = 0.0;
};

std::vector<Record> g_records;

void
record(const char *phase, size_t ops, double seconds)
{
    Record r;
    r.phase = phase;
    r.ops = ops;
    r.seconds = seconds;
    r.opsPerSec = seconds > 0.0 ? static_cast<double>(ops) / seconds
                                : 0.0;
    g_records.push_back(r);
    std::printf("%-18s %8zu ops  %9.4f s  %12.1f ops/s\n", phase, ops,
                seconds, r.opsPerSec);
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"records\": [\n");
    for (size_t i = 0; i < g_records.size(); ++i) {
        const Record &r = g_records[i];
        std::fprintf(f,
                     "    {\"phase\": \"%s\", \"ops\": %zu, "
                     "\"seconds\": %.6f, \"ops_per_sec\": %.2f}%s\n",
                     r.phase.c_str(), r.ops, r.seconds, r.opsPerSec,
                     i + 1 < g_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu records to %s\n", g_records.size(),
                path.c_str());
}

std::string
tempPath(const char *leaf)
{
    const char *base = std::getenv("TMPDIR");
    return std::string(base && *base ? base : "/tmp") + "/" + leaf +
           "." + std::to_string(::getpid());
}

// ---------------------------------------------------------------------
// Journal append throughput
// ---------------------------------------------------------------------

void
benchJournal()
{
    const size_t jobs = fastMode() ? 64 : 512;
    const std::string path = tempPath("bench_daemon_wal");
    serve::Journal journal;
    std::string error;
    panic_if(!journal.open(path, 1, &error), "journal open failed");

    serve::JobRequest req;
    req.benchmark = "F1";
    Stopwatch sw;
    sw.start();
    for (size_t i = 0; i < jobs; ++i) {
        req.id = "j-" + std::to_string(i);
        uint64_t seq = journal.appendAccepted(req, "fingerprint");
        journal.appendRunning(seq, req.id);
        journal.appendDone(seq, req.id, "{\"id\":\"x\",\"ok\":true}");
    }
    sw.stop();
    journal.close();
    std::remove(path.c_str());
    record("journal-append", jobs * 3, sw.seconds());
}

// ---------------------------------------------------------------------
// DeadlineQueue throughput + dispatch-order assertion
// ---------------------------------------------------------------------

void
benchQueue()
{
    const size_t rounds = fastMode() ? 200 : 2000;
    const size_t depth = 64;
    Stopwatch sw;
    sw.start();
    for (size_t round = 0; round < rounds; ++round) {
        serve::DeadlineQueue queue;
        for (size_t i = 0; i < depth; ++i) {
            serve::SloJob job;
            job.seq = i;
            job.arrival = i;
            // Deterministic mixed backlog: all three classes, deadlines
            // on every other job.
            job.priority = static_cast<serve::Priority>(i % 3);
            job.deadlineMs =
                (i % 2) ? 100.0 + static_cast<double>((i * 37) % 900)
                        : 0.0;
            job.costUnits = 1.0;
            queue.push(job);
        }
        serve::SloJob prev = queue.pop();
        while (!queue.empty()) {
            serve::SloJob next = queue.pop();
            const bool classOrdered = prev.priority <= next.priority;
            panic_if(!classOrdered, "priority inversion in dispatch");
            if (prev.priority == next.priority && prev.deadlineMs > 0.0 &&
                next.deadlineMs > 0.0) {
                panic_if(prev.deadlineMs > next.deadlineMs,
                         "EDF inversion in dispatch");
            }
            prev = next;
        }
    }
    sw.stop();
    record("queue", rounds * depth, sw.seconds());
}

// ---------------------------------------------------------------------
// End-to-end daemon throughput over a unix socket
// ---------------------------------------------------------------------

class Client
{
  public:
    explicit Client(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        panic_if(::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)) != 0,
                 "cannot connect to the bench daemon");
    }
    ~Client() { ::close(fd_); }

    void
    send(const std::string &line)
    {
        std::string framed = line + "\n";
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n =
                ::send(fd_, framed.data() + off, framed.size() - off, 0);
            panic_if(n <= 0, "send failed");
            off += static_cast<size_t>(n);
        }
    }

    std::string
    recvLine()
    {
        while (true) {
            size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return line;
            }
            char chunk[65536];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            panic_if(n <= 0, "daemon closed mid-stream");
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

std::map<std::string, std::string>
runDaemon(bool journaled, const std::vector<serve::JobRequest> &requests,
          double *seconds)
{
    const std::string sock = tempPath("bench_daemon_sock");
    const std::string wal = tempPath("bench_daemon_run_wal");
    serve::DaemonOptions options;
    options.listen = "unix:" + sock;
    if (journaled)
        options.journalPath = wal;
    serve::Daemon daemon(options);
    std::string error;
    panic_if(!daemon.start(&error), "daemon start failed: {}", error);

    std::map<std::string, std::string> results;
    {
        Client client(sock);
        Stopwatch sw;
        sw.start();
        for (const serve::JobRequest &req : requests)
            client.send(serve::writeRequest(req));
        for (size_t i = 0; i < requests.size(); ++i) {
            std::string line = client.recvLine();
            serve::JsonParseResult parsed = serve::parseFlatJson(line);
            panic_if(!parsed.ok, "bad result line: {}", parsed.error);
            results[parsed.object["id"].str] = line;
        }
        sw.stop();
        *seconds = sw.seconds();
    }
    daemon.stop();
    std::remove(wal.c_str());
    return results;
}

void
benchDaemon()
{
    const size_t jobs = fastMode() ? 8 : 32;
    const char *benchmarks[] = {"F1", "F2", "K1"};
    std::vector<serve::JobRequest> requests;
    for (size_t i = 0; i < jobs; ++i) {
        serve::JobRequest req;
        req.id = "bench-" + std::to_string(i);
        req.benchmark = benchmarks[i % 3];
        req.iterations = 4;
        req.priority = (i % 3 == 0) ? "interactive" : "batch";
        requests.push_back(req);
    }

    double plainSec = 0.0, journaledSec = 0.0;
    std::map<std::string, std::string> plain =
        runDaemon(false, requests, &plainSec);
    std::map<std::string, std::string> durable =
        runDaemon(true, requests, &journaledSec);
    panic_if(plain != durable,
             "journaled and plain daemons disagree on result bytes");

    record("daemon", jobs, plainSec);
    record("daemon-journaled", jobs, journaledSec);
}

} // namespace

int
main()
{
    std::printf("serve daemon bench%s\n\n",
                fastMode() ? " (fast mode)" : "");
    benchJournal();
    benchQueue();
    benchDaemon();
    const char *env = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(env && *env ? env : "BENCH_daemon.json");
    return 0;
}
