/**
 * @file
 * Batch solve service benchmark: throughput and artifact-cache
 * effectiveness, cold vs. warm, across a thread sweep
 * (BENCH_serve.json).
 *
 * One synthetic workload (serve::generateWorkload draws repeats from a
 * small configuration space, like a real submission stream) is run
 * twice per thread count against a SHARED artifact cache: the first
 * batch starts cold and populates it, the second hits it.  Identical
 * deterministic results are asserted between the two runs -- the cache
 * may only change latency, never output.
 *
 * Knobs: RASENGAN_BENCH_FAST=1 shrinks the workload for CI smoke runs;
 * RASENGAN_BENCH_THREADS="1,2,4" overrides the sweep;
 * RASENGAN_BENCH_JSON overrides the output path.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "serve/artifact_cache.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "serve/workload.h"

namespace {

using namespace rasengan;

struct Record
{
    std::string phase; ///< "cold" | "warm"
    int threads = 1;
    size_t jobs = 0;
    size_t ok = 0;
    int repeats = 0;
    double seconds = 0.0; ///< median over repeats
    double jobsPerSec = 0.0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    double hitRate = 0.0;
    uint64_t cacheBytes = 0;
};

std::vector<Record> g_records;

struct BatchOutcome
{
    std::vector<std::string> lines; ///< deterministic result lines
    size_t ok = 0;
    double seconds = 0.0;
};

BatchOutcome
runBatch(const std::vector<serve::JobRequest> &requests, int threads,
         std::shared_ptr<serve::ArtifactCache> cache)
{
    serve::ServeOptions options;
    options.threads = threads;
    serve::BatchScheduler scheduler(options, std::move(cache));
    for (const serve::JobRequest &req : requests)
        scheduler.submit(req);
    Stopwatch sw;
    sw.start();
    scheduler.runAll();
    sw.stop();

    BatchOutcome outcome;
    outcome.seconds = sw.seconds();
    for (const serve::JobResult &result : scheduler.results()) {
        outcome.lines.push_back(serve::writeResult(result));
        if (result.accepted && result.ok)
            ++outcome.ok;
    }
    return outcome;
}

double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    return n % 2 ? samples[n / 2]
                 : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

void
record(const char *phase, int threads, size_t jobs, size_t ok,
       const std::vector<double> &seconds, uint64_t hits,
       uint64_t misses, uint64_t bytes)
{
    Record rec;
    rec.phase = phase;
    rec.threads = threads;
    rec.jobs = jobs;
    rec.ok = ok;
    rec.repeats = static_cast<int>(seconds.size());
    rec.seconds = medianOf(seconds);
    rec.jobsPerSec = rec.seconds > 0
                         ? static_cast<double>(jobs) / rec.seconds
                         : 0.0;
    rec.cacheHits = hits;
    rec.cacheMisses = misses;
    rec.hitRate = (hits + misses) > 0
                      ? static_cast<double>(hits) /
                            static_cast<double>(hits + misses)
                      : 0.0;
    rec.cacheBytes = bytes;
    g_records.push_back(rec);
    std::printf("  %-4s threads=%d  %6.1f ms median  %7.1f jobs/s  "
                "%llu hits / %llu misses (%.0f%%)\n",
                phase, threads, rec.seconds * 1e3, rec.jobsPerSec,
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                100.0 * rec.hitRate);
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"serve\",\n");
    std::fprintf(f, "  \"records\": [\n");
    for (size_t i = 0; i < g_records.size(); ++i) {
        const Record &r = g_records[i];
        std::fprintf(
            f,
            "    {\"phase\": \"%s\", \"threads\": %d, \"jobs\": %zu, "
            "\"ok\": %zu, \"repeats\": %d, \"seconds\": %.6f, "
            "\"jobs_per_sec\": %.2f, "
            "\"cache_hits\": %llu, \"cache_misses\": %llu, "
            "\"hit_rate\": %.4f, \"cache_bytes\": %llu}%s\n",
            r.phase.c_str(), r.threads, r.jobs, r.ok, r.repeats,
            r.seconds, r.jobsPerSec,
            static_cast<unsigned long long>(r.cacheHits),
            static_cast<unsigned long long>(r.cacheMisses), r.hitRate,
            static_cast<unsigned long long>(r.cacheBytes),
            i + 1 < g_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu records to %s\n", g_records.size(),
                path.c_str());
}

std::vector<int>
threadSweep()
{
    std::vector<int> sweep;
    if (const char *env = std::getenv("RASENGAN_BENCH_THREADS")) {
        int cur = 0;
        bool have = false;
        for (const char *c = env;; ++c) {
            if (*c >= '0' && *c <= '9') {
                cur = cur * 10 + (*c - '0');
                have = true;
            } else {
                if (have && cur > 0)
                    sweep.push_back(cur);
                cur = 0;
                have = false;
                if (!*c)
                    break;
            }
        }
    }
    if (sweep.empty())
        sweep = {1, 2, 4};
    return sweep;
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    const size_t jobs = fast ? 20 : 50;
    const std::vector<int> sweep = threadSweep();

    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(jobs, 1);
    std::printf("serve bench: %zu jobs, %zu thread configs%s\n",
                jobs, sweep.size(), fast ? " (fast mode)" : "");

    const int repeats = fast ? 3 : 5;
    std::vector<std::string> reference;
    for (int threads : sweep) {
        std::vector<double> coldSec, warmSec;
        uint64_t coldHits = 0, coldMisses = 0;
        uint64_t warmHits = 0, warmMisses = 0, bytes = 0;
        size_t ok = 0;
        for (int r = 0; r < repeats; ++r) {
            // A fresh cache per repeat keeps every cold run truly cold.
            auto cache =
                std::make_shared<serve::ArtifactCache>(64ull << 20);

            BatchOutcome cold = runBatch(requests, threads, cache);
            serve::ArtifactCache::Stats mid = cache->stats();
            BatchOutcome warm = runBatch(requests, threads, cache);
            serve::ArtifactCache::Stats after = cache->stats();

            coldSec.push_back(cold.seconds);
            warmSec.push_back(warm.seconds);
            coldHits = mid.hits;
            coldMisses = mid.misses;
            warmHits = after.hits - mid.hits;
            warmMisses = after.misses - mid.misses;
            bytes = after.bytesInUse;
            ok = cold.ok;

            // The cache and the thread count may only change latency.
            panic_if(cold.lines != warm.lines,
                     "warm batch results differ from cold");
            if (reference.empty())
                reference = cold.lines;
            panic_if(reference != cold.lines,
                     "results differ across thread counts/repeats");
        }
        record("cold", threads, requests.size(), ok, coldSec, coldHits,
               coldMisses, bytes);
        record("warm", threads, requests.size(), ok, warmSec, warmHits,
               warmMisses, bytes);
    }
    parallel::setThreadCount(0);

    const char *env = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(env && *env ? env : "BENCH_serve.json");
    return 0;
}
