/**
 * @file
 * Microbenchmarks for the hot simulation kernels, hand-rolled so the
 * results land in a machine-readable artifact (BENCH_kernels.json).
 *
 * Each kernel is timed for >= 5 repeats and reported as the median, in
 * three configurations where applicable:
 *
 *   - a thread sweep (1, 2, 4 by default) over the parallel kernels
 *     (dense gate application, diagonal evolution, reductions, noisy
 *     trajectories, alias-table sampling);
 *   - fusion on vs. off for full-circuit application (a transpiled
 *     Rasengan segment circuit and a synthetic deep circuit), with the
 *     fused/source gate counts recorded alongside the times.
 *
 * Knobs: RASENGAN_BENCH_FAST=1 shrinks sizes/repeats for CI smoke runs;
 * RASENGAN_BENCH_THREADS="1,2,4" overrides the sweep;
 * RASENGAN_BENCH_JSON overrides the output path.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/fusion.h"
#include "circuit/transpile.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/rasengan.h"
#include "problems/suite.h"
#include "qsim/counts.h"
#include "qsim/noise.h"
#include "qsim/simd.h"
#include "qsim/statevector.h"

namespace {

using namespace rasengan;

struct Record
{
    std::string kernel;
    std::string variant; ///< "serial", "threads=N", "fused", "unfused"
    int threads = 1;
    int repeats = 0;
    double medianMs = 0.0;
    double minMs = 0.0;
    /** Extra kernel-specific fields (gate counts, shots, ...). */
    std::vector<std::pair<std::string, double>> extra;
};

std::vector<Record> g_records;

double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    return n % 2 ? samples[n / 2]
                 : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/**
 * Time @p body for @p repeats runs (after one untimed warmup) and
 * record the median.  @p setup runs before each timed repeat, outside
 * the timed region.
 */
Record &
timeKernel(const std::string &kernel, const std::string &variant,
           int threads, int repeats, const std::function<void()> &setup,
           const std::function<void()> &body)
{
    setup();
    body(); // warmup: first-touch pages, populate caches
    std::vector<double> ms;
    ms.reserve(repeats);
    for (int r = 0; r < repeats; ++r) {
        setup();
        Stopwatch sw;
        sw.start();
        body();
        sw.stop();
        ms.push_back(sw.seconds() * 1e3);
    }
    Record rec;
    rec.kernel = kernel;
    rec.variant = variant;
    rec.threads = threads;
    rec.repeats = repeats;
    rec.medianMs = medianOf(ms);
    rec.minMs = *std::min_element(ms.begin(), ms.end());
    g_records.push_back(std::move(rec));
    return g_records.back();
}

std::vector<int>
threadSweep()
{
    std::vector<int> sweep;
    if (const char *env = std::getenv("RASENGAN_BENCH_THREADS")) {
        int cur = 0;
        bool have = false;
        for (const char *c = env;; ++c) {
            if (*c >= '0' && *c <= '9') {
                cur = cur * 10 + (*c - '0');
                have = true;
            } else {
                if (have && cur > 0)
                    sweep.push_back(cur);
                cur = 0;
                have = false;
                if (!*c)
                    break;
            }
        }
    }
    if (sweep.empty())
        sweep = {1, 2, 4};
    return sweep;
}

/** Deep, structured circuit exercising runs + diagonal chains. */
circuit::Circuit
layeredCircuit(int n, int layers)
{
    circuit::Circuit circ(n);
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) {
            circ.h(q);
            circ.rz(q, 0.1 * (l + 1));
            circ.rx(q, 0.05 * (q + 1));
        }
        for (int q = 0; q < n; ++q)
            circ.p(q, 0.2);
        for (int q = 0; q + 1 < n; ++q)
            circ.cp(q, q + 1, 0.15);
        for (int q = 0; q + 1 < n; q += 2)
            circ.cx(q, q + 1);
    }
    return circ;
}

void
benchGateKernels(const std::vector<int> &sweep, int n, int repeats)
{
    bench::banner("dense gate kernels");
    bench::Table table({"kernel", "isa", "threads", "median_ms"});
    table.printHeader();

    qsim::Mat2 h = qsim::gateMatrix(circuit::GateKind::H, 0.0);
    qsim::Mat2 x = qsim::gateMatrix(circuit::GateKind::X, 0.0);
    qsim::Statevector sv(n);

    // ISA x thread sweep: scalar is always present; the best vector ISA
    // adds a second column when the CPU has one.
    std::vector<qsim::SimdIsa> isas = {qsim::SimdIsa::Scalar};
    if (qsim::simdBestIsa() != qsim::SimdIsa::Scalar)
        isas.push_back(qsim::simdBestIsa());

    for (qsim::SimdIsa isa : isas) {
        if (!qsim::setSimdIsa(isa))
            continue;
        const std::string isa_name = qsim::simdIsaName(isa);
        for (int tc : sweep) {
            parallel::setThreadCount(tc);
            const std::string variant =
                "threads=" + std::to_string(tc) + ",isa=" + isa_name;
            Record &r1 = timeKernel(
                "apply1q_hadamard_layer", variant, tc, repeats, [] {},
                [&] {
                    for (int q = 0; q < n; ++q)
                        sv.apply1q(q, h);
                });
            r1.extra.emplace_back("qubits", n);
            table.cell("h_layer");
            table.cell(isa_name);
            table.cell(tc);
            table.cell(r1.medianMs);
            table.endRow();

            Record &r2 = timeKernel(
                "cx_chain", variant, tc, repeats, [] {},
                [&] {
                    for (int q = 0; q + 1 < n; ++q)
                        sv.applyControlled1q({q}, q + 1, x);
                });
            r2.extra.emplace_back("qubits", n);
            table.cell("cx_chain");
            table.cell(isa_name);
            table.cell(tc);
            table.cell(r2.medianMs);
            table.endRow();

            std::vector<double> values(sv.dimension());
            for (size_t i = 0; i < values.size(); ++i)
                values[i] = 1e-3 * static_cast<double>(i % 97);
            Record &r3 = timeKernel(
                "diagonal_evolution", variant, tc, repeats, [] {},
                [&] { sv.applyDiagonalEvolution(values, 0.25); });
            r3.extra.emplace_back("qubits", n);
            table.cell("diag_evo");
            table.cell(isa_name);
            table.cell(tc);
            table.cell(r3.medianMs);
            table.endRow();

            Record &r4 = timeKernel(
                "norm_reduction", variant, tc, repeats, [] {},
                [&] {
                    volatile double sink = sv.normSquared();
                    (void)sink;
                });
            r4.extra.emplace_back("qubits", n);
            table.cell("norm");
            table.cell(isa_name);
            table.cell(tc);
            table.cell(r4.medianMs);
            table.endRow();
        }
    }
    qsim::setSimdIsa(qsim::simdBestIsa());
}

void
benchSampling(const std::vector<int> &sweep, int n, uint64_t shots,
              int repeats)
{
    bench::banner("alias sampling");
    bench::Table table({"kernel", "threads", "median_ms"});
    table.printHeader();

    qsim::Statevector sv(n);
    qsim::Mat2 h = qsim::gateMatrix(circuit::GateKind::H, 0.0);
    for (int q = 0; q < n; ++q)
        sv.apply1q(q, h);

    for (int tc : sweep) {
        parallel::setThreadCount(tc);
        Record &rec = timeKernel(
            "sample_alias", "threads=" + std::to_string(tc), tc, repeats,
            [] {},
            [&] {
                Rng rng(7);
                qsim::Counts counts = sv.sample(rng, shots);
                volatile uint64_t sink = counts.total();
                (void)sink;
            });
        rec.extra.emplace_back("qubits", n);
        rec.extra.emplace_back("shots", static_cast<double>(shots));
        table.cell("sample");
        table.cell(tc);
        table.cell(rec.medianMs);
        table.endRow();
    }
}

void
benchTrajectories(const std::vector<int> &sweep, int repeats)
{
    bench::banner("noisy trajectories");
    bench::Table table({"kernel", "threads", "median_ms"});
    table.printHeader();

    const int n = 12;
    circuit::Circuit circ = layeredCircuit(n, 3);
    qsim::NoiseModel noise;
    noise.depol1q = 0.001;
    noise.depol2q = 0.005;
    noise.readoutError = 0.01;

    for (int tc : sweep) {
        parallel::setThreadCount(tc);
        Record &rec = timeKernel(
            "noisy_trajectories", "threads=" + std::to_string(tc), tc,
            repeats, [] {},
            [&] {
                Rng rng(3);
                qsim::Counts counts = qsim::sampleNoisy(
                    circ, n, BitVec{}, noise, rng, 256,
                    /*trajectories=*/8);
                volatile uint64_t sink = counts.total();
                (void)sink;
            });
        rec.extra.emplace_back("qubits", n);
        rec.extra.emplace_back("trajectories", 8);
        table.cell("noisy");
        table.cell(tc);
        table.cell(rec.medianMs);
        table.endRow();
    }
}

void
benchFusion(int n, int layers, int repeats)
{
    bench::banner("gate fusion (full circuit)");
    bench::Table table({"circuit", "variant", "median_ms", "gates"});
    table.printHeader();
    parallel::setThreadCount(1);

    struct Case
    {
        std::string name;
        circuit::Circuit circ;
    };
    std::vector<Case> cases;
    cases.push_back({"layered", layeredCircuit(n, layers)});

    // A transpiled Rasengan segment: the shape this pass is built for.
    problems::Problem p = problems::makeBenchmark("S2");
    core::RasenganSolver solver(p, {});
    std::vector<double> nominal(solver.numParams(), 0.5);
    cases.push_back({"segment_S2",
                     circuit::transpile(solver.segmentCircuit(
                         0, p.trivialFeasible(), nominal))});

    for (const Case &c : cases) {
        const int nq = c.circ.numQubits();
        circuit::FusedProgram prog = circuit::fuseCircuit(c.circ);

        circuit::setFusionEnabled(false);
        Record &plain = timeKernel(
            c.name + "_apply", "unfused", 1, repeats, [] {},
            [&] {
                qsim::Statevector sv(nq);
                sv.applyCircuit(c.circ);
            });
        plain.extra.emplace_back("gates",
                                 static_cast<double>(prog.sourceOps));
        table.cell(c.name);
        table.cell("unfused");
        table.cell(plain.medianMs);
        table.cell(static_cast<int>(prog.sourceOps));
        table.endRow();

        circuit::setFusionEnabled(true);
        Record &fused = timeKernel(
            c.name + "_apply", "fused", 1, repeats, [] {},
            [&] {
                qsim::Statevector sv(nq);
                sv.applyFused(prog);
            });
        fused.extra.emplace_back("gates",
                                 static_cast<double>(prog.fusedOps()));
        fused.extra.emplace_back("fusion_ratio",
                                 prog.fusedOps() == 0
                                     ? 0.0
                                     : static_cast<double>(prog.sourceOps) /
                                           static_cast<double>(
                                               prog.fusedOps()));
        table.cell(c.name);
        table.cell("fused");
        table.cell(fused.medianMs);
        table.cell(static_cast<int>(prog.fusedOps()));
        table.endRow();
    }
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"microkernels\",\n");
    std::fprintf(f, "  \"records\": [\n");
    for (size_t i = 0; i < g_records.size(); ++i) {
        const Record &r = g_records[i];
        std::fprintf(f,
                     "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                     "\"threads\": %d, \"repeats\": %d, "
                     "\"median_ms\": %.6f, \"min_ms\": %.6f",
                     r.kernel.c_str(), r.variant.c_str(), r.threads,
                     r.repeats, r.medianMs, r.minMs);
        for (const auto &[key, value] : r.extra)
            std::fprintf(f, ", \"%s\": %g", key.c_str(), value);
        std::fprintf(f, "}%s\n", i + 1 < g_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu records to %s\n", g_records.size(),
                path.c_str());
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    const int repeats = fast ? 5 : 7;
    const int n_dense = fast ? 16 : 20;
    const std::vector<int> sweep = threadSweep();

    std::printf("microkernel bench: %d dense qubits, %d repeats, "
                "%zu thread configs%s\n",
                n_dense, repeats, sweep.size(), fast ? " (fast mode)" : "");

    benchGateKernels(sweep, n_dense, repeats);
    benchSampling(sweep, fast ? 14 : 18, fast ? 20000 : 100000, repeats);
    benchTrajectories(sweep, repeats);
    benchFusion(fast ? 10 : 12, fast ? 4 : 8, repeats);

    const char *env = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(env && *env ? env : "BENCH_kernels.json");
    return 0;
}
