/**
 * @file
 * Google-benchmark microbenchmarks for the hot kernels underneath the
 * experiment harnesses: dense gate application, sparse pair rotation,
 * transpilation, routing, exact RREF, and chain construction.
 */

#include <benchmark/benchmark.h>

#include "circuit/transpile.h"
#include "core/basis.h"
#include "core/chain.h"
#include "core/rasengan.h"
#include "device/routing.h"
#include "linalg/rref.h"
#include "problems/suite.h"
#include "qsim/sparsestate.h"
#include "qsim/statevector.h"

namespace {

using namespace rasengan;

void
BM_DenseHadamardLayer(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    qsim::Statevector sv(n);
    qsim::Mat2 h = qsim::gateMatrix(circuit::GateKind::H, 0.0);
    for (auto _ : state) {
        for (int q = 0; q < n; ++q)
            sv.apply1q(q, h);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations() * n *
                            static_cast<int64_t>(sv.dimension()));
}
BENCHMARK(BM_DenseHadamardLayer)->Arg(10)->Arg(14)->Arg(18);

void
BM_DenseCxChain(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    qsim::Statevector sv(n);
    sv.apply1q(0, qsim::gateMatrix(circuit::GateKind::H, 0.0));
    for (auto _ : state) {
        for (int q = 0; q + 1 < n; ++q)
            sv.applyControlled1q({q}, q + 1,
                                 qsim::gateMatrix(circuit::GateKind::X,
                                                  0.0));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_DenseCxChain)->Arg(10)->Arg(14)->Arg(18);

void
BM_SparsePairRotation(benchmark::State &state)
{
    problems::Problem p = problems::makeScalabilityFlp(
        static_cast<int>(state.range(0)));
    auto transitions =
        core::makeTransitions(core::transitionVectors(p));
    // One segment-sized pass from a fresh basis state per iteration
    // (otherwise the support keeps doubling across iterations).
    for (auto _ : state) {
        qsim::SparseState s(p.numVars(), p.trivialFeasible());
        for (size_t k = 0; k < std::min<size_t>(transitions.size(), 8); ++k)
            transitions[k].applyTo(s, 0.3);
        benchmark::DoNotOptimize(s.supportSize());
    }
}
BENCHMARK(BM_SparsePairRotation)->Arg(21)->Arg(52)->Arg(105);

void
BM_TranspileTransitionOp(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    linalg::IntVec u(k, 1);
    core::TransitionHamiltonian tau(u);
    circuit::Circuit circ = tau.toCircuit(k, 0.4);
    for (auto _ : state) {
        circuit::Circuit lowered = circuit::transpile(circ);
        benchmark::DoNotOptimize(lowered.size());
    }
}
BENCHMARK(BM_TranspileTransitionOp)->Arg(2)->Arg(4)->Arg(6);

void
BM_RouteOntoHeavyHex(benchmark::State &state)
{
    problems::Problem p = problems::makeBenchmark("S2");
    core::RasenganSolver solver(p, {});
    std::vector<double> nominal(solver.numParams(), 0.5);
    circuit::Circuit lowered = circuit::transpile(
        solver.segmentCircuit(0, p.trivialFeasible(), nominal));
    device::CouplingMap map = device::CouplingMap::heavyHex(7, 15);
    for (auto _ : state) {
        device::RoutingResult r = device::route(lowered, map);
        benchmark::DoNotOptimize(r.swapsInserted);
    }
}
BENCHMARK(BM_RouteOntoHeavyHex);

void
BM_ExactRref(benchmark::State &state)
{
    problems::Problem p = problems::makeScalabilityFlp(
        static_cast<int>(state.range(0)));
    linalg::RatMat m = linalg::toRational(p.constraints());
    for (auto _ : state) {
        linalg::RrefResult r = linalg::rref(m);
        benchmark::DoNotOptimize(r.rank);
    }
}
BENCHMARK(BM_ExactRref)->Arg(21)->Arg(52)->Arg(105);

void
BM_ChainConstruction(benchmark::State &state)
{
    problems::Problem p = problems::makeBenchmark("S4");
    auto transitions =
        core::makeTransitions(core::transitionVectors(p));
    for (auto _ : state) {
        core::Chain chain =
            core::buildChain(transitions, p.trivialFeasible());
        benchmark::DoNotOptimize(chain.reachableCount);
    }
}
BENCHMARK(BM_ChainConstruction);

} // namespace

BENCHMARK_MAIN();
