/**
 * @file
 * Reproduces Figure 11: evaluation on "real-world" platforms -- here,
 * gate-level trajectory simulation under the IBM Kyiv and IBM Brisbane
 * calibration noise models (the substitution documented in DESIGN.md) on
 * the small-scale F1 / K1 / J1 benchmarks with <= 100 iterations.
 *
 * (a) average ARG per device, against the mean-feasible-solution
 *     baseline;
 * (b) average in-constraints rate per device.
 *
 * Paper shape: baselines land above the mean-feasible line and their
 * in-constraints rate collapses (6.3% for Choco-Q on Kyiv); Rasengan
 * beats the baseline by orders of magnitude with a 100% in-constraints
 * rate on both devices, insensitive to the error-rate gap between them.
 */

#include <map>

#include "algo_runners.h"
#include "bench_util.h"
#include "common/stats.h"
#include "device/device.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    banner("Figure 11: ARG and in-constraints rate under device noise");
    const int iters = budget(80);
    const std::vector<std::string> cases = {"F1", "K1", "J1"};

    for (const device::DeviceModel &device :
         {device::DeviceModel::ibmKyiv(),
          device::DeviceModel::ibmBrisbane()}) {
        qsim::NoiseModel noise = device.toNoiseModel();
        std::printf("\n-- %s (2q error %.2f%%) --\n", device.name.c_str(),
                    100.0 * device.error2q);

        std::vector<double> base_args;
        std::map<std::string, std::vector<double>> args, rates;
        for (const std::string &id : cases) {
            problems::Problem p = problems::makeBenchmark(id);
            base_args.push_back(problems::meanFeasibleArg(p));
            std::map<std::string, AlgoMetrics> metrics;
            metrics["HEA"] = runHea(p, iters, noise);
            metrics["P-QAOA"] = runPqaoa(p, iters, noise);
            metrics["Choco-Q"] = runChocoq(p, iters, noise);
            metrics["Rasengan"] = runRasengan(p, iters, noise);
            for (const auto &[name, m] : metrics) {
                args[name].push_back(m.arg);
                rates[name].push_back(m.inConstraints);
            }
        }

        Table table({"method", "avg-ARG", "in-constr"});
        table.printHeader();
        table.cell(std::string("feas-mean"));
        table.cell(mean(base_args), "%.3f");
        table.cell(std::string("(baseline)"));
        table.endRow();
        for (const char *name : {"HEA", "P-QAOA", "Choco-Q", "Rasengan"}) {
            table.cell(std::string(name));
            table.cell(mean(args[name]), "%.3f");
            table.cell(100.0 * mean(rates[name]), "%.1f%%");
            table.endRow();
        }
    }

    std::printf("\nexpected shape (paper): only Rasengan beats the "
                "feas-mean ARG; purification pins its in-constraints rate "
                "at 100%% on both devices.\n");
    return 0;
}
