/**
 * @file
 * Design-choice ablation: the classical trainer.  The paper fixes COBYLA
 * for all methods; this harness compares the four derivative-free
 * optimizers in this repository (COBYLA-style trust region, Nelder-Mead,
 * SPSA, Adam-SPSA) on Rasengan's evolution-time training across several
 * benchmarks, under the same evaluation budget.
 */

#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "core/rasengan.h"
#include "opt/factory.h"
#include "problems/metrics.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    banner("Optimizer ablation: training Rasengan's evolution times");
    const int iters = budget(150);
    std::printf("evaluation budget per run: %d\n\n", iters);

    const std::vector<opt::Method> methods = {
        opt::Method::Cobyla, opt::Method::NelderMead, opt::Method::Spsa,
        opt::Method::AdamSpsa};

    Table table({"optimizer", "avg-ARG", "avg-evals", "converged"});
    table.printHeader();

    for (opt::Method method : methods) {
        std::vector<double> args, evals;
        int converged = 0, runs = 0;
        for (const char *id : {"F2", "K2", "J2", "S2", "G2"}) {
            problems::Problem p = problems::makeBenchmark(id);
            core::RasenganOptions options;
            options.maxIterations = iters;
            options.optimizer = method;
            core::RasenganSolver solver(p, options);
            core::RasenganResult res = solver.run();
            ++runs;
            if (res.failed)
                continue;
            args.push_back(p.arg(res.expectedObjective));
            evals.push_back(res.training.evaluations);
            converged += res.training.converged ? 1 : 0;
        }
        table.cell(opt::methodName(method));
        table.cell(mean(args), "%.4f");
        table.cell(mean(evals), "%.0f");
        table.cell(converged);
        table.endRow();
    }

    std::printf("\nreading: all four trainers reach low ARG on these "
                "smooth, low-dimensional landscapes; the simplex methods "
                "(COBYLA-style, Nelder-Mead) typically lead within the "
                "budget, the stochastic-gradient pair trades accuracy for "
                "shot-noise robustness.\n");
    return 0;
}
