/**
 * @file
 * Characterizes the resilient execution engine: retry counts, backoff
 * latency overhead, and result stability as the injected fault rate
 * grows, plus the degradation ladder's behavior when the retry budget
 * is too small to ride out the fault storm.
 *
 * Key invariant surfaced by the first table: because every retry
 * attempt reseeds from the per-segment job seed, the solve at any
 * survivable fault rate is bit-identical to the fault-free solve --
 * the "identical" column must read yes wherever no demotion happened.
 */

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/rasengan.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

core::RasenganOptions
baseOptions(int iters)
{
    core::RasenganOptions opts;
    opts.maxIterations = iters;
    opts.shotsPerSegment = 512;
    opts.execution =
        core::RasenganOptions::Execution::SampledSparse;
    return opts;
}

struct RunSummary
{
    core::RasenganResult result;
    double arg = 0.0;
};

RunSummary
solveAt(const problems::Problem &p, int iters, double fault_rate,
        int max_attempts)
{
    core::RasenganOptions opts = baseOptions(iters);
    opts.resilience.faults.rate = fault_rate;
    opts.resilience.retry.maxAttempts = max_attempts;
    opts.resilience.breaker.failureThreshold = max_attempts;
    core::RasenganSolver solver(p, opts);
    RunSummary s;
    s.result = solver.run();
    s.arg = s.result.failed ? -1.0 : p.arg(s.result.expectedObjective);
    return s;
}

} // namespace

int
main()
{
    const int iters = budget(50);
    const char *benchmarks[] = {"F1", "K1", "S1"};

    banner("Resilience: overhead and determinism vs fault rate");
    std::printf("per-attempt fault probability swept with a retry budget "
                "large enough to avoid demotions (16 attempts)\n");
    {
        Table table({"problem", "rate", "retries", "backoff-s",
                     "quantum-s", "overhead", "ARG", "identical"});
        table.printHeader();
        for (const char *id : benchmarks) {
            problems::Problem p = problems::makeBenchmark(id);
            RunSummary clean = solveAt(p, iters, 0.0, 16);
            for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3}) {
                RunSummary s = solveAt(p, iters, rate, 16);
                const auto &st = s.result.execStats;
                table.cell(std::string(id));
                table.cell(rate, "%.2f");
                table.cell(static_cast<int>(st.retries));
                table.cell(st.backoffSeconds, "%.3f");
                table.cell(s.result.quantumSeconds, "%.3f");
                table.cell(clean.result.quantumSeconds > 0.0
                               ? s.result.quantumSeconds /
                                     clean.result.quantumSeconds
                               : 0.0,
                           "%.2fx");
                table.cell(s.arg, "%.4f");
                bool identical =
                    !s.result.failed && !clean.result.failed &&
                    s.result.solution == clean.result.solution &&
                    s.result.expectedObjective ==
                        clean.result.expectedObjective;
                table.cell(std::string(identical ? "yes" : "NO"));
                table.endRow();
            }
        }
        std::printf("expected shape: retries and latency overhead grow "
                    "with the rate; ARG column is constant per problem "
                    "and 'identical' reads yes everywhere.\n");
    }

    banner("Resilience: degradation ladder under a starved retry budget");
    std::printf("fault rate 0.9 with only 2 attempts per execution: the "
                "ladder must demote down to the clean fallback instead "
                "of failing the solve\n");
    {
        Table table({"problem", "attempts", "failures", "demotions",
                     "fallbacks", "level", "ARG"},
                    15);
        table.printHeader();
        for (const char *id : benchmarks) {
            problems::Problem p = problems::makeBenchmark(id);
            RunSummary s = solveAt(p, iters, 0.9, 2);
            const auto &st = s.result.execStats;
            table.cell(std::string(id));
            table.cell(static_cast<int>(st.attempts));
            table.cell(static_cast<int>(st.failures));
            table.cell(st.demotions);
            table.cell(static_cast<int>(st.fallbacks));
            table.cell(std::string(
                exec::degradationLevelName(s.result.degradation)));
            table.cell(s.arg, "%.4f");
            table.endRow();
        }
        std::printf("expected shape: every row ends at clean-fallback "
                    "with a finite ARG (no failed solves).\n");
    }

    return 0;
}
