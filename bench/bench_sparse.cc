/**
 * @file
 * A/B benchmark for the sparse simulation engine overhaul: the seed
 * hash-map engine (bench/legacy_sparsestate.h, preserved verbatim)
 * against the flat structure-of-arrays engine (qsim/sparsestate.h) --
 * run both scalar and, when the CPU has one, under the best vector ISA
 * (qsim/simd.h) -- plus a thread sweep over the new parallel kernels
 * and the rotation-plan cache's replay-vs-direct timing and hit rate.
 *
 * Workload: the full pruned transition chain of the Figure-10
 * scalability FLP instances (up to 105 variables, maxTrackedStates
 * 20000 like bench_fig10), applied from the trivial feasible state --
 * exactly the inner loop the optimizer executes hundreds of times per
 * solve.  Every A/B case also records the maximum absolute amplitude
 * difference between the engines so the artifact doubles as an
 * agreement check (CI asserts <= 1e-10 and a plan-cache hit rate > 0).
 *
 * Knobs: RASENGAN_BENCH_FAST=1 trims sizes/repeats for CI smoke runs;
 * RASENGAN_BENCH_THREADS="1,2,4" overrides the sweep;
 * RASENGAN_BENCH_JSON overrides the output path (BENCH_sparse.json).
 */

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/rasengan.h"
#include "legacy_sparsestate.h"
#include "problems/suite.h"
#include "qsim/simd.h"
#include "qsim/sparseplan.h"
#include "qsim/sparsestate.h"

namespace {

using namespace rasengan;

struct Record
{
    std::string kernel;
    std::string variant; ///< "legacy", "soa", "soa_simd", "threads=N", ...
    int threads = 1;
    int repeats = 0;
    double medianMs = 0.0;
    double minMs = 0.0;
    std::vector<std::pair<std::string, double>> extra;
};

std::vector<Record> g_records;

double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    return n % 2 ? samples[n / 2]
                 : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

Record &
timeKernel(const std::string &kernel, const std::string &variant,
           int threads, int repeats, const std::function<void()> &body)
{
    body(); // warmup
    std::vector<double> ms;
    ms.reserve(repeats);
    for (int r = 0; r < repeats; ++r) {
        Stopwatch sw;
        sw.start();
        body();
        sw.stop();
        ms.push_back(sw.seconds() * 1e3);
    }
    Record rec;
    rec.kernel = kernel;
    rec.variant = variant;
    rec.threads = threads;
    rec.repeats = repeats;
    rec.medianMs = medianOf(ms);
    rec.minMs = *std::min_element(ms.begin(), ms.end());
    g_records.push_back(std::move(rec));
    return g_records.back();
}

std::vector<int>
threadSweep()
{
    std::vector<int> sweep;
    if (const char *env = std::getenv("RASENGAN_BENCH_THREADS")) {
        int cur = 0;
        bool have = false;
        for (const char *c = env;; ++c) {
            if (*c >= '0' && *c <= '9') {
                cur = cur * 10 + (*c - '0');
                have = true;
            } else {
                if (have && cur > 0)
                    sweep.push_back(cur);
                cur = 0;
                have = false;
                if (!*c)
                    break;
            }
        }
    }
    if (sweep.empty())
        sweep = {1, 2, 4};
    return sweep;
}

/** One Figure-10 instance: problem + pruned chain + evolution times. */
struct ChainCase
{
    int numVars = 0;
    problems::Problem problem;
    std::vector<core::TransitionHamiltonian> transitions;
    std::vector<int> steps; ///< chain positions into `transitions`
    std::vector<double> times;
};

ChainCase
makeChainCase(int num_vars)
{
    ChainCase c{.numVars = num_vars,
                .problem = problems::makeScalabilityFlp(num_vars),
                .transitions = {},
                .steps = {},
                .times = {}};
    core::RasenganOptions opts;
    opts.maxTrackedStates = 20000; // bench_fig10's reachability cap
    core::PipelineArtifacts art =
        core::buildPipelineArtifacts(c.problem, opts);
    c.transitions = std::move(art.transitions);
    c.steps = art.chain.steps;
    Rng rng(17);
    c.times.reserve(c.steps.size());
    for (size_t k = 0; k < c.steps.size(); ++k)
        c.times.push_back(rng.uniformReal(0.3, 1.1));
    return c;
}

/** Run the full chain on the legacy engine; returns the final state. */
bench::LegacySparseState
runLegacy(const ChainCase &c)
{
    bench::LegacySparseState s(c.numVars, c.problem.trivialFeasible());
    for (size_t k = 0; k < c.steps.size(); ++k) {
        const auto &tau = c.transitions[c.steps[k]];
        s.applyPairRotation(tau.mask(), tau.patternPlus(), c.times[k]);
    }
    return s;
}

/** Run the full chain on the SoA engine; returns the final state. */
qsim::SparseState
runSoa(const ChainCase &c)
{
    qsim::SparseState s(c.numVars, c.problem.trivialFeasible());
    for (size_t k = 0; k < c.steps.size(); ++k) {
        const auto &tau = c.transitions[c.steps[k]];
        s.applyPairRotation(tau.mask(), tau.patternPlus(), c.times[k]);
    }
    return s;
}

/** Max |amp_legacy - amp_soa| over the union of both supports. */
double
maxAmplitudeDiff(const bench::LegacySparseState &legacy,
                 const qsim::SparseState &soa)
{
    double max_diff = 0.0;
    for (const auto &[x, a] : legacy.amplitudes())
        max_diff = std::max(max_diff, std::abs(a - soa.amplitude(x)));
    for (size_t i = 0; i < soa.keys().size(); ++i)
        max_diff = std::max(max_diff,
                            std::abs(soa.amps()[i] -
                                     legacy.amplitude(soa.keys()[i])));
    return max_diff;
}

void
benchEngineAB(const std::vector<int> &sizes, int repeats)
{
    bench::banner("legacy hash-map vs flat SoA (single thread)");
    bench::Table table({"vars", "chain", "support", "legacy_ms", "soa_ms",
                        "simd_ms", "speedup", "max_diff"});
    table.printHeader();
    parallel::setThreadCount(1);

    // The legacy engine and the "soa" record form the stable scalar
    // reference pair; "soa_simd" re-runs the SoA engine under the best
    // vector ISA (when the CPU has one) and must agree bit-for-bit.
    const bool have_simd = qsim::simdBestIsa() != qsim::SimdIsa::Scalar;

    for (int v : sizes) {
        ChainCase c = makeChainCase(v);

        qsim::setSimdIsa(qsim::SimdIsa::Scalar);
        bench::LegacySparseState legacy_final = runLegacy(c);
        qsim::SparseState soa_final = runSoa(c);
        const double max_diff = maxAmplitudeDiff(legacy_final, soa_final);

        // NOTE: timeKernel's Record& is only valid until the next call
        // pushes into g_records -- attach extras before re-entering.
        auto commonExtras = [&](Record &r, size_t support) {
            r.extra.emplace_back("vars", v);
            r.extra.emplace_back("chain_steps",
                                 static_cast<double>(c.steps.size()));
            r.extra.emplace_back("support",
                                 static_cast<double>(support));
        };

        Record &old_rec =
            timeKernel("chain_evolution_" + std::to_string(v), "legacy", 1,
                       repeats, [&] {
                           bench::LegacySparseState s = runLegacy(c);
                           volatile size_t sink = s.supportSize();
                           (void)sink;
                       });
        commonExtras(old_rec, soa_final.supportSize());
        old_rec.extra.emplace_back("max_abs_diff", max_diff);
        const double legacy_ms = old_rec.medianMs;

        Record &new_rec =
            timeKernel("chain_evolution_" + std::to_string(v), "soa", 1,
                       repeats, [&] {
                           qsim::SparseState s = runSoa(c);
                           volatile size_t sink = s.supportSize();
                           (void)sink;
                       });
        const double soa_ms = new_rec.medianMs;
        const double speedup =
            soa_ms > 0.0 ? legacy_ms / soa_ms : 0.0;
        commonExtras(new_rec, soa_final.supportSize());
        new_rec.extra.emplace_back("max_abs_diff", max_diff);
        new_rec.extra.emplace_back("speedup_vs_legacy", speedup);

        double simd_ms = 0.0;
        if (have_simd && qsim::setSimdIsa(qsim::simdBestIsa())) {
            qsim::SparseState simd_final = runSoa(c);
            // The SIMD kernels are bit-identical to scalar; the recorded
            // diff is still measured against the legacy engine so the CI
            // gate applies uniformly to every variant.
            const double simd_diff =
                maxAmplitudeDiff(legacy_final, simd_final);
            Record &simd_rec = timeKernel(
                "chain_evolution_" + std::to_string(v), "soa_simd", 1,
                repeats, [&] {
                    qsim::SparseState s = runSoa(c);
                    volatile size_t sink = s.supportSize();
                    (void)sink;
                });
            simd_ms = simd_rec.medianMs;
            commonExtras(simd_rec, simd_final.supportSize());
            simd_rec.extra.emplace_back("max_abs_diff", simd_diff);
            simd_rec.extra.emplace_back(
                "speedup_vs_soa_scalar",
                simd_ms > 0.0 ? soa_ms / simd_ms : 0.0);
            qsim::setSimdIsa(qsim::SimdIsa::Scalar);
        }

        table.cell(v);
        table.cell(static_cast<int>(c.steps.size()));
        table.cell(static_cast<int>(soa_final.supportSize()));
        table.cell(legacy_ms);
        table.cell(soa_ms);
        table.cell(simd_ms);
        table.cell(speedup, "%.2f");
        table.cell(max_diff, "%.2e");
        table.endRow();
    }
    qsim::setSimdIsa(qsim::simdBestIsa());
}

void
benchThreadSweep(int num_vars, const std::vector<int> &sweep, int repeats)
{
    bench::banner("SoA kernels thread sweep");
    bench::Table table({"vars", "threads", "median_ms"});
    table.printHeader();

    ChainCase c = makeChainCase(num_vars);
    for (int tc : sweep) {
        parallel::setThreadCount(tc);
        Record &rec = timeKernel(
            "chain_evolution_" + std::to_string(num_vars),
            "threads=" + std::to_string(tc), tc, repeats, [&] {
                qsim::SparseState s = runSoa(c);
                volatile size_t sink = s.supportSize();
                (void)sink;
            });
        rec.extra.emplace_back("vars", num_vars);
        rec.extra.emplace_back("chain_steps",
                               static_cast<double>(c.steps.size()));
        table.cell(num_vars);
        table.cell(tc);
        table.cell(rec.medianMs);
        table.endRow();
    }
    parallel::setThreadCount(1);
}

/**
 * Thread sweep over the contiguous bulk kernels (phase, norm,
 * renormalize, prune scan) on a wide synthetic support.  The chain
 * sweep above is bounded by the serial pair-enumeration pass and
 * per-step pool dispatch; these kernels are where the SoA layout's
 * parallelism actually pays.
 */
void
benchBulkKernels(const std::vector<int> &sweep, int repeats)
{
    bench::banner("bulk SoA kernels thread sweep (synthetic support)");
    bench::Table table({"kernel", "support", "threads", "median_ms"});
    table.printHeader();

    const uint64_t support = bench::fastMode() ? (uint64_t{1} << 18)
                                               : (uint64_t{1} << 20);
    std::vector<BitVec> keys;
    std::vector<qsim::SparseState::Complex> amps;
    keys.reserve(support);
    amps.reserve(support);
    Rng rng(23);
    const double inv = 1.0 / std::sqrt(static_cast<double>(support));
    for (uint64_t i = 0; i < support; ++i) {
        keys.push_back(BitVec::fromIndex(i * 3 + 1));
        amps.emplace_back(inv * std::cos(0.01 * static_cast<double>(i)),
                          inv * std::sin(0.01 * static_cast<double>(i)));
    }

    for (int tc : sweep) {
        parallel::setThreadCount(tc);
        qsim::SparseState s = qsim::SparseState::fromSorted(
            64, keys, std::vector<qsim::SparseState::Complex>(amps));

        Record &rnorm = timeKernel("bulk_norm_squared",
                                   "threads=" + std::to_string(tc), tc,
                                   repeats, [&] {
                                       volatile double sink =
                                           s.normSquared();
                                       (void)sink;
                                   });
        rnorm.extra.emplace_back("support",
                                 static_cast<double>(support));
        table.cell("norm");
        table.cell(static_cast<int>(support));
        table.cell(tc);
        table.cell(rnorm.medianMs);
        table.endRow();

        Record &rphase = timeKernel(
            "bulk_apply_phase", "threads=" + std::to_string(tc), tc,
            repeats, [&] {
                s.applyPhase([](const BitVec &x) {
                    return 1e-7 * static_cast<double>(x.low64() & 0xffff);
                });
            });
        rphase.extra.emplace_back("support",
                                  static_cast<double>(support));
        table.cell("phase");
        table.cell(static_cast<int>(support));
        table.cell(tc);
        table.cell(rphase.medianMs);
        table.endRow();

        Record &rren = timeKernel("bulk_renormalize",
                                  "threads=" + std::to_string(tc), tc,
                                  repeats, [&] { s.renormalize(); });
        rren.extra.emplace_back("support", static_cast<double>(support));
        table.cell("renorm");
        table.cell(static_cast<int>(support));
        table.cell(tc);
        table.cell(rren.medianMs);
        table.endRow();

        Record &rprune = timeKernel(
            "bulk_prune_scan", "threads=" + std::to_string(tc), tc,
            repeats, [&] {
                volatile size_t sink = s.prune(1e-300);
                (void)sink;
            });
        rprune.extra.emplace_back("support",
                                  static_cast<double>(support));
        table.cell("prune");
        table.cell(static_cast<int>(support));
        table.cell(tc);
        table.cell(rprune.medianMs);
        table.endRow();
    }
    parallel::setThreadCount(1);
}

void
benchPlanCache(int num_vars, int iterations, int repeats)
{
    bench::banner("rotation-plan cache (optimizer-loop shape)");
    bench::Table table({"vars", "variant", "median_ms", "hit_rate"});
    table.printHeader();
    parallel::setThreadCount(1);

    problems::Problem p = problems::makeScalabilityFlp(num_vars);
    core::RasenganOptions base;
    base.maxTrackedStates = 20000;
    base.execution = core::RasenganOptions::Execution::ExactSparse;

    // The optimizer-loop shape: execute() the segmented pipeline
    // `iterations` times with slightly different angle vectors, as
    // training does.  The cached solver records on iteration 0 and
    // replays thereafter.
    auto loop = [&](bool cache) {
        core::RasenganOptions o = base;
        o.cacheRotationPlans = cache;
        core::RasenganSolver solver(p, o);
        std::vector<double> times(solver.numParams(), 0.6);
        Rng rng(5);
        for (int it = 0; it < iterations; ++it) {
            for (auto &t : times)
                t = 0.4 + 0.002 * it + 0.3 * std::sin(0.37 * it);
            auto dist = solver.execute(times, rng);
            volatile size_t sink = dist.entries.size();
            (void)sink;
        }
        return solver.planStats();
    };

    core::PlanStats stats_off, stats_on;
    // timeKernel's Record& dangles once the next call pushes into
    // g_records: finish each record before timing the next variant.
    Record &off = timeKernel("optimizer_loop_" + std::to_string(num_vars),
                             "plan_cache_off", 1, repeats,
                             [&] { stats_off = loop(false); });
    off.extra.emplace_back("vars", num_vars);
    off.extra.emplace_back("iterations", iterations);
    const double off_ms = off.medianMs;

    Record &on = timeKernel("optimizer_loop_" + std::to_string(num_vars),
                            "plan_cache_on", 1, repeats,
                            [&] { stats_on = loop(true); });

    const double lookups =
        static_cast<double>(stats_on.hits() + stats_on.misses());
    const double hit_rate =
        lookups > 0.0 ? static_cast<double>(stats_on.hits()) / lookups : 0.0;
    on.extra.emplace_back("vars", num_vars);
    on.extra.emplace_back("iterations", iterations);
    on.extra.emplace_back("plan_hit_rate", hit_rate);
    on.extra.emplace_back("plans_recorded",
                          static_cast<double>(stats_on.recorded));
    on.extra.emplace_back("plans_replayed",
                          static_cast<double>(stats_on.replayed));
    on.extra.emplace_back("plans_aborted",
                          static_cast<double>(stats_on.aborted));
    on.extra.emplace_back("speedup_vs_uncached",
                          on.medianMs > 0.0 ? off_ms / on.medianMs
                                            : 0.0);

    table.cell(num_vars);
    table.cell("off");
    table.cell(off_ms);
    table.cell("-");
    table.endRow();
    table.cell(num_vars);
    table.cell("on");
    table.cell(on.medianMs);
    table.cell(hit_rate, "%.3f");
    table.endRow();
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"sparse\",\n");
    std::fprintf(f, "  \"records\": [\n");
    for (size_t i = 0; i < g_records.size(); ++i) {
        const Record &r = g_records[i];
        std::fprintf(f,
                     "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                     "\"threads\": %d, \"repeats\": %d, "
                     "\"median_ms\": %.6f, \"min_ms\": %.6f",
                     r.kernel.c_str(), r.variant.c_str(), r.threads,
                     r.repeats, r.medianMs, r.minMs);
        for (const auto &[key, value] : r.extra)
            std::fprintf(f, ", \"%s\": %g", key.c_str(), value);
        std::fprintf(f, "}%s\n", i + 1 < g_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::printf("\nwrote %zu records to %s\n", g_records.size(),
                path.c_str());
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    const int repeats = fast ? 3 : 5;
    const std::vector<int> sweep = threadSweep();

    // Figure-10 FLP sizes; fast mode keeps the tail short for CI.
    std::vector<int> sizes;
    for (int v : problems::scalabilityFlpSizes()) {
        if (v > (fast ? 60 : 105))
            break;
        if (v >= 14)
            sizes.push_back(v);
    }

    std::printf("sparse engine bench: %zu FLP sizes (max %d vars), "
                "%d repeats%s\n",
                sizes.size(), sizes.back(), repeats,
                fast ? " (fast mode)" : "");

    benchEngineAB(sizes, repeats);
    benchThreadSweep(sizes.back(), sweep, repeats);
    benchBulkKernels(sweep, repeats);
    benchPlanCache(fast ? 33 : 52, fast ? 10 : 30, fast ? 2 : 3);

    const char *env = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(env && *env ? env : "BENCH_sparse.json");
    return 0;
}
