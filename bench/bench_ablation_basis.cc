/**
 * @file
 * Design-choice ablation: where the homogeneous basis comes from.
 * Compares, per benchmark:
 *   rref      : RREF free-column kernel basis (+ signed-0/1 repair)
 *   hnf       : Hermite-normal-form kernel basis
 *   simplified: rref basis after Algorithm 1
 *   executable: transitionVectors() (simplified + connectivity
 *               augmentation), what the solver actually runs
 * on total nonzeros (the circuit-cost driver), walk coverage of the
 * feasible set, and the transpiled depth of a 3-transition segment.
 */

#include "bench_util.h"
#include "core/basis.h"
#include "core/chain.h"
#include "core/rasengan.h"
#include "linalg/hnf.h"
#include "linalg/nullspace.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

size_t
coverage(const std::vector<linalg::IntVec> &vectors,
         const problems::Problem &p)
{
    for (const auto &u : vectors)
        if (!linalg::isSigned01(u))
            return 0; // not executable as transitions
    auto transitions = core::makeTransitions(vectors);
    core::Chain chain =
        core::buildChain(transitions, p.trivialFeasible());
    return chain.reachableCount;
}

} // namespace

int
main()
{
    banner("Basis ablation: RREF vs HNF vs Algorithm 1 vs executable set");

    Table table({"bench", "basis", "vectors", "nonzeros", "coverage",
                 "feasible"});
    table.printHeader();

    for (const char *id : {"F2", "K2", "J3", "S3", "G2", "G4"}) {
        problems::Problem p = problems::makeBenchmark(id);
        struct Variant
        {
            const char *name;
            std::vector<linalg::IntVec> vectors;
        };
        std::vector<Variant> variants;
        variants.push_back({"rref", core::homogeneousBasis(p)});
        variants.push_back({"hnf", linalg::hnfKernelBasis(p.constraints())});
        variants.push_back(
            {"simplified", core::simplifyBasis(core::homogeneousBasis(p))});
        variants.push_back({"executable", core::transitionVectors(p)});

        for (const Variant &v : variants) {
            bool executable = true;
            for (const auto &u : v.vectors)
                executable &= linalg::isSigned01(u);
            table.cell(id);
            table.cell(std::string(v.name));
            table.cell(static_cast<int>(v.vectors.size()));
            table.cell(core::totalNonZeros(v.vectors));
            if (executable)
                table.cell(static_cast<int>(coverage(v.vectors, p)));
            else
                table.cell(std::string("n/a"));
            table.cell(static_cast<int>(p.feasibleCount()));
            table.endRow();
        }
    }

    std::printf("\nexpected shape: Algorithm 1 cuts nonzeros (circuit "
                "cost) but can shrink coverage; the executable set "
                "restores full coverage with a handful of difference "
                "vectors.  HNF bases are sometimes sparser than RREF but "
                "are not guaranteed signed-0/1.\n");
    return 0;
}
