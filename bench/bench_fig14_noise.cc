/**
 * @file
 * Reproduces Figure 14: Rasengan's sensitivity to noise.
 *  (a) ARG distribution under Pauli (depolarizing) noise at increasing
 *      two-qubit error rates, across many cases from the five families;
 *  (b) ARG under growing amplitude damping on top of a fixed background
 *      (1q error 0.035%, 2q error 0.875%, phase damping), including the
 *      failure cliff where segments stop producing feasible states.
 */

#include <map>

#include "algo_runners.h"
#include "bench_util.h"
#include "common/stats.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

std::vector<double>
argsUnderNoise(const qsim::NoiseModel &noise, int cases, int iters,
               int *failures)
{
    std::vector<double> args;
    for (const char *id : {"F1", "K1", "J1", "S1", "G1"}) {
        for (int c = 0; c < cases; ++c) {
            problems::Problem p = problems::makeBenchmark(id, c);
            AlgoMetrics m = runRasengan(p, iters, noise, 7 + c);
            if (m.failed) {
                ++*failures;
                continue;
            }
            args.push_back(m.arg);
        }
    }
    return args;
}

} // namespace

int
main()
{
    const int cases = benchCases();
    const int iters = budget(25);

    banner("Figure 14a: ARG vs Pauli (depolarizing) error rate");
    {
        Table table({"2q-error", "mean-ARG", "p50", "p99", "fails"});
        table.printHeader();
        for (double rate : {1e-4, 3e-4, 1e-3, 3e-3}) {
            qsim::NoiseModel noise;
            noise.depol2q = rate;
            noise.depol1q = rate / 10.0;
            int failures = 0;
            std::vector<double> args =
                argsUnderNoise(noise, cases, iters, &failures);
            table.cell(rate, "%.4f");
            if (args.empty()) {
                table.cell(std::string("-"));
                table.cell(std::string("-"));
                table.cell(std::string("-"));
            } else {
                table.cell(mean(args), "%.4f");
                table.cell(percentile(args, 50), "%.4f");
                table.cell(percentile(args, 99), "%.4f");
            }
            table.cell(failures);
            table.endRow();
        }
        std::printf("expected shape (paper): ARG grows with the error "
                    "rate but stays small (<~0.15 at 1e-3).\n");
    }

    banner("Figure 14b: ARG vs amplitude damping (fixed background)");
    {
        Table table({"damping", "mean-ARG", "fails"});
        table.printHeader();
        for (double damping : {0.0, 0.005, 0.010, 0.015, 0.020}) {
            qsim::NoiseModel noise;
            noise.depol1q = 3.5e-4; // Section 5.5 background
            noise.depol2q = 8.75e-3;
            noise.phaseDamping = 2e-3;
            noise.amplitudeDamping = damping;
            int failures = 0;
            std::vector<double> args =
                argsUnderNoise(noise, cases, iters, &failures);
            table.cell(damping, "%.3f");
            if (args.empty())
                table.cell(std::string("-"));
            else
                table.cell(mean(args), "%.4f");
            table.cell(failures);
            table.endRow();
        }
        std::printf("expected shape (paper): mild ARG growth up to 1.5%% "
                    "damping, then failures appear as intermediate "
                    "segments lose feasibility.\n");
    }
    return 0;
}
