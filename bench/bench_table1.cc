/**
 * @file
 * Reproduces Table 1: VQA designs compared on a 12-qubit set covering
 * problem in a noise-free environment -- ARG and end-to-end training
 * latency (quantum latency from the IBM Quebec timing model, classical
 * latency measured).
 *
 * Paper reference values: HEA / P-QAOA ARG ~1000, Choco-Q 7.27,
 * Rasengan 0.70; latency 702 / ~300 / 445 / 144 ms per iteration class.
 */

#include "algo_runners.h"
#include "bench_util.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    banner("Table 1: 12-qubit set covering, noise-free");

    // S4 is the 12-variable SCP benchmark.
    problems::Problem problem = problems::makeBenchmark("S4");
    std::printf("instance: %d qubits, %zu feasible of %llu states\n\n",
                problem.numVars(), problem.feasibleCount(),
                static_cast<unsigned long long>(1ull << problem.numVars()));

    const int iters = budget(200);

    Table table({"method", "ARG", "latency-ms", "out-state"});
    table.printHeader();

    struct Row
    {
        const char *name;
        AlgoMetrics metrics;
        const char *state;
    };
    std::vector<Row> rows = {
        {"HEA", runHea(problem, iters), "superpos."},
        {"P-QAOA", runPqaoa(problem, iters), "superpos."},
        {"Choco-Q", runChocoq(problem, iters), "superpos."},
        {"Rasengan", runRasengan(problem, iters), "basis"},
    };
    for (const Row &row : rows) {
        table.cell(std::string(row.name));
        table.cell(row.metrics.arg, "%.2f");
        // Per-iteration latency (quantum model + measured classical).
        double per_iter_ms =
            1e3 * (row.metrics.quantumSeconds +
                   row.metrics.classicalSeconds) / iters;
        table.cell(per_iter_ms, "%.1f");
        table.cell(std::string(row.state));
        table.endRow();
    }

    std::printf("\nexpected shape (paper): HEA and P-QAOA orders of "
                "magnitude worse than Choco-Q; Rasengan best ARG at the "
                "lowest latency.\n");
    return 0;
}
