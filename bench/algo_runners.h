/**
 * @file
 * Uniform wrappers running each algorithm on a Problem and extracting the
 * metric tuple the paper's tables report (ARG, in-constraints rate,
 * circuit depth, parameter count, latency split).
 */

#ifndef RASENGAN_BENCH_ALGO_RUNNERS_H
#define RASENGAN_BENCH_ALGO_RUNNERS_H

#include "baselines/chocoq.h"
#include "baselines/hea.h"
#include "baselines/pqaoa.h"
#include "core/rasengan.h"
#include "problems/metrics.h"
#include "problems/problem.h"

namespace rasengan::bench {

struct AlgoMetrics
{
    double arg = 0.0;
    double inConstraints = 0.0;
    int depth = 0;
    int params = 0;
    double quantumSeconds = 0.0;
    double classicalSeconds = 0.0;
    bool failed = false;
};

inline AlgoMetrics
fromVqa(const problems::Problem &problem,
        const baselines::VqaResult &result)
{
    AlgoMetrics m;
    m.arg = problem.arg(result.expectedObjective);
    m.inConstraints = result.inConstraintsRate;
    m.depth = result.circuitDepth;
    m.params = result.numParams;
    m.quantumSeconds = result.quantumSeconds;
    m.classicalSeconds = result.classicalSeconds;
    return m;
}

inline AlgoMetrics
runHea(const problems::Problem &problem, int iterations,
       const qsim::NoiseModel &noise = {}, uint64_t seed = 11)
{
    baselines::HeaOptions options;
    options.maxIterations = iterations;
    options.noise = noise;
    options.seed = seed;
    options.trajectories = 4;
    baselines::Hea solver(problem, options);
    return fromVqa(problem, solver.run());
}

inline AlgoMetrics
runPqaoa(const problems::Problem &problem, int iterations,
         const qsim::NoiseModel &noise = {}, uint64_t seed = 11)
{
    baselines::PqaoaOptions options;
    options.maxIterations = iterations;
    options.noise = noise;
    options.seed = seed;
    options.trajectories = 4;
    // The paper composes P-QAOA with FrozenQubits and Red-QAOA.
    options.frozenQubits = problem.numVars() >= 10 ? 2 : 1;
    options.smartInit = true;
    baselines::Pqaoa solver(problem, options);
    return fromVqa(problem, solver.run());
}

inline AlgoMetrics
runChocoq(const problems::Problem &problem, int iterations,
          const qsim::NoiseModel &noise = {}, uint64_t seed = 11)
{
    baselines::ChocoqOptions options;
    options.maxIterations = iterations;
    options.noise = noise;
    options.seed = seed;
    options.trajectories = 4;
    baselines::Chocoq solver(problem, options);
    return fromVqa(problem, solver.run());
}

inline AlgoMetrics
runRasengan(const problems::Problem &problem, int iterations,
            const qsim::NoiseModel &noise = {}, uint64_t seed = 7)
{
    core::RasenganOptions options;
    options.maxIterations = iterations;
    options.seed = seed;
    if (noise.enabled()) {
        options.execution =
            core::RasenganOptions::Execution::NoisyGateLevel;
        options.noise = noise;
        options.trajectories = 4;
        options.shotsPerSegment = 512;
    }
    core::RasenganSolver solver(problem, options);
    core::RasenganResult result = solver.run();

    AlgoMetrics m;
    m.failed = result.failed;
    m.arg = problem.arg(result.expectedObjective);
    m.inConstraints = result.inConstraintsRate;
    m.depth = result.maxSegmentDepth;
    m.params = result.numParams;
    m.quantumSeconds = result.quantumSeconds;
    m.classicalSeconds = result.classicalSeconds;
    return m;
}

} // namespace rasengan::bench

#endif // RASENGAN_BENCH_ALGO_RUNNERS_H
