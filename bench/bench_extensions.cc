/**
 * @file
 * Beyond-paper generality check: the paper argues (Section 3.2) that the
 * transition-Hamiltonian framework needs no objective-Hamiltonian
 * encoding, so higher-order objectives come for free.  This harness runs
 * Rasengan and Choco-Q on two applications from the paper's motivation
 * that the evaluation itself does not cover -- route optimization (TSP,
 * quadratic tour cost) and budgeted portfolio selection (inequality
 * constraint compiled to slack bits) -- plus the readout-mitigation
 * extension under measurement noise.
 */

#include "algo_runners.h"
#include "bench_util.h"
#include "problems/portfolio.h"
#include "problems/suite.h"
#include "problems/tsp.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    const int iters = budget(200);

    banner("Extensions: route optimization and budgeted portfolios");
    Table table({"instance", "vars", "feasible", "algo", "ARG",
                 "depth"});
    table.printHeader();

    std::vector<problems::Problem> instances;
    {
        Rng rng(21);
        instances.push_back(problems::makeTsp(
            "TSP3", {.cities = 3}, rng));
        instances.push_back(problems::makeTsp(
            "TSP4", {.cities = 4}, rng));
        instances.push_back(problems::makePortfolio(
            "PORT6", {.assets = 6, .pick = 3}, rng));
        instances.push_back(problems::makePortfolio(
            "PORT8", {.assets = 8, .pick = 4}, rng));
    }
    for (const problems::Problem &p : instances) {
        AlgoMetrics ras = runRasengan(p, iters);
        AlgoMetrics cq = runChocoq(p, iters);
        for (const auto &[name, m] :
             {std::pair<const char *, AlgoMetrics>{"Rasengan", ras},
              std::pair<const char *, AlgoMetrics>{"Choco-Q", cq}}) {
            table.cell(p.id());
            table.cell(p.numVars());
            table.cell(static_cast<int>(p.feasibleCount()));
            table.cell(std::string(name));
            table.cell(m.arg, "%.4f");
            table.cell(m.depth);
            table.endRow();
        }
    }

    banner("Readout mitigation under measurement noise (J1)");
    {
        problems::Problem p = problems::makeBenchmark("J1");
        Table t2({"mitigate", "raw-feas", "ARG"});
        t2.printHeader();
        for (bool mitigate : {false, true}) {
            core::RasenganOptions options;
            options.execution =
                core::RasenganOptions::Execution::NoisyGateLevel;
            options.noise.readoutError = 0.04;
            options.noise.depol2q = 0.002;
            options.mitigateReadout = mitigate;
            options.maxIterations = budget(30);
            options.shotsPerSegment = 1024;
            options.trajectories = 4;
            core::RasenganSolver solver(p, options);
            core::RasenganResult res = solver.run();
            t2.cell(std::string(mitigate ? "on" : "off"));
            if (res.failed) {
                t2.cell(std::string("-"));
                t2.cell(std::string("failed"));
            } else {
                t2.cell(res.finalDistribution.prePurifyFeasibleFraction,
                        "%.3f");
                t2.cell(p.arg(res.expectedObjective), "%.4f");
            }
            t2.endRow();
        }
    }

    std::printf("\nreading: the transition framework handles quadratic "
                "tour costs and slack-compiled budget inequalities "
                "without any extra encoding; readout mitigation restores "
                "raw feasibility before purification.\n");
    return 0;
}
