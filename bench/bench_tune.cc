/**
 * @file
 * Adaptive-execution benchmark (BENCH_tune.json): fixed defaults vs a
 * warm cost model steering the per-job result-invariant knobs.
 *
 * For each workload class the harness runs the same request batch three
 * ways:
 *
 *  - "fixed": tune off -- today's defaults, the baseline every tuned
 *    run must reproduce byte-for-byte;
 *  - training rounds (unreported): tune auto against an initially empty
 *    cost model.  The tuner explores one knob arm at a time and journals
 *    a measurement per job; decisions take effect in FUTURE runs only,
 *    so training is what "warm" means here;
 *  - "tuned": tune auto against the warmed model, measured and compared
 *    against the fixed run.
 *
 * Every tuned job's deterministic result line is asserted byte-identical
 * to the fixed-default run -- an improvement that changed results would
 * be measuring a different computation.  The batch scheduler runs jobs
 * concurrently, so the tuner is wired exactly like rasengan_serve: per-
 * job knobs only (engine, plans), process knobs pinned.
 *
 * Knobs: RASENGAN_BENCH_FAST=1 shrinks the batches for CI;
 * RASENGAN_BENCH_JSON overrides the output path.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "serve/workload.h"
#include "tune/tuner.h"

namespace {

using namespace rasengan;
using bench::fastMode;

constexpr uint64_t kBatchSeed = 17;
constexpr const char *kModelPath = "bench_tune_model.jsonl";

struct ClassResult
{
    std::string name;
    size_t jobs = 0;
    double fixedSeconds = 0.0;
    double tunedSeconds = 0.0;
    bool identical = false;
    double speedup() const
    {
        return tunedSeconds > 0.0 ? fixedSeconds / tunedSeconds : 0.0;
    }
};

std::vector<ClassResult> g_results;

/** One workload class: a fixed request batch, repeated verbatim. */
std::vector<serve::JobRequest>
classRequests(const std::string &name)
{
    std::vector<serve::JobRequest> requests;
    auto push = [&](const std::string &benchmark, uint64_t case_index,
                    const std::string &execution, int iterations) {
        serve::JobRequest req;
        req.id = name + "-" + std::to_string(requests.size());
        req.benchmark = benchmark;
        req.caseIndex = case_index;
        req.execution = execution;
        req.iterations = iterations;
        requests.push_back(req);
    };
    const int reps = fastMode() ? 8 : 10;
    if (name == "exact-mid") {
        // One mid-size shape repeated: a single fingerprint bucket, so
        // the explore schedule completes within one training round and
        // the tuned run exploits for every job.
        for (int i = 0; i < reps; ++i)
            push("F4", static_cast<uint64_t>(i % 3), "exact",
                 bench::budget(20));
    } else if (name == "sampled-mid") {
        for (int i = 0; i < reps; ++i)
            push(i % 2 == 0 ? "K3" : "G4",
                 static_cast<uint64_t>(i % 3), "sampled",
                 bench::budget(20));
    } else if (name == "mixed") {
        return serve::generateWorkload(fastMode() ? 10 : 14, 5);
    } else {
        fatal("unknown workload class '{}'", name);
    }
    return requests;
}

/** Run @p requests through a fresh scheduler; returns result lines. */
std::vector<std::string>
runBatch(const std::vector<serve::JobRequest> &requests,
         tune::Tuner *tuner, double *seconds)
{
    serve::ServeOptions options;
    options.batchSeed = kBatchSeed;
    if (tuner != nullptr && tuner->mode() != tune::TuneMode::Off) {
        options.onJobPrepared = [tuner](serve::PreparedJob &job) {
            tune::TuneDecision d =
                tuner->decide(tune::fingerprintForJob(job));
            job.tuning.denseLookup = d.denseLookup();
            job.tuning.cachePlans = d.cachePlans();
            job.tuning.bucket = d.bucket;
            job.tuning.decision = tune::renderArms(d.arms);
            job.tuning.source = d.source;
        };
        options.onJobComplete = [tuner](size_t,
                                        const serve::JobResult &result) {
            tune::Measurement m;
            if (tune::measurementForResult(result, &m))
                tuner->record(m);
        };
    }
    serve::BatchScheduler scheduler(options);
    for (const serve::JobRequest &req : requests)
        scheduler.submit(req);

    Stopwatch watch;
    watch.start();
    scheduler.runAll();
    watch.stop();
    if (seconds != nullptr)
        *seconds = watch.seconds();

    std::vector<std::string> lines;
    lines.reserve(scheduler.results().size());
    for (const serve::JobResult &result : scheduler.results())
        lines.push_back(serve::writeResult(result));
    return lines;
}

tune::Tuner
makeTuner(tune::TuneMode mode)
{
    tune::TunerOptions opts;
    opts.mode = mode;
    opts.modelPath = kModelPath;
    // The batch scheduler runs jobs concurrently: per-job knobs only,
    // exactly as rasengan_serve wires it.
    opts.processKnobs = false;
    return tune::Tuner(opts);
}

void
runClass(const std::string &name)
{
    const std::vector<serve::JobRequest> requests = classRequests(name);
    std::remove(kModelPath); // each class trains its own model

    ClassResult r;
    r.name = name;
    r.jobs = requests.size();

    const std::vector<std::string> fixed =
        runBatch(requests, nullptr, &r.fixedSeconds);

    // Training: explore arms and warm the journal.  Decisions take
    // effect next run, so each round gets a fresh tuner on the
    // accumulated model.
    const int trainingRounds = fastMode() ? 2 : 3;
    for (int round = 0; round < trainingRounds; ++round) {
        tune::Tuner tuner = makeTuner(tune::TuneMode::Auto);
        tuner.load();
        double ignored = 0.0;
        std::vector<std::string> lines =
            runBatch(requests, &tuner, &ignored);
        panic_if(lines != fixed,
                 "training round drifted result bytes");
    }

    tune::Tuner tuner = makeTuner(tune::TuneMode::Auto);
    tuner.load();
    const std::vector<std::string> tuned =
        runBatch(requests, &tuner, &r.tunedSeconds);
    r.identical = tuned == fixed;
    panic_if(!r.identical, "tuned run drifted result bytes");

    tune::Tuner::Stats stats = tuner.stats();
    g_results.push_back(r);
    std::printf("%-12s %4zu jobs  fixed %8.3f s  tuned %8.3f s  "
                "speedup %5.2fx  (%llu model, %llu explore)\n",
                name.c_str(), r.jobs, r.fixedSeconds, r.tunedSeconds,
                r.speedup(),
                static_cast<unsigned long long>(stats.exploited),
                static_cast<unsigned long long>(stats.explored));
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"records\": [\n");
    for (size_t i = 0; i < g_results.size(); ++i) {
        const ClassResult &r = g_results[i];
        std::fprintf(f,
                     "    {\"class\": \"%s\", \"jobs\": %zu, "
                     "\"fixed_seconds\": %.6f, \"tuned_seconds\": %.6f, "
                     "\"speedup\": %.4f, \"identical\": %s}%s\n",
                     r.name.c_str(), r.jobs, r.fixedSeconds,
                     r.tunedSeconds, r.speedup(),
                     r.identical ? "true" : "false",
                     i + 1 < g_results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu records to %s\n", g_results.size(),
                path.c_str());
}

} // namespace

int
main()
{
    runClass("exact-mid");
    runClass("sampled-mid");
    runClass("mixed");
    std::remove(kModelPath);

    const char *jsonPath = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(jsonPath && *jsonPath ? jsonPath : "BENCH_tune.json");

    bool improved = false;
    for (const ClassResult &r : g_results)
        improved = improved || r.speedup() > 1.0;
    if (!improved)
        std::fprintf(stderr, "warning: no class improved under tuning "
                             "on this host\n");
    return 0;
}
