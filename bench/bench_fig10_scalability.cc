/**
 * @file
 * Reproduces Figure 10: scalability on facility-location instances from
 * 6 to 105 variables --
 *   (a) number of segments (unpruned bound vs after pruning),
 *   (b) average compiled segment depth,
 *   (c) noise-free ARG (sparse shot-sampled backend),
 *   (d) ARG under injected hardware noise, with early-termination
 *       failures reported, as on real devices.
 *
 * Paper shape: segments grow ~quadratically and pruning cuts them; depth
 * plateaus around ~10^3 thanks to segmentation; noise-free ARG stays
 * below ~0.5 up to 78 qubits; under noise, runs beyond ~28 qubits start
 * failing because segments stop producing feasible states.
 */

#include "bench_util.h"
#include "core/rasengan.h"
#include "device/device.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    banner("Figure 10: scalability on large-scale FLP");
    const int iters = budget(120);

    Table table({"vars", "maxseg", "pruned", "segdepth", "ARG-free",
                 "ARG-noisy", "status"});
    table.printHeader();

    for (int vars : problems::scalabilityFlpSizes()) {
        // (a)+(b): segment counts and depth from the Theorem-1 chain.
        problems::Problem chain_problem =
            problems::makeScalabilityFlp(vars);
        core::RasenganOptions chain_opts;
        chain_opts.maxTrackedStates = 20000;
        chain_opts.maxIterations = 1; // chain/depth inspection only
        core::RasenganSolver chain_solver(chain_problem, chain_opts);
        int unpruned = static_cast<int>(
            chain_solver.chain().unprunedSteps.size());
        int pruned = static_cast<int>(chain_solver.chain().steps.size());
        int per_seg = chain_opts.transitionsPerSegment;
        int max_segments = (unpruned + per_seg - 1) / per_seg;
        int pruned_segments =
            static_cast<int>(chain_solver.segments().size());
        auto [depth, cx] = chain_solver.maxSegmentCost();
        (void)cx;

        // (c): noise-free ARG with a bounded single-round chain so the
        // parameter count stays trainable at every scale.
        auto train_options = [&](bool noisy) {
            core::RasenganOptions o;
            o.execution =
                noisy ? core::RasenganOptions::Execution::NoisyInjected
                      : core::RasenganOptions::Execution::SampledSparse;
            if (noisy)
                o.noise = device::DeviceModel::ibmKyiv().toNoiseModel();
            o.rounds = vars > 30 ? 1 : 2;
            o.maxTrackedStates = 20000;
            o.maxIterations = vars > 60 ? iters / 2 : iters;
            o.shotsPerSegment = 1024;
            return o;
        };

        problems::Problem free_problem =
            problems::makeScalabilityFlp(vars);
        core::RasenganSolver free_solver(free_problem,
                                         train_options(false));
        core::RasenganResult free_res = free_solver.run();
        double arg_free = free_problem.arg(free_res.expectedObjective);

        problems::Problem noisy_problem =
            problems::makeScalabilityFlp(vars);
        core::RasenganSolver noisy_solver(noisy_problem,
                                          train_options(true));
        core::RasenganResult noisy_res = noisy_solver.run();

        table.cell(vars);
        table.cell(max_segments);
        table.cell(pruned_segments);
        table.cell(depth);
        table.cell(arg_free, "%.3f");
        if (noisy_res.failed) {
            table.cell(std::string("-"));
            table.cell(std::string("failed"));
        } else {
            table.cell(noisy_problem.arg(noisy_res.expectedObjective),
                       "%.3f");
            table.cell(std::string("ok"));
        }
        table.endRow();
        (void)pruned;
    }

    std::printf("\nnote: training uses a 1-2 round chain to bound the "
                "parameter count; the maxseg column reports the full "
                "Theorem-1 bound.\n");
    return 0;
}
