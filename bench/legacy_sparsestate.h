/**
 * @file
 * The seed hash-map sparse simulator, preserved verbatim (modulo the
 * rename) as the A/B baseline for bench_sparse: one unordered_map from
 * BitVec to amplitude, partner lookups through the hash table, and a
 * full key snapshot plus populated-set per rotation.  The production
 * engine in src/qsim/sparsestate.h replaced this with a flat sorted
 * structure-of-arrays store; keeping the old engine here (and only
 * here) lets the benchmark measure the replacement against the real
 * predecessor instead of a synthetic stand-in.
 */

#ifndef RASENGAN_BENCH_LEGACY_SPARSESTATE_H
#define RASENGAN_BENCH_LEGACY_SPARSESTATE_H

#include <cmath>
#include <complex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitvec.h"
#include "common/logging.h"

namespace rasengan::bench {

class LegacySparseState
{
  public:
    using Complex = std::complex<double>;
    using Map = std::unordered_map<BitVec, Complex, BitVecHash>;

    LegacySparseState(int num_qubits, const BitVec &basis)
        : numQubits_(num_qubits)
    {
        fatal_if(num_qubits < 0 || num_qubits > kMaxBits,
                 "sparse state supports up to {} qubits, got {}", kMaxBits,
                 num_qubits);
        amps_.emplace(basis, Complex{1.0, 0.0});
    }

    int numQubits() const { return numQubits_; }
    const Map &amplitudes() const { return amps_; }
    size_t supportSize() const { return amps_.size(); }

    Complex
    amplitude(const BitVec &basis) const
    {
        auto it = amps_.find(basis);
        return it == amps_.end() ? Complex{0.0, 0.0} : it->second;
    }

    double
    normSquared() const
    {
        double acc = 0.0;
        for (const auto &[_, a] : amps_)
            acc += std::norm(a);
        return acc;
    }

    void
    prune(double threshold = 1e-24)
    {
        for (auto it = amps_.begin(); it != amps_.end();) {
            if (std::norm(it->second) < threshold)
                it = amps_.erase(it);
            else
                ++it;
        }
    }

    void
    applyPairRotation(const BitVec &mask, const BitVec &pattern_plus,
                      double t)
    {
        panic_if(mask == BitVec{}, "pair rotation with empty support");
        const BitVec pattern_minus = pattern_plus ^ mask;
        const double c = std::cos(t);
        const Complex ms = Complex{0.0, -1.0} * std::sin(t);

        // Snapshot the keys: the rotation creates partners not yet in
        // the map.
        std::vector<BitVec> keys;
        keys.reserve(amps_.size());
        std::unordered_set<BitVec, BitVecHash> populated;
        populated.reserve(amps_.size());
        for (const auto &[x, _] : amps_) {
            keys.push_back(x);
            populated.insert(x);
        }

        for (const BitVec &x : keys) {
            BitVec restricted = x & mask;
            if (restricted != pattern_plus && restricted != pattern_minus)
                continue; // dark state: H^tau annihilates it.
            BitVec y = x ^ mask;
            // Process each unordered pair exactly once: from its
            // pattern_plus member, or from the minus member when the
            // plus member was not populated.
            if (restricted == pattern_minus && populated.count(y))
                continue;
            Complex ax = amplitude(x);
            Complex ay = amplitude(y);
            amps_[x] = c * ax + ms * ay;
            amps_[y] = c * ay + ms * ax;
        }
        prune();
    }

  private:
    int numQubits_;
    Map amps_;
};

} // namespace rasengan::bench

#endif // RASENGAN_BENCH_LEGACY_SPARSESTATE_H
