/**
 * @file
 * Reproduces Figure 13: total shots (a) and quantum latency (b) of one
 * Rasengan execution as a function of the number of segments, at 1024
 * shots per segment.
 *
 * Paper shape: shots grow linearly with segment count; latency grows
 * sub-linearly because each extra segment is a short constant-depth
 * circuit and per-shot overhead dominates.
 */

#include "bench_util.h"
#include "core/rasengan.h"
#include "device/latency.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

int
main()
{
    banner("Figure 13: shots and latency vs number of segments");
    problems::Problem problem = problems::makeBenchmark("K3");

    // Baseline chain length with everything in one segment.
    core::RasenganOptions probe;
    probe.transitionsPerSegment = 0;
    core::RasenganSolver probe_solver(problem, probe);
    const int chain = probe_solver.numParams();
    std::printf("benchmark K3: chain of %d transition operators\n\n",
                chain);

    Table table({"segments", "per-seg", "shots", "latency-ms",
                 "max-depth"});
    table.printHeader();

    device::LatencyModel latency(device::DeviceModel::ibmQuebec());
    const uint64_t shots_per_segment = 1024;

    for (int per_seg = chain; per_seg >= 1;
         per_seg = (per_seg + 1) / 2 - ((per_seg == 1) ? 1 : 0)) {
        core::RasenganOptions options;
        options.transitionsPerSegment = per_seg;
        options.shotsPerSegment = shots_per_segment;
        core::RasenganSolver solver(problem, options);

        int segments = static_cast<int>(solver.segments().size());
        uint64_t total_shots = segments * shots_per_segment;

        std::vector<double> nominal(solver.numParams(), 0.6);
        double total_ms = 0.0;
        int max_depth = 0;
        for (int s = 0; s < segments; ++s) {
            circuit::Circuit circ = solver.segmentCircuit(
                s, problem.trivialFeasible(), nominal);
            circuit::Circuit lowered = circuit::transpile(circ);
            total_ms += 1e3 * latency.executionTimeSeconds(
                                  lowered, shots_per_segment);
            max_depth = std::max(max_depth, lowered.depth());
        }

        table.cell(segments);
        table.cell(per_seg);
        table.cell(static_cast<int>(total_shots));
        table.cell(total_ms, "%.1f");
        table.cell(max_depth);
        table.endRow();
        if (per_seg == 1)
            break;
    }

    std::printf("\nexpected shape (paper): shots linear in segments; "
                "latency sub-linear (short constant-depth segments, "
                "per-shot overhead dominates).\n");
    return 0;
}
