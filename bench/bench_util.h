/**
 * @file
 * Shared helpers for the experiment-reproduction harnesses: fixed-width
 * table printing and environment knobs controlling how much work each
 * harness performs.
 *
 * Knobs (environment variables):
 *   RASENGAN_BENCH_CASES  cases per benchmark (default 2; the paper uses
 *                         100-400, which takes hours -- raise at will)
 *   RASENGAN_BENCH_FAST   "1" trims iteration budgets further (CI mode)
 */

#ifndef RASENGAN_BENCH_BENCH_UTIL_H
#define RASENGAN_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace rasengan::bench {

inline int
envInt(const char *name, int fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::atoi(value);
}

inline int
benchCases()
{
    return std::max(1, envInt("RASENGAN_BENCH_CASES", 2));
}

inline bool
fastMode()
{
    return envInt("RASENGAN_BENCH_FAST", 0) != 0;
}

/** Iteration budget, trimmed in fast mode. */
inline int
budget(int normal)
{
    return fastMode() ? std::max(10, normal / 5) : normal;
}

/** Minimal fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers, int col_width = 11)
        : headers_(std::move(headers)), width_(col_width)
    {}

    void
    printHeader() const
    {
        for (const auto &h : headers_)
            std::printf("%*s", width_, h.c_str());
        std::printf("\n");
        for (size_t i = 0; i < headers_.size(); ++i)
            std::printf("%*s", width_, "---------");
        std::printf("\n");
    }

    void
    cell(const std::string &value) const
    {
        std::printf("%*s", width_, value.c_str());
    }

    void
    cell(double value, const char *fmt = "%.3f") const
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), fmt, value);
        std::printf("%*s", width_, buf);
    }

    void
    cell(int value) const
    {
        std::printf("%*d", width_, value);
    }

    void endRow() const { std::printf("\n"); }

  private:
    std::vector<std::string> headers_;
    int width_;
};

inline void
banner(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

} // namespace rasengan::bench

#endif // RASENGAN_BENCH_BENCH_UTIL_H
