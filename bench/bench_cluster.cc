/**
 * @file
 * Distributed solve cluster benchmark (BENCH_cluster.json): jobs/second
 * through the coordinator + forked-worker path at 1, 2 and 4 workers,
 * against the single-process BatchScheduler on the same workload.
 *
 * Phases:
 *
 *  - "cluster-1w/2w/4w": end-to-end batch throughput with N forked
 *    workers over unix socketpairs -- framing, screening, placement,
 *    per-job result streaming, and the deterministic merge included.
 *
 *  - "single-process": the same workload through BatchScheduler in this
 *    process, the baseline the cluster must reproduce byte-for-byte.
 *
 *  - "merge-overhead": cluster-at-1-worker seconds minus single-process
 *    seconds.  One worker does the same simulation work as the
 *    baseline, so the difference is the coordinator tax: wire framing,
 *    screening, placement bookkeeping, and ordered merge.
 *
 * Every cluster phase's merged result lines are asserted byte-identical
 * to the single-process run -- a perf run that drifted bytes would be
 * measuring a different computation.
 *
 * Workers are forked BEFORE the in-process baseline runs: fork after
 * thread-pool or SIMD-dispatch initialization would duplicate live
 * threads' state into the children.
 *
 * Knobs: RASENGAN_BENCH_FAST=1 shrinks the batch for CI;
 * RASENGAN_BENCH_JSON overrides the output path.
 */

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/coordinator.h"
#include "cluster/worker.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "serve/workload.h"

namespace {

using namespace rasengan;
using bench::fastMode;

constexpr uint64_t kBatchSeed = 9;

struct Record
{
    std::string phase;
    size_t ops = 0;
    double seconds = 0.0;
    double opsPerSec = 0.0;
};

std::vector<Record> g_records;

void
record(const std::string &phase, size_t ops, double seconds)
{
    Record r;
    r.phase = phase;
    r.ops = ops;
    r.seconds = seconds;
    r.opsPerSec = seconds > 0.0 ? static_cast<double>(ops) / seconds
                                : 0.0;
    g_records.push_back(r);
    std::printf("%-16s %8zu jobs  %9.4f s  %10.1f jobs/s\n",
                phase.c_str(), ops, seconds, r.opsPerSec);
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"records\": [\n");
    for (size_t i = 0; i < g_records.size(); ++i) {
        const Record &r = g_records[i];
        std::fprintf(f,
                     "    {\"phase\": \"%s\", \"ops\": %zu, "
                     "\"seconds\": %.6f, \"ops_per_sec\": %.2f}%s\n",
                     r.phase.c_str(), r.ops, r.seconds, r.opsPerSec,
                     i + 1 < g_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu records to %s\n", g_records.size(),
                path.c_str());
}

/** Fork @p count workers; returns the coordinator-side fds. */
std::vector<int>
forkWorkers(int count, std::vector<pid_t> &children)
{
    std::vector<int> coordinatorFds;
    for (int w = 0; w < count; ++w) {
        int pair[2];
        panic_if(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0,
                 "socketpair failed");
        pid_t pid = ::fork();
        panic_if(pid < 0, "fork failed");
        if (pid == 0) {
            ::close(pair[0]);
            // Fds of earlier workers belong to the coordinator alone; a
            // stray duplicate here would defeat its EOF death tracking.
            for (int fd : coordinatorFds)
                ::close(fd);
            cluster::WorkerOutcome outcome = cluster::runWorker(pair[1]);
            ::_exit(outcome.ok ? 0 : 1);
        }
        ::close(pair[1]);
        coordinatorFds.push_back(pair[0]);
        children.push_back(pid);
    }
    return coordinatorFds;
}

/** One cluster run; returns merged result lines and records timing. */
std::vector<std::string>
runCluster(const std::vector<serve::JobRequest> &requests, int workers,
           double *secondsOut)
{
    std::vector<pid_t> children;
    std::vector<int> fds = forkWorkers(workers, children);

    // One compute thread per process: the phases then measure
    // process-level scaling (and on a single-core box, purely the
    // coordinator tax), not pool oversubscription.
    cluster::CoordinatorOptions options;
    options.batchSeed = kBatchSeed;
    options.threads = 1;
    cluster::Coordinator coordinator(options, std::move(fds));

    Stopwatch sw;
    sw.start();
    for (const auto &req : requests)
        coordinator.submit(req);
    std::string error;
    panic_if(!coordinator.runAll(&error), "cluster run failed: {}",
             error);
    sw.stop();

    for (pid_t pid : children) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    *secondsOut = sw.seconds();
    record("cluster-" + std::to_string(workers) + "w", requests.size(),
           sw.seconds());
    return coordinator.resultLines();
}

} // namespace

int
main()
{
    const size_t jobs = fastMode() ? 12 : 64;
    std::vector<serve::JobRequest> requests =
        serve::generateWorkload(jobs, 5);
    // Deepen the jobs so per-job simulation dominates the tiny
    // workload's fixed costs; otherwise every phase measures process
    // startup instead of scaling.
    for (auto &req : requests)
        req.iterations = fastMode() ? 10 : 60;

    // All fork-based phases run before the in-process baseline touches
    // the simulation pool (see the file comment).
    double oneWorkerSeconds = 0.0;
    std::vector<std::string> merged1 =
        runCluster(requests, 1, &oneWorkerSeconds);
    double ignored = 0.0;
    std::vector<std::string> merged2 = runCluster(requests, 2, &ignored);
    std::vector<std::string> merged4 = runCluster(requests, 4, &ignored);

    serve::ServeOptions serveOptions;
    serveOptions.batchSeed = kBatchSeed;
    serveOptions.threads = 1;
    serve::BatchScheduler scheduler(serveOptions);
    Stopwatch sw;
    sw.start();
    for (const auto &req : requests)
        scheduler.submit(req);
    scheduler.runAll();
    sw.stop();
    record("single-process", requests.size(), sw.seconds());

    std::vector<std::string> baseline;
    for (const auto &result : scheduler.results())
        baseline.push_back(serve::writeResult(result));

    panic_if(merged1 != baseline, "1-worker merge diverged");
    panic_if(merged2 != baseline, "2-worker merge diverged");
    panic_if(merged4 != baseline, "4-worker merge diverged");
    std::printf("merged output byte-identical at 1/2/4 workers\n");

    double overhead = oneWorkerSeconds - sw.seconds();
    if (overhead < 0.0)
        overhead = 0.0;
    record("merge-overhead", requests.size(), overhead);

    const char *jsonPath = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(jsonPath && *jsonPath ? jsonPath : "BENCH_cluster.json");
    return 0;
}
