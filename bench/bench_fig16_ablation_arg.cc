/**
 * @file
 * Reproduces Figure 16: ablation of the optimization strategies on ARG
 * (left) and in-constraints rate (right), on a noise-free simulator and
 * under the IBM Kyiv / Brisbane noise models.  Configurations stack:
 *   base      : no simplification, no pruning, one segment, no purify
 *   +opt1     : simplification
 *   +opt2     : + pruning/early-stop
 *   +opt3     : + segmentation + purification
 *
 * Paper shape: opt1 ~1.04x ARG, opt2 ~1.2-1.4x, opt3 the big jump
 * (segmentation 2.43x, purification ~303x on hardware); in-constraints
 * rate climbs from a few percent to 100% with purification.
 */

#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "core/rasengan.h"
#include "device/device.h"
#include "problems/metrics.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

struct Config
{
    const char *name;
    bool simplify, prune, segmented, purify;
};

constexpr Config kConfigs[] = {
    {"base", false, false, false, false},
    {"+opt1", true, false, false, false},
    {"+opt1,2", true, true, false, false},
    {"+opt1,2,3", true, true, true, true},
};

struct Outcome
{
    double arg = 0.0;
    double rate = 0.0;
    bool failed = false;
};

Outcome
runConfig(const problems::Problem &problem, const Config &config,
          const qsim::NoiseModel &noise, int iters)
{
    core::RasenganOptions options;
    options.simplify = config.simplify;
    options.prune = config.prune;
    options.transitionsPerSegment = config.segmented ? 3 : 0;
    options.purify = config.purify;
    options.maxIterations = iters;
    if (noise.enabled()) {
        options.execution =
            core::RasenganOptions::Execution::NoisyGateLevel;
        options.noise = noise;
        options.trajectories = 4;
        options.shotsPerSegment = 256;
    }
    core::RasenganSolver solver(problem, options);
    core::RasenganResult res = solver.run();
    Outcome out;
    out.failed = res.failed;
    if (!res.failed) {
        out.arg = problem.arg(res.expectedObjective);
        out.rate = res.inConstraintsRate;
    }
    return out;
}

} // namespace

int
main()
{
    banner("Figure 16: ARG / in-constraints ablation (sim + devices)");
    const int iters = budget(30);
    const std::vector<std::string> cases = {"F1", "K1", "J1"};

    struct Env
    {
        const char *name;
        qsim::NoiseModel noise;
    };
    std::vector<Env> envs = {
        {"noise-free", {}},
        {"ibm_kyiv", device::DeviceModel::ibmKyiv().toNoiseModel()},
        {"ibm_brisbane",
         device::DeviceModel::ibmBrisbane().toNoiseModel()},
    };

    for (const Env &env : envs) {
        std::printf("\n-- %s --\n", env.name);
        Table table({"config", "avg-ARG", "in-constr", "fails"});
        table.printHeader();
        for (const Config &config : kConfigs) {
            std::vector<double> args, rates;
            int failures = 0;
            for (const std::string &id : cases) {
                problems::Problem p = problems::makeBenchmark(id);
                Outcome out = runConfig(p, config, env.noise, iters);
                if (out.failed) {
                    ++failures;
                    continue;
                }
                args.push_back(out.arg);
                rates.push_back(out.rate);
            }
            table.cell(std::string(config.name));
            if (args.empty()) {
                table.cell(std::string("-"));
                table.cell(std::string("-"));
            } else {
                table.cell(mean(args), "%.4f");
                table.cell(100.0 * mean(rates), "%.1f%%");
            }
            table.cell(failures);
            table.endRow();
        }
    }

    std::printf("\nexpected shape (paper): each opt improves ARG; "
                "purification takes the in-constraints rate to 100%% "
                "under noise.\n");
    return 0;
}
