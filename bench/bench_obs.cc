/**
 * @file
 * Observability overhead harness (BENCH_obs.json).
 *
 * Answers the question the profiling hooks were designed around: what
 * does instrumentation cost when it is OFF?  Three measurements:
 *
 *  1. span_disabled_call: per-call cost of a RASENGAN_PROF span with
 *     tracing disabled (the advertised price: one relaxed atomic load
 *     and a branch), measured against an identical loop with no span.
 *  2. kernel_workload: a kernel-sized unit of work (a rotation pass
 *     over a 4096-amplitude vector, the granularity at which the real
 *     kernels are instrumented) with and without a wrapping span, at
 *     tracing disabled and enabled.  disabled_overhead_pct is the
 *     number CI gates at <= 1%.
 *  3. solver_trace: a full F1 solve with tracing off vs on -- the
 *     end-to-end price of recording a complete trace, plus the event
 *     count a solve produces.
 *  4. flight_overhead: the same solve with the always-on flight
 *     recorder off vs on.  flight_overhead_pct (spans per solve times
 *     the measured per-record formatting cost, over the solve wall
 *     time) is gated at <= 1% alongside the disabled-span bound.
 *
 * Knobs: RASENGAN_BENCH_FAST=1 shrinks repeats for CI smoke runs;
 * RASENGAN_BENCH_JSON overrides the output path.
 */

#include <algorithm>
#include <complex>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/rasengan.h"
#include "obs/flight.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "problems/suite.h"

using namespace rasengan;

namespace {

struct Record
{
    std::string kernel;
    std::string variant;
    int repeats = 0;
    double medianMs = 0.0;
    double minMs = 0.0;
    /** Optional extras rendered verbatim (", key: value" pairs). */
    std::string extra;
};

std::vector<Record> g_records;

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
}

double
minOfVec(const std::vector<double> &xs)
{
    return *std::min_element(xs.begin(), xs.end());
}

void
record(const std::string &kernel, const std::string &variant, int repeats,
       const std::vector<double> &ms, std::string extra = "")
{
    g_records.push_back(
        {kernel, variant, repeats, median(ms), minOfVec(ms),
         std::move(extra)});
    std::printf("%-24s %-22s median %10.4f ms  min %10.4f ms%s\n",
                kernel.c_str(), variant.c_str(), g_records.back().medianMs,
                g_records.back().minMs, extra.empty() ? "" : extra.c_str());
}

void
writeJson(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"obs\",\n  \"records\": [\n");
    for (size_t i = 0; i < g_records.size(); ++i) {
        const Record &r = g_records[i];
        std::fprintf(f,
                     "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                     "\"repeats\": %d, \"median_ms\": %.6f, "
                     "\"min_ms\": %.6f%s}%s\n",
                     r.kernel.c_str(), r.variant.c_str(), r.repeats,
                     r.medianMs, r.minMs, r.extra.c_str(),
                     i + 1 < g_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu records to %s\n", g_records.size(),
                path.c_str());
}

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

constexpr size_t kAmps = 4096;

/**
 * One kernel-sized unit of work: a phase-rotation pass.  noinline so
 * both template instantiations of passes() call the exact same code
 * and the A/B measures only the span, not codegen divergence.
 */
__attribute__((noinline)) double
rotationPass(std::vector<std::complex<double>> &amps, double angle)
{
    const std::complex<double> phase(std::cos(angle), std::sin(angle));
    double norm = 0.0;
    for (std::complex<double> &a : amps) {
        a *= phase;
        norm += std::norm(a);
    }
    return norm;
}

template <bool WithSpan>
double
passes(std::vector<std::complex<double>> &amps, int n)
{
    double sink = 0.0;
    for (int i = 0; i < n; ++i) {
        if constexpr (WithSpan) {
            RASENGAN_PROF("bench", "rotation-pass");
            sink += rotationPass(amps, 1e-3 * (i + 1));
        } else {
            sink += rotationPass(amps, 1e-3 * (i + 1));
        }
    }
    return sink;
}

/** Per-call disabled-span cost against an empty-body loop (ns). */
double
benchDisabledCall(int repeats)
{
    constexpr int kCalls = 4'000'000;
    volatile uint64_t sink = 0;

    // Warmup.
    for (int i = 0; i < kCalls; ++i) {
        RASENGAN_PROF("bench", "empty");
        sink = sink + 1;
    }

    std::vector<double> plainMs, spanMs;
    for (int r = 0; r < repeats; ++r) {
        Stopwatch sw;
        sw.start();
        for (int i = 0; i < kCalls; ++i)
            sink = sink + 1;
        sw.stop();
        plainMs.push_back(sw.milliseconds());

        sw.reset();
        sw.start();
        for (int i = 0; i < kCalls; ++i) {
            RASENGAN_PROF("bench", "empty");
            sink = sink + 1;
        }
        sw.stop();
        spanMs.push_back(sw.milliseconds());
    }
    const double perCallNs =
        (minOfVec(spanMs) - minOfVec(plainMs)) * 1e6 / kCalls;
    char extra[96];
    std::snprintf(extra, sizeof(extra), ", \"per_call_ns\": %.3f",
                  perCallNs);
    record("span_disabled_call", "plain_loop", repeats, plainMs);
    record("span_disabled_call", "span_loop", repeats, spanMs, extra);
    std::printf("  disabled span per call: %.3f ns\n", perCallNs);
    return perCallNs;
}

/**
 * Kernel-granularity measurement.  The direct A/B difference between
 * the no-span and span-with-tracing-off variants sits well below
 * run-to-run noise (several percent either way), so the committed
 * disabled_overhead_pct is the stable derived bound: the per-call span
 * cost measured by benchDisabledCall divided by the time one
 * kernel-sized unit of work takes.  The raw A/B delta is still
 * reported (direct_ab_pct) as evidence it is noise-bounded.
 */
double
benchKernelWorkload(int repeats, int passesPerRep, double perCallNs)
{
    std::vector<std::complex<double>> amps(kAmps, {1.0, 0.5});
    double sink = 0.0;

    // Warm both instantiations (caches, frequency) before timing.
    sink += passes<false>(amps, passesPerRep);
    sink += passes<true>(amps, passesPerRep);

    std::vector<double> noSpanMs, offMs, onMs;
    auto timeOne = [&](std::vector<double> &out, bool with_span) {
        Stopwatch sw;
        sw.start();
        sink += with_span ? passes<true>(amps, passesPerRep)
                          : passes<false>(amps, passesPerRep);
        sw.stop();
        out.push_back(sw.milliseconds());
    };
    for (int r = 0; r < repeats; ++r) {
        // Alternate the A/B order per rep so neither variant always
        // pays the post-gap warmup position.
        if (r % 2 == 0) {
            timeOne(noSpanMs, false);
            timeOne(offMs, true); // tracing disabled
        } else {
            timeOne(offMs, true);
            timeOne(noSpanMs, false);
        }

        obs::clearTrace();
        obs::startTracing();
        timeOne(onMs, true);
        obs::stopTracing();
    }
    const size_t events = obs::traceEventCount();
    obs::clearTrace();

    // Best-of-N (min) is the robust estimator for identical work.
    const double perPassNs =
        minOfVec(noSpanMs) * 1e6 / static_cast<double>(passesPerRep);
    const double disabledPct = perCallNs / perPassNs * 100.0;
    const double directAbPct =
        (minOfVec(offMs) - minOfVec(noSpanMs)) / minOfVec(noSpanMs) * 100.0;
    const double enabledPct =
        (minOfVec(onMs) - minOfVec(noSpanMs)) / minOfVec(noSpanMs) * 100.0;

    record("kernel_workload", "no_span", repeats, noSpanMs);
    char extra[128];
    std::snprintf(extra, sizeof(extra),
                  ", \"disabled_overhead_pct\": %.4f, "
                  "\"direct_ab_pct\": %.4f",
                  disabledPct, directAbPct);
    record("kernel_workload", "span_tracing_off", repeats, offMs, extra);
    std::snprintf(extra, sizeof(extra),
                  ", \"enabled_overhead_pct\": %.4f, \"events\": %zu",
                  enabledPct, events);
    record("kernel_workload", "span_tracing_on", repeats, onMs, extra);
    std::printf("  disabled overhead %.4f%% (direct A/B %+.4f%%), "
                "enabled overhead %+.4f%% (sink %.3f)\n",
                disabledPct, directAbPct, enabledPct, sink);
    return disabledPct;
}

/** End-to-end: tracing a whole solve. */
void
benchSolverTrace(int repeats)
{
    problems::Problem p = problems::makeBenchmark("F1");
    core::RasenganOptions opts;
    opts.maxIterations = bench::fastMode() ? 10 : 30;

    std::vector<double> offMs, onMs;
    size_t events = 0;
    for (int r = 0; r < repeats; ++r) {
        Stopwatch sw;
        sw.start();
        core::RasenganSolver(p, opts).run();
        sw.stop();
        offMs.push_back(sw.milliseconds());

        obs::clearTrace();
        obs::startTracing();
        sw.reset();
        sw.start();
        core::RasenganSolver(p, opts).run();
        sw.stop();
        obs::stopTracing();
        onMs.push_back(sw.milliseconds());
        events = obs::traceEventCount();
    }
    obs::clearTrace();

    const double enabledPct =
        (minOfVec(onMs) - minOfVec(offMs)) / minOfVec(offMs) * 100.0;
    record("solver_trace", "tracing_off", repeats, offMs);
    char extra[96];
    std::snprintf(extra, sizeof(extra),
                  ", \"enabled_overhead_pct\": %.4f, \"events\": %zu",
                  enabledPct, events);
    record("solver_trace", "tracing_on", repeats, onMs, extra);
    std::printf("  solver trace: %zu events, enabled overhead %.4f%%\n",
                events, enabledPct);
}

/**
 * Flight-recorder price.  With the ring enabled every closed span
 * formats one bounded JSON entry (the always-on production
 * configuration), so the committed flight_overhead_pct follows the
 * disabled-overhead precedent: a stable derived bound -- spans per
 * solve times the per-record formatting cost, over the solve's wall
 * time -- with the noisier direct A/B reported alongside as evidence.
 *
 * The gated workload is the SAMPLED execution path (the paper's real
 * operating mode): spans there wrap whole segment evolutions and shot
 * loops, which is where an always-on recorder must stay invisible.
 * The exact brief-F1 solve of solver_trace is span-dense microspans
 * (a few us of work per span) -- useful for the tracing A/B above,
 * but no bounded-format recorder can stay under 1% of a 2 us span,
 * and production jobs are not shaped like that.
 */
double
benchFlightOverhead(int repeats)
{
    problems::Problem p = problems::makeBenchmark("F1");
    core::RasenganOptions opts;
    opts.execution = core::RasenganOptions::Execution::SampledSparse;
    opts.shotsPerSegment = bench::fastMode() ? 50'000 : 200'000;
    opts.maxIterations = bench::fastMode() ? 5 : 15;

    // How many spans one solve closes (count once, tracing briefly on).
    obs::clearTrace();
    obs::startTracing();
    core::RasenganSolver(p, opts).run();
    obs::stopTracing();
    const size_t spans = obs::traceEventCount() / 2; // B/E pairs
    obs::clearTrace();

    // Per-record formatting cost, measured in a tight loop against the
    // live ring (overwrite path included: the ring wraps many times).
    constexpr int kRecords = 200'000;
    const std::string detail = "it=12 seg=3";
    obs::flight::configure();
    for (int i = 0; i < kRecords / 10; ++i) // warmup
        obs::flight::recordSpan("bench", "flight", detail, 1000);
    Stopwatch sw;
    sw.start();
    for (int i = 0; i < kRecords; ++i)
        obs::flight::recordSpan("bench", "flight", detail, 1000);
    sw.stop();
    const double perRecordNs = sw.milliseconds() * 1e6 / kRecords;
    obs::flight::disable();

    std::vector<double> offMs, onMs;
    for (int r = 0; r < repeats; ++r) {
        sw.reset();
        sw.start();
        core::RasenganSolver(p, opts).run();
        sw.stop();
        offMs.push_back(sw.milliseconds());

        obs::flight::configure(); // re-enable the (already sized) ring
        sw.reset();
        sw.start();
        core::RasenganSolver(p, opts).run();
        sw.stop();
        obs::flight::disable();
        onMs.push_back(sw.milliseconds());
    }

    const double flightPct = static_cast<double>(spans) * perRecordNs /
                             (minOfVec(offMs) * 1e6) * 100.0;
    const double directAbPct =
        (minOfVec(onMs) - minOfVec(offMs)) / minOfVec(offMs) * 100.0;

    record("flight_overhead", "flight_off", repeats, offMs);
    char extra[160];
    std::snprintf(extra, sizeof(extra),
                  ", \"flight_overhead_pct\": %.4f, "
                  "\"direct_ab_pct\": %.4f, \"per_record_ns\": %.1f, "
                  "\"spans_per_solve\": %zu",
                  flightPct, directAbPct, perRecordNs, spans);
    record("flight_overhead", "flight_on", repeats, onMs, extra);
    std::printf("  flight overhead %.4f%% (direct A/B %+.4f%%, "
                "%.0f ns/record, %zu spans/solve)\n",
                flightPct, directAbPct, perRecordNs, spans);
    return flightPct;
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    const int repeats = fast ? 3 : 7;
    std::printf("obs overhead bench: %d repeats%s\n\n", repeats,
                fast ? " (fast mode)" : "");

    parallel::setThreadCount(1); // single thread: cleanest timing

    const double perCallNs = benchDisabledCall(repeats);
    const double disabledPct =
        benchKernelWorkload(repeats, fast ? 1000 : 4000, perCallNs);
    benchSolverTrace(repeats);
    const double flightPct = benchFlightOverhead(repeats);

    parallel::setThreadCount(0);

    const char *env = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(env && *env ? env : "BENCH_obs.json");

    bool failed = false;
    if (disabledPct > 1.0) {
        std::fprintf(stderr,
                     "FAIL: disabled-path overhead %.4f%% exceeds 1%%\n",
                     disabledPct);
        failed = true;
    }
    if (flightPct > 1.0) {
        std::fprintf(stderr,
                     "FAIL: flight-recorder overhead %.4f%% exceeds 1%%\n",
                     flightPct);
        failed = true;
    }
    if (failed)
        return 1;
    std::printf("disabled-path overhead %.4f%% and flight overhead "
                "%.4f%% within the 1%% budget\n",
                disabledPct, flightPct);
    return 0;
}
