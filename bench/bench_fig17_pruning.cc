/**
 * @file
 * Reproduces Figure 17: how much faster the pruned transition chain
 * expands the feasible solution space.  For FLP, KPP, SCP and GCP at all
 * four scales, we measure the fraction of the full (unpruned) chain
 * length needed to reach 100% coverage, for the unpruned and the pruned
 * chain, and the resulting expansion-speed ratio.
 *
 * Paper shape: pruning consistently accelerates expansion, e.g. at the
 * fourth scale full coverage at 40.7% of the chain instead of 73.6%
 * (1.8x).
 */

#include "bench_util.h"
#include "core/basis.h"
#include "core/chain.h"
#include "problems/suite.h"

using namespace rasengan;
using namespace rasengan::bench;

namespace {

/** Chain-position (1-based) at which coverage first hits `full`. */
int
coveragePoint(const std::vector<size_t> &coverage, size_t full)
{
    for (size_t i = 0; i < coverage.size(); ++i)
        if (coverage[i] >= full)
            return static_cast<int>(i) + 1;
    return static_cast<int>(coverage.size());
}

} // namespace

int
main()
{
    banner("Figure 17: feasible-space expansion speed with pruning");

    Table table({"bench", "feasible", "chain", "unpruned%", "pruned%",
                 "speedup"});
    table.printHeader();

    for (const char *family : {"F", "K", "S", "G"}) {
        for (int scale = 1; scale <= 4; ++scale) {
            std::string id = std::string(family) + std::to_string(scale);
            problems::Problem p = problems::makeBenchmark(id);
            auto transitions =
                core::makeTransitions(core::transitionVectors(p));
            size_t full = p.feasibleCount();

            core::ChainOptions raw;
            raw.prune = false;
            raw.earlyStop = false;
            core::Chain unpruned =
                core::buildChain(transitions, p.trivialFeasible(), raw);

            core::ChainOptions pruned_opts; // prune + early stop on
            core::Chain pruned = core::buildChain(
                transitions, p.trivialFeasible(), pruned_opts);

            int total = static_cast<int>(unpruned.steps.size());
            int u_point =
                coveragePoint(unpruned.unprunedCoverage, full);
            int p_point = coveragePoint(pruned.coverage, full);
            double u_frac = 100.0 * u_point / total;
            double p_frac = 100.0 * p_point / total;

            table.cell(id);
            table.cell(static_cast<int>(full));
            table.cell(total);
            table.cell(u_frac, "%.1f%%");
            table.cell(p_frac, "%.1f%%");
            table.cell(u_frac / std::max(p_frac, 1e-9), "%.2fx");
            table.endRow();
        }
    }

    std::printf("\nexpected shape (paper): the pruned chain reaches full "
                "coverage within a much smaller fraction of the total "
                "chain length (e.g. 40.7%% vs 73.6%% -> 1.8x).\n");
    return 0;
}
