/**
 * @file
 * Scalar-vs-SIMD A/B for the amplitude kernel tier (qsim/simd.h),
 * written as a machine-readable artifact (BENCH_simd.json).
 *
 * For every ISA the build and CPU support, each hot kernel family is
 * timed against the scalar reference on identical inputs:
 *
 *   - dense_1q_layer:     apply1q sweep over every qubit (>= 20 qubits
 *                         outside fast mode);
 *   - dense_cx_chain:     applyControlled1q chain;
 *   - dense_diag_evo:     applyDiagonalEvolution (scalar libm phase
 *                         factors, vectorized multiply);
 *   - dense_diag_terms:   applyDiagonalTerms with a deep coalesced
 *                         term block (vectorized control-mask scan);
 *   - sparse_rotation:    SparseState::applyPairRotation chain
 *                         (classify + batched partner search + gathered
 *                         pair rotation).
 *
 * Every SIMD record carries speedup_vs_scalar and max_abs_diff; the
 * determinism contract makes the latter exactly 0.0, and CI fails the
 * artifact otherwise.
 *
 * Knobs: RASENGAN_BENCH_FAST=1 shrinks sizes/repeats;
 * RASENGAN_BENCH_JSON overrides the output path.
 */

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/fusion.h"
#include "circuit/gatematrix.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "qsim/simd.h"
#include "qsim/sparsestate.h"
#include "qsim/statevector.h"

namespace {

using namespace rasengan;
using Complex = std::complex<double>;

struct Record
{
    std::string kernel;
    std::string isa;
    int repeats = 0;
    double medianMs = 0.0;
    double minMs = 0.0;
    std::vector<std::pair<std::string, double>> extra;
};

std::vector<Record> g_records;

double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    size_t n = samples.size();
    return n % 2 ? samples[n / 2]
                 : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

Record &
timeKernel(const std::string &kernel, qsim::SimdIsa isa, int repeats,
           const std::function<void()> &body)
{
    body(); // warmup
    std::vector<double> ms;
    ms.reserve(repeats);
    for (int r = 0; r < repeats; ++r) {
        Stopwatch sw;
        sw.start();
        body();
        sw.stop();
        ms.push_back(sw.seconds() * 1e3);
    }
    Record rec;
    rec.kernel = kernel;
    rec.isa = qsim::simdIsaName(isa);
    rec.repeats = repeats;
    rec.medianMs = medianOf(ms);
    rec.minMs = *std::min_element(ms.begin(), ms.end());
    g_records.push_back(std::move(rec));
    return g_records.back();
}

double
maxAbsDiff(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    double worst = a.size() == b.size()
                       ? 0.0
                       : std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < a.size() && i < b.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

/**
 * A/B one dense kernel: run @p body once per ISA on a fresh state
 * prepared by @p prepare, recording time, speedup vs scalar, and the
 * max |amp| deviation from the scalar run's final state (expected 0).
 */
void
abDense(const std::string &kernel, int n, int repeats,
        const std::function<void(qsim::Statevector &)> &prepare,
        const std::function<void(qsim::Statevector &)> &body,
        bench::Table &table)
{
    std::vector<Complex> scalar_amps;
    double scalar_ms = 0.0;
    for (qsim::SimdIsa isa : qsim::simdAvailableIsas()) {
        if (!qsim::setSimdIsa(isa))
            continue;
        qsim::Statevector sv(n);
        prepare(sv);
        Record &rec =
            timeKernel(kernel, isa, repeats, [&] { body(sv); });
        rec.extra.emplace_back("qubits", n);
        double diff = 0.0;
        if (isa == qsim::SimdIsa::Scalar) {
            scalar_amps = sv.amplitudes();
            scalar_ms = rec.medianMs;
        } else {
            diff = maxAbsDiff(sv.amplitudes(), scalar_amps);
            rec.extra.emplace_back("max_abs_diff", diff);
            rec.extra.emplace_back("speedup_vs_scalar",
                                   rec.medianMs > 0.0
                                       ? scalar_ms / rec.medianMs
                                       : 0.0);
        }
        table.cell(kernel);
        table.cell(rec.isa);
        table.cell(rec.medianMs);
        table.cell(isa == qsim::SimdIsa::Scalar
                       ? 1.0
                       : (rec.medianMs > 0.0 ? scalar_ms / rec.medianMs
                                             : 0.0),
                   "%.2f");
        table.cell(diff, "%.1e");
        table.endRow();
    }
}

void
benchDense(int n, int repeats, bench::Table &table)
{
    const qsim::Mat2 h = circuit::gateMatrix(circuit::GateKind::H, 0.0);
    const qsim::Mat2 ry =
        circuit::gateMatrix(circuit::GateKind::RY, 0.371);
    const qsim::Mat2 x = circuit::gateMatrix(circuit::GateKind::X, 0.0);

    auto spread = [&](qsim::Statevector &sv) {
        for (int q = 0; q < sv.numQubits(); ++q)
            sv.apply1q(q, h);
    };

    abDense("dense_1q_layer", n, repeats, spread,
            [&](qsim::Statevector &sv) {
                for (int q = 0; q < sv.numQubits(); ++q)
                    sv.apply1q(q, ry);
            },
            table);

    abDense("dense_cx_chain", n, repeats, spread,
            [&](qsim::Statevector &sv) {
                for (int q = 0; q + 1 < sv.numQubits(); ++q)
                    sv.applyControlled1q({q}, q + 1, x);
            },
            table);

    std::vector<double> values(size_t{1} << n);
    for (size_t i = 0; i < values.size(); ++i)
        values[i] = 1e-3 * static_cast<double>(i % 97);
    abDense("dense_diag_evo", n, repeats, spread,
            [&](qsim::Statevector &sv) {
                sv.applyDiagonalEvolution(values, 0.25);
            },
            table);

    // A deep coalesced diagonal block, the shape fusion emits for long
    // RZ/CP chains: the control-mask scan dominates.
    std::vector<circuit::DiagTerm> terms;
    for (int q = 0; q < n; ++q)
        terms.push_back({0, uint64_t{1} << q, 0.0, 0.02 * (q + 1)});
    for (int q = 0; q + 1 < n; ++q)
        terms.push_back({uint64_t{1} << q, uint64_t{1} << (q + 1), 0.0,
                         0.01 * (q + 1)});
    abDense("dense_diag_terms", n, repeats, spread,
            [&](qsim::Statevector &sv) { sv.applyDiagonalTerms(terms); },
            table);
}

void
benchSparse(int steps, int repeats, bench::Table &table)
{
    const int n = 24;
    auto run = [&]() {
        qsim::SparseState st(n, BitVec{});
        for (int step = 0; step < steps; ++step) {
            BitVec mask;
            mask.set(step % n);
            mask.set((step * 5 + 1) % n);
            st.applyPairRotation(mask, BitVec{}, 0.21 + 0.007 * step,
                                 qsim::SparseState::
                                     kDefaultPruneThreshold);
        }
        return st;
    };

    std::vector<Complex> scalar_amps;
    double scalar_ms = 0.0;
    size_t support = 0;
    for (qsim::SimdIsa isa : qsim::simdAvailableIsas()) {
        if (!qsim::setSimdIsa(isa))
            continue;
        qsim::SparseState final_state = run();
        support = final_state.supportSize();
        Record &rec = timeKernel("sparse_rotation", isa, repeats, [&] {
            qsim::SparseState s = run();
            volatile size_t sink = s.supportSize();
            (void)sink;
        });
        rec.extra.emplace_back("support",
                               static_cast<double>(support));
        rec.extra.emplace_back("chain_steps",
                               static_cast<double>(steps));
        double diff = 0.0;
        if (isa == qsim::SimdIsa::Scalar) {
            scalar_amps = final_state.amps();
            scalar_ms = rec.medianMs;
        } else {
            diff = maxAbsDiff(final_state.amps(), scalar_amps);
            rec.extra.emplace_back("max_abs_diff", diff);
            rec.extra.emplace_back("speedup_vs_scalar",
                                   rec.medianMs > 0.0
                                       ? scalar_ms / rec.medianMs
                                       : 0.0);
        }
        table.cell("sparse_rotation");
        table.cell(rec.isa);
        table.cell(rec.medianMs);
        table.cell(isa == qsim::SimdIsa::Scalar
                       ? 1.0
                       : (rec.medianMs > 0.0 ? scalar_ms / rec.medianMs
                                             : 0.0),
                   "%.2f");
        table.cell(diff, "%.1e");
        table.endRow();
    }
}

void
writeJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"simd\",\n");
    std::fprintf(f, "  \"best_isa\": \"%s\",\n",
                 qsim::simdIsaName(qsim::simdBestIsa()));
    std::fprintf(f, "  \"records\": [\n");
    for (size_t i = 0; i < g_records.size(); ++i) {
        const Record &r = g_records[i];
        std::fprintf(f,
                     "    {\"kernel\": \"%s\", \"isa\": \"%s\", "
                     "\"repeats\": %d, \"median_ms\": %.6f, "
                     "\"min_ms\": %.6f",
                     r.kernel.c_str(), r.isa.c_str(), r.repeats,
                     r.medianMs, r.minMs);
        for (const auto &[key, value] : r.extra)
            std::fprintf(f, ", \"%s\": %g", key.c_str(), value);
        std::fprintf(f, "}%s\n", i + 1 < g_records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %zu records to %s\n", g_records.size(),
                path.c_str());
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    const int repeats = fast ? 5 : 7;
    const int n_dense = fast ? 16 : 20;
    const int sparse_steps = fast ? 22 : 26;

    // Kernel-level A/B wants a pure single-threaded comparison; the
    // deterministic blocking makes thread count orthogonal to ISA.
    parallel::setThreadCount(1);

    std::printf("simd bench: best ISA %s, %d dense qubits, %d repeats%s\n",
                qsim::simdIsaName(qsim::simdBestIsa()), n_dense, repeats,
                fast ? " (fast mode)" : "");

    bench::banner("scalar vs SIMD kernels");
    bench::Table table(
        {"kernel", "isa", "median_ms", "speedup", "max_diff"});
    table.printHeader();
    benchDense(n_dense, repeats, table);
    benchSparse(sparse_steps, repeats, table);

    const char *env = std::getenv("RASENGAN_BENCH_JSON");
    writeJson(env && *env ? env : "BENCH_simd.json");
    return 0;
}
